"""A runnable IND-CPA game.

The game (paper Section IV-A, Theorem 1): the adversary picks two
messages, the challenger encrypts one at random, the adversary guesses
which.  A scheme is IND-CPA secure when no efficient adversary does
non-negligibly better than coin flipping.

This module cannot prove security (that is DDH's job) -- it demonstrates
the *mechanics*: against the real FEBO/FEIP schemes a natural replay
adversary wins with probability ~1/2, while against a deliberately
broken deterministic variant (the nonce fixed, i.e. textbook ElGamal
without fresh randomness) the same adversary wins with probability 1.
"""

from __future__ import annotations

import random
from typing import Callable, Protocol

from repro.fe.febo import Febo
from repro.fe.feip import Feip
from repro.mathutils.group import GroupParams


class IndCpaAdapter(Protocol):
    """What the game needs from a public-key encryption candidate."""

    def keygen(self) -> object:
        """Generate and return the public key (fresh per game)."""

    def encrypt(self, public_key: object, message: int) -> tuple:
        """Encrypt ``message``; the result must be hashable."""


class FeboIndCpaAdapter:
    """The real FEBO scheme (fresh nonce per encryption)."""

    def __init__(self, params: GroupParams, rng: random.Random | None = None):
        self._febo = Febo(params, rng=rng)

    def keygen(self):
        mpk, _ = self._febo.setup()
        return mpk

    def encrypt(self, public_key, message: int) -> tuple:
        ct = self._febo.encrypt(public_key, message)
        return (ct.cmt, ct.ct)


class FeipIndCpaAdapter:
    """The real FEIP scheme, encrypting length-1 vectors."""

    def __init__(self, params: GroupParams, rng: random.Random | None = None):
        self._feip = Feip(params, rng=rng)

    def keygen(self):
        mpk, _ = self._feip.setup(1)
        return mpk

    def encrypt(self, public_key, message: int) -> tuple:
        ct = self._feip.encrypt(public_key, [message])
        return (ct.ct0, ct.ct)


class EngineFeboAdapter:
    """FEBO through the offline/online :class:`EncryptionEngine` path.

    Banks nonce tuples in chunks and encrypts by consuming them, so the
    game exercises exactly the precomputed-material code path.  IND-CPA
    holds iff every banked tuple is consumed at most once -- which is
    the engine's contract -- so the harness passing here with the same
    ~0 advantage as the direct adapters is the runnable witness that
    the split did not change the security argument.
    """

    PREFILL_CHUNK = 64

    def __init__(self, params: GroupParams, rng: random.Random | None = None):
        from repro.fe.engine import EncryptionEngine

        self._engine = EncryptionEngine(params, rng=rng)

    def keygen(self):
        mpk, _ = self._engine.febo.setup()
        return mpk

    def encrypt(self, public_key, message: int) -> tuple:
        if self._engine.available_febo(public_key) == 0:
            self._engine.prefill_febo(public_key, self.PREFILL_CHUNK)
        ct = self._engine.encrypt_febo(public_key, message)
        return (ct.cmt, ct.ct)


class EngineFeipAdapter:
    """FEIP through the offline/online engine path (length-1 vectors)."""

    PREFILL_CHUNK = 64

    def __init__(self, params: GroupParams, rng: random.Random | None = None):
        from repro.fe.engine import EncryptionEngine

        self._engine = EncryptionEngine(params, rng=rng)

    def keygen(self):
        mpk, _ = self._engine.feip.setup(1)
        return mpk

    def encrypt(self, public_key, message: int) -> tuple:
        if self._engine.available_feip(public_key) == 0:
            self._engine.prefill_feip(public_key, self.PREFILL_CHUNK)
        ct = self._engine.encrypt_feip(public_key, [message])
        return (ct.ct0, ct.ct)


class DeterministicFeboAdapter:
    """FEBO with the nonce FIXED -- deliberately broken.

    With ``r`` constant the ciphertext of a message is a deterministic
    function of the public key, so an adversary that simply re-encrypts
    its two candidate messages and compares wins the game outright.
    This is the foil that shows the game harness has teeth.
    """

    def __init__(self, params: GroupParams, rng: random.Random | None = None):
        self._febo = Febo(params, rng=rng)
        self._fixed_r = 123456789

    def keygen(self):
        mpk, _ = self._febo.setup()
        return mpk

    def encrypt(self, public_key, message: int) -> tuple:
        group = self._febo.group
        cmt = group.gexp(self._fixed_r)
        ct = group.mul(group.exp(public_key.h, self._fixed_r),
                       group.gexp(int(message)))
        return (cmt, ct)


#: A distinguisher takes (adapter, public key, challenge ciphertext,
#: m0, m1) and outputs its guess bit.
Distinguisher = Callable[[IndCpaAdapter, object, tuple, int, int], int]


def replay_distinguisher(adapter: IndCpaAdapter, public_key: object,
                         challenge: tuple, m0: int, m1: int) -> int:
    """Re-encrypt both candidates and compare against the challenge.

    Optimal against deterministic encryption; no better than guessing
    against probabilistic encryption.
    """
    if adapter.encrypt(public_key, m0) == challenge:
        return 0
    if adapter.encrypt(public_key, m1) == challenge:
        return 1
    return 0  # deterministic tie-break; correctness rate ~1/2 when blind


def run_indcpa_game(adapter: IndCpaAdapter,
                    distinguisher: Distinguisher = replay_distinguisher,
                    m0: int = 3, m1: int = 17, trials: int = 200,
                    rng: random.Random | None = None) -> float:
    """Run the game ``trials`` times; return the adversary's advantage.

    Advantage = |2 * Pr[guess == b] - 1|, in [0, 1]: ~0 for a secure
    scheme against this adversary, 1 for a broken one.
    """
    if m0 == m1:
        raise ValueError("the two candidate messages must differ")
    rng = rng or random.Random()
    public_key = adapter.keygen()
    correct = 0
    for _ in range(trials):
        b = rng.randrange(2)
        challenge = adapter.encrypt(public_key, m1 if b else m0)
        guess = distinguisher(adapter, public_key, challenge, m0, m1)
        if guess == b:
            correct += 1
    return abs(2 * correct / trials - 1)
