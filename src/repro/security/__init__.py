"""Executable security experiments.

Theorem 1 of the paper proves FEBO selectively IND-CPA secure under DDH;
:mod:`repro.security.indcpa` turns the IND-CPA game into a runnable
harness so the *mechanical* prerequisites of the proof (probabilistic
encryption above all) can be checked, and a deliberately-broken variant
can be shown to lose the game.
"""

from repro.security.indcpa import (
    DeterministicFeboAdapter,
    FeboIndCpaAdapter,
    FeipIndCpaAdapter,
    replay_distinguisher,
    run_indcpa_game,
)

__all__ = [
    "DeterministicFeboAdapter",
    "FeboIndCpaAdapter",
    "FeipIndCpaAdapter",
    "replay_distinguisher",
    "run_indcpa_game",
]
