"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...],
                   fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform -- good default for sigmoid/tanh nets."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(rng: np.random.Generator, shape: tuple[int, ...],
              fan_in: int) -> np.ndarray:
    """He initialization -- good default for ReLU nets."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)
