"""Learning-rate schedules.

Small, optimizer-agnostic helpers: each schedule maps an epoch index to
a learning rate, and ``apply`` mutates the optimizer in place.  The
paper trains at a fixed rate; schedules are part of the "explore more
complex models" future-work surface.
"""

from __future__ import annotations

import math


class Schedule:
    """Interface: rate(epoch) -> learning rate."""

    def rate(self, epoch: int) -> float:
        raise NotImplementedError

    def apply(self, optimizer, epoch: int) -> float:
        """Set ``optimizer.learning_rate`` for ``epoch``; returns the rate."""
        new_rate = self.rate(epoch)
        optimizer.learning_rate = new_rate
        return new_rate


class ConstantSchedule(Schedule):
    def __init__(self, learning_rate: float):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate

    def rate(self, epoch: int) -> float:
        return self.learning_rate


class StepDecay(Schedule):
    """Multiply the rate by ``factor`` every ``step_size`` epochs."""

    def __init__(self, initial: float, factor: float = 0.5,
                 step_size: int = 10):
        if not 0 < factor <= 1:
            raise ValueError("factor must be in (0, 1]")
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.initial = initial
        self.factor = factor
        self.step_size = step_size

    def rate(self, epoch: int) -> float:
        return self.initial * self.factor ** (epoch // self.step_size)


class CosineAnnealing(Schedule):
    """Cosine decay from ``initial`` to ``minimum`` over ``total_epochs``."""

    def __init__(self, initial: float, total_epochs: int,
                 minimum: float = 0.0):
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        if minimum > initial:
            raise ValueError("minimum cannot exceed initial")
        self.initial = initial
        self.total_epochs = total_epochs
        self.minimum = minimum

    def rate(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        return self.minimum + 0.5 * (self.initial - self.minimum) * (
            1 + math.cos(math.pi * progress)
        )
