"""Core layer abstractions: base class, Dense, Flatten, activations.

Every layer implements ``forward`` and ``backward``; trainable layers
expose ``params`` / ``grads`` dictionaries the optimizer walks.  Shapes
are batch-first everywhere: Dense works on ``(N, features)``, the conv
stack (see :mod:`repro.nn.conv`) on ``(N, C, H, W)``.
"""

from __future__ import annotations

import numpy as np

from repro.nn import activations
from repro.nn.initializers import xavier_uniform, zeros


class Layer:
    """Base class.  Subclasses cache whatever forward state backward needs."""

    #: trainable parameters, name -> array (empty for stateless layers)
    params: dict[str, np.ndarray]
    #: gradients matching :attr:`params` keys, filled by ``backward``
    grads: dict[str, np.ndarray]

    def __init__(self) -> None:
        self.params = {}
        self.grads = {}

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__

    def parameter_count(self) -> int:
        return sum(int(p.size) for p in self.params.values())


class Dense(Layer):
    """Fully-connected layer ``y = x @ W + b``.

    Args:
        in_features / out_features: layer geometry.
        rng: numpy Generator used for Xavier initialization.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.params = {
            "W": xavier_uniform(rng, (in_features, out_features),
                                in_features, out_features),
            "b": zeros((out_features,)),
        }
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected (N, {self.in_features}), got {x.shape}"
            )
        if training:
            self._x = x
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grads["W"] = self._x.T @ grad_out
        self.grads["b"] = grad_out.sum(axis=0)
        return grad_out @ self.params["W"].T


class Flatten(Layer):
    """Reshape ``(N, ...)`` to ``(N, prod(...))``."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)


class Sigmoid(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = activations.sigmoid(x)
        if training:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * activations.sigmoid_grad(self._out)


class ReLU(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._x = x
        return activations.relu(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        return grad_out * activations.relu_grad(self._x)


class Tanh(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = activations.tanh(x)
        if training:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * activations.tanh_grad(self._out)
