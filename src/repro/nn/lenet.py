"""LeNet-5 builders.

``build_lenet5`` follows the architecture the paper adopts (Section
III-E): C1 conv, S2 average pool, C3 conv, S4 average pool, C5 fully
connected, output layer -- with sigmoid activations as in the classic
network and a softmax cross-entropy head.

``build_lenet_small`` is the scaled variant used for the tractable
CryptoCNN experiments in this reproduction (the encrypted path costs
thousands of modular exponentiations per image, and the paper itself
needed 57 hours for two epochs on its testbed).  The topology --
conv, pool, conv, pool, dense -- and the secure first layer are
identical; only the spatial dimensions shrink.
"""

from __future__ import annotations

import numpy as np

from repro.nn.conv import Conv2D, conv_out_dims
from repro.nn.layers import Dense, Flatten, ReLU, Sigmoid, Tanh
from repro.nn.model import Sequential
from repro.nn.pooling import AvgPool2D


def build_lenet5(rng: np.random.Generator | None = None,
                 num_classes: int = 10) -> Sequential:
    """Classic LeNet-5 for 28x28 single-channel images (MNIST geometry)."""
    rng = rng or np.random.default_rng()
    return Sequential([
        Conv2D(1, 6, filter_size=5, stride=1, padding=2, rng=rng),   # C1: 28x28x6
        Sigmoid(),
        AvgPool2D(2),                                                # S2: 14x14x6
        Conv2D(6, 16, filter_size=5, stride=1, padding=0, rng=rng),  # C3: 10x10x16
        Sigmoid(),
        AvgPool2D(2),                                                # S4: 5x5x16
        Flatten(),
        Dense(16 * 5 * 5, 120, rng=rng),                             # C5
        Sigmoid(),
        Dense(120, 84, rng=rng),                                     # F6
        Sigmoid(),
        Dense(84, num_classes, rng=rng),                             # output logits
    ])


def build_lenet_small(rng: np.random.Generator | None = None,
                      image_size: int = 8, num_classes: int = 10,
                      conv_channels: int = 4, filter_size: int = 3,
                      hidden: int = 32, activation: str = "relu") -> Sequential:
    """LeNet-style model for ``image_size`` x ``image_size`` inputs.

    conv(pad 1) -> act -> avgpool(2) -> dense -> act -> logits.
    The first conv layer's geometry is what the secure convolution
    (Algorithm 3) replaces in the CryptoCNN twin of this model.

    ``activation`` defaults to ReLU (one of the typical activation layers
    the paper lists in Section II-C) because the sigmoid variant needs far
    more iterations to escape its initial plateau at this small scale;
    pass ``"sigmoid"`` for the classic LeNet flavour.
    """
    rng = rng or np.random.default_rng()
    try:
        act = {"relu": ReLU, "sigmoid": Sigmoid, "tanh": Tanh}[activation]
    except KeyError:
        raise ValueError(f"unknown activation {activation!r}") from None
    out_h, out_w = conv_out_dims(image_size, image_size, filter_size, 1, 1)
    pooled_h, pooled_w = out_h // 2, out_w // 2
    return Sequential([
        Conv2D(1, conv_channels, filter_size=filter_size, stride=1, padding=1,
               rng=rng),
        act(),
        AvgPool2D(2),
        Flatten(),
        Dense(conv_channels * pooled_h * pooled_w, hidden, rng=rng),
        act(),
        Dense(hidden, num_classes, rng=rng),
    ])
