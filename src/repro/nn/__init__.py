"""A small, from-scratch NumPy neural-network library.

This is the plaintext substrate the paper's prototype implemented "using
Numpy": layers with explicit forward/backward passes, losses, SGD-family
optimizers and a :class:`~repro.nn.model.Sequential` container.  It serves
double duty here:

* as the **baseline** (plain LeNet-5) that Figure 6 / Table III compare
  against, and
* as the plaintext portion of CryptoNN -- every layer *after* the secure
  feed-forward step and *before* the secure evaluation step runs on this
  substrate unchanged, which is the core claim of the framework.
"""

from repro.nn.activations import relu, sigmoid, softmax, tanh
from repro.nn.conv import Conv2D
from repro.nn.layers import Dense, Flatten, ReLU, Sigmoid, Tanh
from repro.nn.lenet import build_lenet5, build_lenet_small
from repro.nn.losses import MSELoss, SoftmaxCrossEntropyLoss
from repro.nn.metrics import accuracy, confusion_matrix
from repro.nn.model import Sequential, TrainingHistory
from repro.nn.optimizers import SGD, Adam
from repro.nn.pooling import AvgPool2D, MaxPool2D

__all__ = [
    "Adam",
    "AvgPool2D",
    "Conv2D",
    "Dense",
    "Flatten",
    "MSELoss",
    "MaxPool2D",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "SoftmaxCrossEntropyLoss",
    "Tanh",
    "TrainingHistory",
    "accuracy",
    "build_lenet5",
    "build_lenet_small",
    "confusion_matrix",
    "relu",
    "sigmoid",
    "softmax",
    "tanh",
]
