"""Evaluation metrics."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Classification accuracy.

    Accepts either class-index vectors or one-hot / probability matrices
    for both arguments.
    """
    pred_idx = predictions.argmax(axis=1) if predictions.ndim > 1 else predictions
    true_idx = targets.argmax(axis=1) if targets.ndim > 1 else targets
    if pred_idx.shape != true_idx.shape:
        raise ValueError(f"shape mismatch: {pred_idx.shape} vs {true_idx.shape}")
    return float(np.mean(pred_idx == true_idx))


def confusion_matrix(predictions: np.ndarray, targets: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """Rows = true class, columns = predicted class."""
    pred_idx = predictions.argmax(axis=1) if predictions.ndim > 1 else predictions
    true_idx = targets.argmax(axis=1) if targets.ndim > 1 else targets
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for t, p in zip(true_idx.astype(int), pred_idx.astype(int)):
        matrix[t, p] += 1
    return matrix
