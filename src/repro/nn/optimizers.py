"""Optimizers: plain/momentum SGD (used by the paper) and Adam (extra).

Every optimizer exposes ``state_dict()``/``load_state_dict()`` so a
training run can be checkpointed and resumed *bit-exactly*: the slot
arrays (velocity / moments) and step counters are part of the float
trajectory, so weights alone are not enough to continue a run.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer


def _slot_to_state(slot: dict[tuple[int, str], np.ndarray]
                   ) -> dict[str, np.ndarray]:
    """(layer_idx, param) keyed arrays -> serialization-friendly copies."""
    return {f"{idx}.{name}": value.copy()
            for (idx, name), value in slot.items()}


def _slot_from_state(state: dict[str, np.ndarray]
                     ) -> dict[tuple[int, str], np.ndarray]:
    slot: dict[tuple[int, str], np.ndarray] = {}
    for key, value in state.items():
        idx, _, name = key.partition(".")
        slot[(int(idx), name)] = np.asarray(value).copy()
    return slot


class Optimizer:
    """Walks the layers' ``params``/``grads`` dictionaries in lock-step."""

    def step(self, layers: list[Layer]) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Serializable snapshot of every piece of mutable state.

        Array values are copies; mutating the returned dict never
        touches the live optimizer.
        """
        return {"type": type(self).__name__}

    def load_state_dict(self, state: dict) -> None:
        """Inverse of :meth:`state_dict`; restores hyperparameters too,
        so a resumed run follows the checkpointed trajectory exactly."""
        self._check_state_type(state)

    def _check_state_type(self, state: dict) -> None:
        if state.get("type") != type(self).__name__:
            raise ValueError(
                f"optimizer state is for {state.get('type')!r}, "
                f"not {type(self).__name__}")


class SGD(Optimizer):
    """Stochastic gradient descent, optionally with classical momentum.

    The paper trains CryptoCNN "using stochastic gradient descent"
    (Section IV-B3); momentum defaults to 0 to match.
    """

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    def step(self, layers: list[Layer]) -> None:
        for layer_idx, layer in enumerate(layers):
            for name, param in layer.params.items():
                grad = layer.grads.get(name)
                if grad is None:
                    raise RuntimeError(
                        f"{layer.name}.{name} has no gradient; run backward first"
                    )
                if self.momentum:
                    key = (layer_idx, name)
                    velocity = self._velocity.get(key)
                    if velocity is None:
                        velocity = np.zeros_like(param)
                    velocity = self.momentum * velocity - self.learning_rate * grad
                    self._velocity[key] = velocity
                    param += velocity
                else:
                    param -= self.learning_rate * grad

    def state_dict(self) -> dict:
        return {
            "type": "SGD",
            "learning_rate": self.learning_rate,
            "momentum": self.momentum,
            "velocity": _slot_to_state(self._velocity),
        }

    def load_state_dict(self, state: dict) -> None:
        self._check_state_type(state)
        self.learning_rate = float(state["learning_rate"])
        self.momentum = float(state["momentum"])
        self._velocity = _slot_from_state(state["velocity"])


class Adam(Optimizer):
    """Adam (Kingma & Ba) -- not used by the paper, provided as an extra."""

    def __init__(self, learning_rate: float = 0.001, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8):
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[tuple[int, str], np.ndarray] = {}
        self._v: dict[tuple[int, str], np.ndarray] = {}
        self._t = 0

    def step(self, layers: list[Layer]) -> None:
        self._t += 1
        for layer_idx, layer in enumerate(layers):
            for name, param in layer.params.items():
                grad = layer.grads.get(name)
                if grad is None:
                    raise RuntimeError(
                        f"{layer.name}.{name} has no gradient; run backward first"
                    )
                key = (layer_idx, name)
                m = self._m.get(key, np.zeros_like(param))
                v = self._v.get(key, np.zeros_like(param))
                m = self.beta1 * m + (1 - self.beta1) * grad
                v = self.beta2 * v + (1 - self.beta2) * grad ** 2
                self._m[key], self._v[key] = m, v
                m_hat = m / (1 - self.beta1 ** self._t)
                v_hat = v / (1 - self.beta2 ** self._t)
                param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "type": "Adam",
            "learning_rate": self.learning_rate,
            "beta1": self.beta1,
            "beta2": self.beta2,
            "eps": self.eps,
            "t": self._t,
            "m": _slot_to_state(self._m),
            "v": _slot_to_state(self._v),
        }

    def load_state_dict(self, state: dict) -> None:
        self._check_state_type(state)
        self.learning_rate = float(state["learning_rate"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self._t = int(state["t"])
        self._m = _slot_from_state(state["m"])
        self._v = _slot_from_state(state["v"])
