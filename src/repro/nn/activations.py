"""Activation functions and their derivatives.

Plain functions over NumPy arrays; the layer wrappers live in
:mod:`repro.nn.layers`.
"""

from __future__ import annotations

import numpy as np


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function ``1 / (1 + exp(-z))``."""
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def sigmoid_grad(activated: np.ndarray) -> np.ndarray:
    """Derivative in terms of the *activated* value: ``a * (1 - a)``."""
    return activated * (1.0 - activated)


def relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def relu_grad(z: np.ndarray) -> np.ndarray:
    """Derivative in terms of the pre-activation ``z``."""
    return (z > 0).astype(np.float64)


def tanh(z: np.ndarray) -> np.ndarray:
    return np.tanh(z)


def tanh_grad(activated: np.ndarray) -> np.ndarray:
    return 1.0 - activated ** 2


def softmax(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Shift-invariant softmax along ``axis``."""
    shifted = z - np.max(z, axis=axis, keepdims=True)
    exp_z = np.exp(shifted)
    return exp_z / np.sum(exp_z, axis=axis, keepdims=True)


def log_softmax(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable ``log(softmax(z))``."""
    shifted = z - np.max(z, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
