"""Numerical gradient checking for layers and losses.

Central differences against the analytic backward pass -- the standard
way to validate a hand-rolled NN substrate, used heavily in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer
from repro.nn.losses import Loss


def numeric_grad(fn, array: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``array``.

    ``fn`` must read ``array`` in place (we perturb entries directly).
    """
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        plus = fn()
        array[idx] = original - eps
        minus = fn()
        array[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_layer_input_grad(layer: Layer, x: np.ndarray,
                           eps: float = 1e-5) -> float:
    """Max abs error between analytic and numeric dOut/dX (summed output)."""
    def objective() -> float:
        return float(layer.forward(x, training=True).sum())

    numeric = numeric_grad(objective, x, eps)
    layer.forward(x, training=True)
    analytic = layer.backward(np.ones_like(layer.forward(x, training=True)))
    return float(np.max(np.abs(numeric - analytic)))


def check_layer_param_grads(layer: Layer, x: np.ndarray,
                            eps: float = 1e-5) -> dict[str, float]:
    """Max abs error per parameter between analytic and numeric grads."""
    errors: dict[str, float] = {}
    for name, param in layer.params.items():
        def objective() -> float:
            return float(layer.forward(x, training=True).sum())

        numeric = numeric_grad(objective, param, eps)
        out = layer.forward(x, training=True)
        layer.backward(np.ones_like(out))
        errors[name] = float(np.max(np.abs(numeric - layer.grads[name])))
    return errors


def check_loss_grad(loss: Loss, predictions: np.ndarray,
                    targets: np.ndarray, eps: float = 1e-6) -> float:
    """Max abs error between analytic and numeric dL/dPredictions."""
    def objective() -> float:
        return loss.forward(predictions, targets)

    numeric = numeric_grad(objective, predictions, eps)
    loss.forward(predictions, targets)
    analytic = loss.backward()
    return float(np.max(np.abs(numeric - analytic)))
