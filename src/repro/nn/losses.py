"""Loss functions.

Two losses cover the paper's two worked examples:

* :class:`MSELoss` -- the quadratic cost ``E = 1/2 sum (yhat - y)^2`` of
  the binary-classification walkthrough (Section III-D);
* :class:`SoftmaxCrossEntropyLoss` -- softmax output + cross-entropy of
  the CryptoCNN case (Section III-E2), with the classic combined gradient
  ``p - y``.

Both return *mean-per-sample* losses and gradients so learning rates are
batch-size independent.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import log_softmax, softmax


class Loss:
    """Interface: ``forward`` returns the scalar loss, ``backward`` dL/dinput."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError


class MSELoss(Loss):
    """``E = 1/(2N) * sum_i (yhat_i - y_i)^2``."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None
        self._n: int = 0

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: {predictions.shape} vs {targets.shape}"
            )
        self._n = predictions.shape[0]
        self._diff = predictions - targets
        return float(0.5 * np.sum(self._diff ** 2) / self._n)

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return self._diff / self._n


class SoftmaxCrossEntropyLoss(Loss):
    """Softmax over logits + cross-entropy against one-hot targets.

    ``forward`` consumes raw logits ``a`` and one-hot ``y``; the combined
    gradient is ``(p - y) / N`` -- the very expression whose secure
    evaluation (element-wise subtraction of the encrypted label) the
    paper's Section III-E2 derives.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.shape != targets.shape:
            raise ValueError(f"shape mismatch: {logits.shape} vs {targets.shape}")
        self._probs = softmax(logits, axis=1)
        self._targets = targets
        log_p = log_softmax(logits, axis=1)
        return float(-np.sum(targets * log_p) / logits.shape[0])

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        return (self._probs - self._targets) / self._probs.shape[0]

    @property
    def probabilities(self) -> np.ndarray:
        """Softmax probabilities cached by the last forward pass."""
        if self._probs is None:
            raise RuntimeError("no forward pass yet")
        return self._probs
