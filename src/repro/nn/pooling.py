"""Average and max pooling layers (the S2/S4 layers of LeNet-5)."""

from __future__ import annotations

import numpy as np

from repro.nn.conv import conv_out_dims, im2col, col2im
from repro.nn.layers import Layer


class AvgPool2D(Layer):
    """Non-overlapping (or strided) average pooling."""

    def __init__(self, pool_size: int, stride: int | None = None):
        super().__init__()
        self.pool_size = pool_size
        self.stride = stride or pool_size
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_dims: tuple[int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        out_h, out_w = conv_out_dims(h, w, self.pool_size, self.stride, 0)
        # pool per channel: fold channels into the batch dimension
        reshaped = x.reshape(n * c, 1, h, w)
        cols, _ = im2col(reshaped, self.pool_size, self.stride, 0)
        out = cols.mean(axis=1).reshape(n, c, out_h, out_w)
        if training:
            self._x_shape = x.shape
            self._out_dims = (out_h, out_w)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None or self._out_dims is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        area = self.pool_size * self.pool_size
        grad_cols = np.repeat(
            grad_out.reshape(n * c * self._out_dims[0] * self._out_dims[1], 1),
            area, axis=1,
        ) / area
        grad = col2im(grad_cols, (n * c, 1, h, w), self.pool_size, self.stride, 0)
        return grad.reshape(n, c, h, w)


class MaxPool2D(Layer):
    """Max pooling with argmax routing in the backward pass."""

    def __init__(self, pool_size: int, stride: int | None = None):
        super().__init__()
        self.pool_size = pool_size
        self.stride = stride or pool_size
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_dims: tuple[int, int] | None = None
        self._argmax: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        out_h, out_w = conv_out_dims(h, w, self.pool_size, self.stride, 0)
        reshaped = x.reshape(n * c, 1, h, w)
        cols, _ = im2col(reshaped, self.pool_size, self.stride, 0)
        argmax = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), argmax].reshape(n, c, out_h, out_w)
        if training:
            self._x_shape = x.shape
            self._out_dims = (out_h, out_w)
            self._argmax = argmax
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None or self._argmax is None or self._out_dims is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        area = self.pool_size * self.pool_size
        flat = grad_out.reshape(-1)
        grad_cols = np.zeros((flat.shape[0], area), dtype=grad_out.dtype)
        grad_cols[np.arange(flat.shape[0]), self._argmax] = flat
        grad = col2im(grad_cols, (n * c, 1, h, w), self.pool_size, self.stride, 0)
        return grad.reshape(n, c, h, w)
