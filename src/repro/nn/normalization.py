"""Normalization layers (extensions beyond the paper's models).

BatchNorm sits in the plaintext tail of a CryptoNN model, so it composes
with the secure trainers unchanged -- one of the "various other neural
network models" directions the paper's conclusion names.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer


class BatchNorm1D(Layer):
    """Batch normalization over (N, features) inputs.

    Standard train-time batch statistics with running estimates for
    eval mode; learnable scale ``gamma`` and shift ``beta``.
    """

    def __init__(self, num_features: int, momentum: float = 0.9,
                 eps: float = 1e-5):
        super().__init__()
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.params = {
            "gamma": np.ones(num_features),
            "beta": np.zeros(num_features),
        }
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1D expected (N, {self.num_features}), got {x.shape}"
            )
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = (self.momentum * self.running_mean
                                 + (1 - self.momentum) * mean)
            self.running_var = (self.momentum * self.running_var
                                + (1 - self.momentum) * var)
        else:
            mean, var = self.running_mean, self.running_var
        std = np.sqrt(var + self.eps)
        normalized = (x - mean) / std
        out = self.params["gamma"] * normalized + self.params["beta"]
        if training:
            self._cache = (normalized, std)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, std = self._cache
        n = grad_out.shape[0]
        self.grads["gamma"] = (grad_out * normalized).sum(axis=0)
        self.grads["beta"] = grad_out.sum(axis=0)
        # gradient through the normalization (standard batchnorm backward)
        grad_norm = grad_out * self.params["gamma"]
        return (
            grad_norm
            - grad_norm.mean(axis=0)
            - normalized * (grad_norm * normalized).mean(axis=0)
        ) / std
