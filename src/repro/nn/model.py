"""Sequential model container with a batched training loop.

The loop records per-batch accuracy/loss so Figure 6 ("average batch
accuracy" per iteration) can be regenerated directly from the history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.layers import Layer
from repro.nn.losses import Loss
from repro.nn.metrics import accuracy
from repro.nn.optimizers import Optimizer


@dataclass
class TrainingHistory:
    """Per-batch and per-epoch training records."""

    batch_loss: list[float] = field(default_factory=list)
    batch_accuracy: list[float] = field(default_factory=list)
    epoch_loss: list[float] = field(default_factory=list)
    epoch_accuracy: list[float] = field(default_factory=list)

    def averaged_batch_accuracy(self, window: int) -> list[float]:
        """Mean batch accuracy per consecutive window (paper Fig. 6 plots
        windows of 50 batches)."""
        series = self.batch_accuracy
        return [
            float(np.mean(series[i:i + window]))
            for i in range(0, len(series), window)
        ]

    def to_dict(self) -> dict[str, list[float]]:
        """Copy of all series (floats round-trip exactly through JSON)."""
        return {
            "batch_loss": list(self.batch_loss),
            "batch_accuracy": list(self.batch_accuracy),
            "epoch_loss": list(self.epoch_loss),
            "epoch_accuracy": list(self.epoch_accuracy),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrainingHistory":
        return cls(
            batch_loss=[float(v) for v in data.get("batch_loss", [])],
            batch_accuracy=[float(v) for v in data.get("batch_accuracy", [])],
            epoch_loss=[float(v) for v in data.get("epoch_loss", [])],
            epoch_accuracy=[float(v) for v in data.get("epoch_accuracy", [])],
        )


def iterate_batches(x: np.ndarray, y: np.ndarray, batch_size: int,
                    rng: np.random.Generator | None = None,
                    shuffle: bool = True):
    """Yield ``(x_batch, y_batch)`` tuples; final partial batch included."""
    n = x.shape[0]
    order = np.arange(n)
    if shuffle:
        if rng is None:
            rng = np.random.default_rng()
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        idx = order[start:start + batch_size]
        yield x[idx], y[idx]


class Sequential:
    """Plain layer stack: forward, backward, fit, evaluate."""

    def __init__(self, layers: list[Layer]):
        if not layers:
            raise ValueError("a model needs at least one layer")
        self.layers = layers

    # -- inference ------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x, training=False)

    # -- training -------------------------------------------------------------
    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def train_batch(self, x: np.ndarray, y: np.ndarray, loss: Loss,
                    optimizer: Optimizer) -> tuple[float, np.ndarray]:
        """One forward/backward/update step; returns (loss, predictions)."""
        predictions = self.forward(x, training=True)
        loss_value = loss.forward(predictions, y)
        self.backward(loss.backward())
        optimizer.step(self.layers)
        return loss_value, predictions

    def fit(self, x: np.ndarray, y: np.ndarray, loss: Loss,
            optimizer: Optimizer, epochs: int = 1, batch_size: int = 64,
            rng: np.random.Generator | None = None, shuffle: bool = True,
            on_batch: Callable[[int, float, float], None] | None = None
            ) -> TrainingHistory:
        """Mini-batch training loop.

        Args:
            on_batch: optional callback ``(batch_index, loss, accuracy)``,
                useful for progress display and experiment harnesses.
        """
        history = TrainingHistory()
        batch_index = 0
        for _ in range(epochs):
            epoch_losses: list[float] = []
            epoch_accs: list[float] = []
            for x_batch, y_batch in iterate_batches(x, y, batch_size, rng,
                                                    shuffle):
                loss_value, predictions = self.train_batch(
                    x_batch, y_batch, loss, optimizer
                )
                batch_acc = accuracy(predictions, y_batch)
                history.batch_loss.append(loss_value)
                history.batch_accuracy.append(batch_acc)
                epoch_losses.append(loss_value)
                epoch_accs.append(batch_acc)
                if on_batch is not None:
                    on_batch(batch_index, loss_value, batch_acc)
                batch_index += 1
            history.epoch_loss.append(float(np.mean(epoch_losses)))
            history.epoch_accuracy.append(float(np.mean(epoch_accs)))
        return history

    def evaluate(self, x: np.ndarray, y: np.ndarray,
                 batch_size: int = 256) -> float:
        """Accuracy over a dataset, batched to bound memory."""
        correct = 0
        for start in range(0, x.shape[0], batch_size):
            preds = self.predict(x[start:start + batch_size])
            batch_y = y[start:start + batch_size]
            correct += int(
                (preds.argmax(axis=1) == batch_y.argmax(axis=1)).sum()
                if batch_y.ndim > 1
                else (preds.argmax(axis=1) == batch_y).sum()
            )
        return correct / x.shape[0]

    # -- introspection -----------------------------------------------------------
    def parameter_count(self) -> int:
        return sum(layer.parameter_count() for layer in self.layers)

    def get_weights(self) -> list[dict[str, np.ndarray]]:
        """Deep copy of all parameters (for checkpointing / twin models)."""
        return [
            {name: param.copy() for name, param in layer.params.items()}
            for layer in self.layers
        ]

    def set_weights(self, weights: list[dict[str, np.ndarray]]) -> None:
        if len(weights) != len(self.layers):
            raise ValueError("weight list length != layer count")
        for layer, layer_weights in zip(self.layers, weights):
            for name, value in layer_weights.items():
                layer.params[name][...] = value
