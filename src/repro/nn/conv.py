"""2-D convolution via im2col/col2im.

The plaintext counterpart of the paper's secure convolution (Algorithm 3):
both express convolution as inner products between flattened windows and
flattened filters, which is what lets CryptoCNN swap the first layer's
forward pass for FEIP decryptions without touching the rest of the model.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import he_normal, zeros
from repro.nn.layers import Layer


def conv_out_dims(height: int, width: int, filter_size: int, stride: int,
                  padding: int) -> tuple[int, int]:
    out_h = (height + 2 * padding - filter_size) // stride + 1
    out_w = (width + 2 * padding - filter_size) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("filter does not fit input")
    return out_h, out_w


def im2col(x: np.ndarray, filter_size: int, stride: int,
           padding: int) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` into ``(N * out_h * out_w, C * f * f)``.

    Column order matches the window flattening of
    :func:`repro.matrix.secure_conv.extract_windows` (channel-major), so
    plaintext and secure paths produce byte-identical orderings.
    """
    n, c, h, w = x.shape
    out_h, out_w = conv_out_dims(h, w, filter_size, stride, padding)
    padded = np.pad(x, [(0, 0), (0, 0), (padding, padding), (padding, padding)])
    col = np.empty((n, c, filter_size, filter_size, out_h, out_w),
                   dtype=x.dtype)
    for i in range(filter_size):
        i_max = i + stride * out_h
        for j in range(filter_size):
            j_max = j + stride * out_w
            col[:, :, i, j, :, :] = padded[:, :, i:i_max:stride, j:j_max:stride]
    return (
        col.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1),
        (out_h, out_w),
    )


def col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int],
           filter_size: int, stride: int, padding: int) -> np.ndarray:
    """Fold gradient columns back onto the (padded) input, then crop."""
    n, c, h, w = x_shape
    out_h, out_w = conv_out_dims(h, w, filter_size, stride, padding)
    col = cols.reshape(n, out_h, out_w, c, filter_size, filter_size)
    col = col.transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(filter_size):
        i_max = i + stride * out_h
        for j in range(filter_size):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += col[:, :, i, j, :, :]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2D(Layer):
    """Convolution layer with weights ``(F, C, f, f)`` and bias ``(F,)``."""

    def __init__(self, in_channels: int, out_channels: int, filter_size: int,
                 stride: int = 1, padding: int = 0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.filter_size = filter_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * filter_size * filter_size
        self.params = {
            "W": he_normal(rng, (out_channels, in_channels,
                                 filter_size, filter_size), fan_in),
            "b": zeros((out_channels,)),
        }
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_dims: tuple[int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n = x.shape[0]
        cols, (out_h, out_w) = im2col(x, self.filter_size, self.stride,
                                      self.padding)
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        out = cols @ w_flat.T + self.params["b"]
        out = out.reshape(n, out_h, out_w, self.out_channels)
        out = out.transpose(0, 3, 1, 2)
        if training:
            self._cols = cols
            self._x_shape = x.shape
            self._out_dims = (out_h, out_w)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n = self._x_shape[0]
        grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        self.grads["W"] = (grad_flat.T @ self._cols).reshape(self.params["W"].shape)
        self.grads["b"] = grad_flat.sum(axis=0)
        grad_cols = grad_flat @ w_flat
        return col2im(grad_cols, self._x_shape, self.filter_size, self.stride,
                      self.padding)
