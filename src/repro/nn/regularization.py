"""Regularization layers (extensions beyond the paper's models).

The paper's LeNet-5 has no regularization; Dropout is provided for the
"various other neural network models" the conclusion names as future
work.  It composes with the CryptoNN trainers unchanged because it sits
in the plaintext tail of the network.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer


class Dropout(Layer):
    """Inverted dropout: scales at train time, identity at eval time."""

    def __init__(self, rate: float, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng or np.random.default_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.uniform(size=x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            # rate 0 or eval-mode forward: gradient passes through
            return grad_out
        return grad_out * self._mask
