"""Functional encryption schemes used by CryptoNN.

* :mod:`repro.fe.feip` -- functional encryption for inner products,
  the DDH construction of Abdalla, Bourse, De Caro and Pointcheval
  (PKC'15), reproduced from Section II-B of the CryptoNN paper.
* :mod:`repro.fe.febo` -- the paper's new functional encryption for the
  four basic arithmetic operations (Section III-B), derived from ElGamal.

Both schemes share the Schnorr-group substrate from
:mod:`repro.mathutils.group` and recover plaintext results with the
bounded discrete-log solver from :mod:`repro.mathutils.dlog`.
:mod:`repro.fe.engine` adds the offline/online encryption split: both
schemes' ``encrypt`` accept precomputed single-use nonce tuples, and the
:class:`~repro.fe.engine.EncryptionEngine` banks them.
"""

from repro.fe.engine import EncryptionEngine, resolve_engine
from repro.fe.errors import (
    CiphertextError,
    CryptoError,
    FunctionKeyError,
    UnsupportedOperationError,
)
from repro.fe.febo import Febo, FeboOp
from repro.fe.feip import Feip
from repro.fe.keys import (
    FeboCiphertext,
    FeboFunctionKey,
    FeboMasterKey,
    FeboNonce,
    FeboPublicKey,
    FeipCiphertext,
    FeipFunctionKey,
    FeipMasterKey,
    FeipNonce,
    FeipPublicKey,
    key_fingerprint,
)

__all__ = [
    "CiphertextError",
    "CryptoError",
    "EncryptionEngine",
    "Febo",
    "FeboCiphertext",
    "FeboFunctionKey",
    "FeboMasterKey",
    "FeboNonce",
    "FeboOp",
    "FeboPublicKey",
    "Feip",
    "FeipCiphertext",
    "FeipFunctionKey",
    "FeipMasterKey",
    "FeipNonce",
    "FeipPublicKey",
    "FunctionKeyError",
    "UnsupportedOperationError",
    "key_fingerprint",
    "resolve_engine",
]
