"""FEIP: functional encryption for inner products (Abdalla et al., PKC'15).

The scheme computes ``f(x, y) = <x, y>`` over an encrypted vector ``x``
and a plaintext weight vector ``y`` baked into the function key:

* ``Setup(1^lambda, 1^eta)``: sample ``s = (s_1..s_eta)`` from Z_q, publish
  ``mpk = (g, h_i = g^{s_i})`` and keep ``msk = s``.
* ``KeyDerive(msk, y)``: ``sk_f = <y, s> mod q``.
* ``Encrypt(mpk, x)``: sample nonce ``r``; ``ct_0 = g^r``,
  ``ct_i = h_i^r * g^{x_i}``.
* ``Decrypt``: ``g^{<x,y>} = prod_i ct_i^{y_i} / ct_0^{sk_f}`` followed by a
  bounded discrete log.

Security is selective IND-CPA under DDH (proof in the original paper; the
CryptoNN paper reuses it verbatim).

**Offline/online split.**  Encryption factors into a plaintext-independent
offline half -- sample ``r``, compute ``ct_0 = g^r`` and the masks
``h_i^r`` (all full-width exponentiations) -- and an online half that is
one *small-exponent* ``g^{x_i}`` plus one modular multiply per element.
:meth:`Feip.encrypt` accepts a precomputed
:class:`~repro.fe.keys.FeipNonce` carrying the offline half;
:class:`~repro.fe.engine.EncryptionEngine` banks such tuples (serially,
from a background thread, or pool-parallel) and guarantees each is
consumed exactly once -- nonce reuse breaks IND-CPA, and a nonce built
for a different public key is rejected by fingerprint.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.fe.errors import CiphertextError, FunctionKeyError
from repro.fe.keys import (
    FeipCiphertext,
    FeipFunctionKey,
    FeipMasterKey,
    FeipNonce,
    FeipPublicKey,
    key_fingerprint,
)
from repro.mathutils.dlog import GLOBAL_SOLVER_CACHE, DlogSolver, SolverCache
from repro.mathutils.fastexp import SharedBaseMultiExp
from repro.mathutils.group import GroupParams, SchnorrGroup


class Feip:
    """Stateless FEIP scheme over a fixed Schnorr group.

    One instance may serve many key pairs; all state lives in the key
    objects so the authority / client / server split of the CryptoNN
    framework maps onto plain function calls.
    """

    def __init__(self, params: GroupParams, rng: random.Random | None = None,
                 solver_cache: SolverCache | None = None):
        self.group = SchnorrGroup(params, rng=rng)
        self._solver_cache = solver_cache or GLOBAL_SOLVER_CACHE

    # -- algorithms ---------------------------------------------------------
    def setup(self, eta: int) -> tuple[FeipPublicKey, FeipMasterKey]:
        """Generate a key pair supporting vectors of length ``eta``."""
        if eta < 1:
            raise ValueError("vector length eta must be >= 1")
        s = tuple(self.group.random_exponent() for _ in range(eta))
        h = tuple(self.group.gexp(si) for si in s)
        return FeipPublicKey(params=self.group.params, h=h), FeipMasterKey(s=s)

    def key_derive(self, msk: FeipMasterKey, y: Sequence[int]) -> FeipFunctionKey:
        """Derive ``sk_f = <y, s> mod q`` for weight vector ``y``."""
        if len(y) != msk.eta:
            raise FunctionKeyError(
                f"weight vector length {len(y)} != key length {msk.eta}"
            )
        q = self.group.q
        sk = sum(int(yi) * si for yi, si in zip(y, msk.s)) % q
        return FeipFunctionKey(y=tuple(int(v) for v in y), sk=sk)

    def encrypt(self, mpk: FeipPublicKey, x: Sequence[int],
                nonce: FeipNonce | None = None) -> FeipCiphertext:
        """Encrypt integer vector ``x`` (signed entries allowed).

        With a precomputed ``nonce`` only the online half runs: one
        small-exponent ``g^{x_i}`` and one multiply per element.  The
        nonce must have been built for this ``mpk`` (fingerprint
        checked) and must never be passed twice -- single-use is the
        caller's contract (the engine's store enforces it).
        """
        if len(x) != mpk.eta:
            raise CiphertextError(
                f"plaintext length {len(x)} != key length {mpk.eta}"
            )
        group = self.group
        if nonce is not None:
            if nonce.key_fp != key_fingerprint(mpk) or nonce.eta != mpk.eta:
                raise CiphertextError(
                    "nonce was precomputed for a different public key"
                )
            ct0 = nonce.ct0
            ct = tuple(
                group.mul(mask, group.gexp(int(xi)))
                for mask, xi in zip(nonce.masks, x)
            )
            return FeipCiphertext(ct0=ct0, ct=ct)
        r = group.random_exponent()
        # g and the h_i are reused across every encryption under this key,
        # so all full-width exponentiations go through fixed-base tables.
        ct0 = group.gexp(r)
        ct = tuple(
            group.mul(group.exp_cached(hi, r), group.gexp(int(xi)))
            for hi, xi in zip(mpk.h, x)
        )
        return FeipCiphertext(ct0=ct0, ct=ct)

    def decrypt_raw(self, mpk: FeipPublicKey, ciphertext: FeipCiphertext,
                    skf: FeipFunctionKey) -> int:
        """Return the group element ``g^{<x, y>}`` (no discrete log)."""
        if ciphertext.eta != len(skf.y):
            raise CiphertextError(
                f"ciphertext length {ciphertext.eta} != weight length {len(skf.y)}"
            )
        group = self.group
        # One simultaneous multi-exponentiation replaces the per-entry
        # square-and-multiply loop; folding ct0^{-sk} in as a plain pow
        # also avoids the former explicit modular inversion.
        numerator = group.multiexp(ciphertext.ct, skf.y)
        return group.mul(numerator, group.exp(ciphertext.ct0, -skf.sk))

    def decrypt(self, mpk: FeipPublicKey, ciphertext: FeipCiphertext,
                skf: FeipFunctionKey, bound: int,
                solver: DlogSolver | None = None) -> int:
        """Recover ``<x, y>`` assuming ``|<x, y>| <= bound``.

        Raises:
            DiscreteLogError: when the true inner product falls outside
                ``[-bound, bound]`` or the ciphertext/key are inconsistent.
        """
        element = self.decrypt_raw(mpk, ciphertext, skf)
        solver = solver or self.solver_for(bound)
        return solver.solve(element)

    def decrypt_rows(self, mpk: FeipPublicKey, ciphertext: FeipCiphertext,
                     keys: Sequence[FeipFunctionKey], bound: int,
                     solver: DlogSolver | None = None) -> list[int]:
        """Recover ``[<x, y_i>]`` for every key against one ciphertext.

        The batched form of :meth:`decrypt`: all rows of a decryption
        matrix share the same ciphertext bases, so one
        :class:`~repro.mathutils.fastexp.SharedBaseMultiExp` context
        builds the per-base window tables (and the amortized ``ct_0``
        comb) once, evaluates every ``(y_i, -sk_i)`` row against them,
        and hands the whole column of group elements to the solver's
        shared giant-step walk.  Row *i* of the result equals
        ``decrypt(mpk, ciphertext, keys[i], bound)`` exactly -- the
        per-row path remains the reference implementation.

        Raises:
            DiscreteLogError: when any inner product falls outside
                ``[-bound, bound]``.
        """
        keys = list(keys)
        for skf in keys:
            if ciphertext.eta != len(skf.y):
                raise CiphertextError(
                    f"ciphertext length {ciphertext.eta} != weight length "
                    f"{len(skf.y)}"
                )
        if not keys:
            return []
        group = self.group
        context = SharedBaseMultiExp(
            ciphertext.ct, group.p, order=group.q,
            fixed_base=ciphertext.ct0, rows_hint=len(keys),
        )
        elements = context.eval_many(
            [skf.y for skf in keys],
            fixed_exponents=[-skf.sk for skf in keys],
        )
        solver = solver or self.solver_for(bound)
        return solver.solve_many(elements)

    def solver_for(self, bound: int) -> DlogSolver:
        """Public accessor for the cached bounded-dlog solver."""
        return self._solver_cache.get(self.group, bound)
