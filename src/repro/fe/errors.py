"""Exception hierarchy for the functional-encryption layer."""


class CryptoError(Exception):
    """Base class for all crypto-layer failures."""


class CiphertextError(CryptoError):
    """Malformed or incompatible ciphertext (wrong length, bad element)."""


class FunctionKeyError(CryptoError):
    """Function key does not match the requested operation/ciphertext."""


class UnsupportedOperationError(CryptoError):
    """Operation outside the permitted function set F."""
