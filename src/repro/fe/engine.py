"""Offline/online encryption engine for the client-side hot path.

The paper's cost profile (Figures 3-5) is modular exponentiation; PR 1
attacked the server half (decryption).  This module is the client-side
twin: the classic offline/online split for DDH-style schemes.  Every
FEIP encryption spends ``1 + eta`` full-width exponentiations on values
that do not depend on the plaintext -- the nonce commitment ``g^r`` and
the masks ``h_i^r`` -- and only a *small-exponent* ``g^{x_i}`` on the
message itself.  Precomputing ``(r, g^r, h_1^r..h_eta^r)`` tuples ahead
of time therefore moves essentially the whole encryption cost off the
critical path: the online phase is one tiny comb-table walk plus one
modular multiply per element.

:class:`EncryptionEngine` owns per-public-key stores of precomputed
:class:`~repro.fe.keys.FeipNonce` / :class:`~repro.fe.keys.FeboNonce`
tuples and offers three ways to fill them:

* :meth:`prefill_feip` / :meth:`prefill_febo` -- synchronous, in-process
  (routed through an attached
  :class:`~repro.matrix.parallel.SecureComputePool` when one is
  configured, so idle workers produce material in bulk);
* :meth:`prefill_async` -- a background daemon thread tops the store up
  while the caller does other work;
* nothing at all -- :meth:`encrypt_feip` falls back to computing a
  fresh tuple on demand (counted in :attr:`misses`), so the engine is
  always correct, just slower when cold.

**Nonce hygiene is the safety property.**  Reusing ``r`` across two
ciphertexts is an IND-CPA break (the ratio of the two ciphertexts
reveals ``g^{x_i - x'_i}``), so the store hands every tuple out at most
once: consumption is a single ``deque.popleft`` under a lock, atomic
under both thread and pool concurrency, and each nonce carries the
fingerprint of the public key it was built for so cross-key use raises
instead of corrupting data.  ``tests/test_engine.py`` pins both
properties.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from collections.abc import Sequence

from repro.fe.errors import CiphertextError
from repro.fe.febo import Febo
from repro.fe.feip import Feip
from repro.fe.keys import (
    FeboCiphertext,
    FeboNonce,
    FeboPublicKey,
    FeipCiphertext,
    FeipNonce,
    FeipPublicKey,
    key_fingerprint,
)
from repro.mathutils.group import GroupParams, SchnorrGroup
from repro.obs.metrics import GLOBAL_REGISTRY
from repro.obs.tracing import GLOBAL_TRACER


def make_feip_nonce(group: SchnorrGroup, mpk: FeipPublicKey) -> FeipNonce:
    """Compute one offline FEIP tuple ``(r, g^r, h_i^r)`` (full cost)."""
    r = group.random_exponent()
    return FeipNonce(
        r=r,
        ct0=group.gexp(r),
        masks=tuple(group.exp_cached(hi, r) for hi in mpk.h),
        key_fp=key_fingerprint(mpk),
    )


def make_febo_nonce(group: SchnorrGroup, mpk: FeboPublicKey) -> FeboNonce:
    """Compute one offline FEBO tuple ``(r, g^r, h^r)`` (full cost)."""
    r = group.random_exponent()
    return FeboNonce(
        r=r,
        cmt=group.gexp(r),
        mask=group.exp_cached(mpk.h, r),
        key_fp=key_fingerprint(mpk),
    )


class _NonceStore:
    """Thread-safe FIFO of single-use nonces.

    ``pop`` is the atomic consumption point: a tuple leaves the store
    exactly once, whichever thread wins the lock.
    """

    def __init__(self):
        self._items: deque = deque()
        self._lock = threading.Lock()

    def push_many(self, nonces) -> None:
        with self._lock:
            self._items.extend(nonces)

    def pop(self):
        with self._lock:
            return self._items.popleft() if self._items else None

    def __len__(self) -> int:
        return len(self._items)


class EncryptionEngine:
    """Precomputed-nonce encryption for FEIP and FEBO.

    One engine serves any number of public keys (the CryptoNN client
    encrypts under one FEIP key per vector length plus one FEBO key);
    stores are keyed by the public-key fingerprint so material can never
    cross keys.

    Args:
        params: the Schnorr group both schemes operate in.
        rng: nonce randomness (defaults to a fresh OS-seeded Random).
        pool: optional :class:`~repro.matrix.parallel.SecureComputePool`
            used to produce offline material and bulk encryptions in
            parallel.
        workers: shortcut resolving the shared process-wide pool (same
            policy as the server-side trainers); ignored when ``pool``
            is given.
    """

    def __init__(self, params: GroupParams, rng: random.Random | None = None,
                 pool=None, workers: int | None = None):
        self.params = params
        self.feip = Feip(params, rng=rng)
        self.febo = Febo(params, rng=rng)
        if pool is None and workers:
            # deferred import: matrix.parallel imports fe modules
            from repro.matrix.parallel import resolve_pool
            pool = resolve_pool(None, workers)
        self.pool = pool
        self._feip_stores: dict[int, _NonceStore] = {}
        self._febo_stores: dict[int, _NonceStore] = {}
        self._stores_lock = threading.Lock()
        self._fill_threads: list[threading.Thread] = []
        # counters race without their own lock: += is a non-atomic
        # read-modify-write even under the GIL
        self._stats_lock = threading.Lock()
        #: offline tuples produced / consumed / computed on demand
        self.precomputed = 0
        self.consumed = 0
        self.misses = 0
        GLOBAL_REGISTRY.register_collector(
            f"engine.{id(self)}", self._obs_collect)

    def _count(self, attr: str, n: int = 1) -> None:
        with self._stats_lock:
            setattr(self, attr, getattr(self, attr) + n)

    def stats(self) -> dict[str, int]:
        """One consistent snapshot of the hit/miss counters.

        Reading the three attributes individually can interleave with a
        concurrent ``_count`` (a filler thread or pooled bulk encrypt)
        and report e.g. a consumption without its production; copying
        under the same lock the writers take closes that gap.
        """
        with self._stats_lock:
            return {
                "precomputed": self.precomputed,
                "consumed": self.consumed,
                "misses": self.misses,
            }

    def _obs_collect(self) -> dict[str, int]:
        """Registry collector: counters plus current nonce-store depth."""
        stats = self.stats()
        with self._stores_lock:
            depth = sum(len(s) for s in self._feip_stores.values()) \
                + sum(len(s) for s in self._febo_stores.values())
        return {
            "repro_engine_precomputed_total": stats["precomputed"],
            "repro_engine_consumed_total": stats["consumed"],
            "repro_engine_misses_total": stats["misses"],
            "repro_engine_nonce_store_depth": depth,
        }

    # -- stores ---------------------------------------------------------------
    def _store(self, stores: dict[int, _NonceStore], mpk) -> _NonceStore:
        fp = key_fingerprint(mpk)
        with self._stores_lock:
            store = stores.get(fp)
            if store is None:
                store = stores[fp] = _NonceStore()
            return store

    def available_feip(self, mpk: FeipPublicKey) -> int:
        """Precomputed FEIP tuples currently banked for ``mpk``."""
        return len(self._store(self._feip_stores, mpk))

    def available_febo(self, mpk: FeboPublicKey) -> int:
        """Precomputed FEBO tuples currently banked for ``mpk``."""
        return len(self._store(self._febo_stores, mpk))

    # -- offline phase --------------------------------------------------------
    def prefill_feip(self, mpk: FeipPublicKey, count: int) -> int:
        """Bank ``count`` offline FEIP tuples for ``mpk``; returns count.

        Routed through the attached pool when one is present (workers
        generate independent nonces from their own OS-seeded RNGs),
        serial otherwise.
        """
        if count <= 0:
            return 0
        if self.pool is not None:
            nonces, _ = self.pool.precompute_encryption(
                self.params, feip_mpk=mpk, feip_count=count)
        else:
            group = self.feip.group
            nonces = [make_feip_nonce(group, mpk) for _ in range(count)]
        self._store(self._feip_stores, mpk).push_many(nonces)
        self._count('precomputed', len(nonces))
        return len(nonces)

    def prefill_febo(self, mpk: FeboPublicKey, count: int) -> int:
        """Bank ``count`` offline FEBO tuples for ``mpk``; returns count."""
        if count <= 0:
            return 0
        if self.pool is not None:
            _, nonces = self.pool.precompute_encryption(
                self.params, febo_mpk=mpk, febo_count=count)
        else:
            group = self.febo.group
            nonces = [make_febo_nonce(group, mpk) for _ in range(count)]
        self._store(self._febo_stores, mpk).push_many(nonces)
        self._count('precomputed', len(nonces))
        return len(nonces)

    def prefill_async(self, mpk, count: int) -> threading.Thread:
        """Fill a store from a background daemon thread.

        Dispatches on the key type; :meth:`drain_async` joins every
        filler started this way.  The store's lock makes concurrent
        fill-while-consume safe.
        """
        fill = (self.prefill_feip if isinstance(mpk, FeipPublicKey)
                else self.prefill_febo)
        thread = threading.Thread(target=fill, args=(mpk, count), daemon=True)
        thread.start()
        self._fill_threads.append(thread)
        return thread

    def drain_async(self, timeout: float | None = None) -> None:
        """Join background fillers started by :meth:`prefill_async`."""
        threads, self._fill_threads = self._fill_threads, []
        for thread in threads:
            thread.join(timeout)

    # -- online phase ---------------------------------------------------------
    def encrypt_feip(self, mpk: FeipPublicKey,
                     x: Sequence[int]) -> FeipCiphertext:
        """Encrypt ``x`` consuming one banked tuple (or compute on miss)."""
        nonce = self._store(self._feip_stores, mpk).pop()
        if nonce is None:
            self._count('misses')
            nonce = make_feip_nonce(self.feip.group, mpk)
        else:
            self._count('consumed')
        return self.feip.encrypt(mpk, x, nonce=nonce)

    def encrypt_febo(self, mpk: FeboPublicKey, x: int) -> FeboCiphertext:
        """Encrypt ``x`` consuming one banked tuple (or compute on miss)."""
        nonce = self._store(self._febo_stores, mpk).pop()
        if nonce is None:
            self._count('misses')
            nonce = make_febo_nonce(self.febo.group, mpk)
        else:
            self._count('consumed')
        return self.febo.encrypt(mpk, x, nonce=nonce)

    # -- bulk helpers ---------------------------------------------------------
    def encrypt_feip_columns(self, mpk: FeipPublicKey,
                             columns: Sequence[Sequence[int]]
                             ) -> list[FeipCiphertext]:
        """Encrypt many vectors under one key.

        Consumes banked tuples first; when the store cannot cover the
        batch and a pool is attached, the uncovered remainder is
        encrypted pool-parallel (workers generate their own nonces), so
        bulk throughput scales with workers even without prefill.
        """
        with GLOBAL_TRACER.span("encrypt", scheme="feip", n=len(columns)):
            return self._encrypt_feip_columns(mpk, columns)

    def _encrypt_feip_columns(self, mpk: FeipPublicKey,
                              columns: Sequence[Sequence[int]]
                              ) -> list[FeipCiphertext]:
        store = self._store(self._feip_stores, mpk)
        out: list[FeipCiphertext | None] = [None] * len(columns)
        remainder: list[tuple[int, Sequence[int]]] = []
        for j, column in enumerate(columns):
            nonce = store.pop()
            if nonce is None:
                remainder.append((j, column))
            else:
                self._count('consumed')
                out[j] = self.feip.encrypt(mpk, column, nonce=nonce)
        if remainder:
            if self.pool is not None:
                # not banked material, so still misses for anyone sizing
                # a prefill -- just misses served in parallel
                self._count('misses', len(remainder))
                cts = self.pool.secure_encrypt_columns(
                    self.params, mpk, [list(col) for _, col in remainder])
                for (j, _), ct in zip(remainder, cts):
                    out[j] = ct
            else:
                for j, column in remainder:
                    self._count('misses')
                    out[j] = self.feip.encrypt(
                        mpk, column, nonce=make_feip_nonce(self.feip.group,
                                                           mpk))
        return out

    def encrypt_febo_values(self, mpk: FeboPublicKey,
                            values: Sequence[int]) -> list[FeboCiphertext]:
        """Encrypt many scalars under one key (pool-parallel remainder)."""
        with GLOBAL_TRACER.span("encrypt", scheme="febo", n=len(values)):
            return self._encrypt_febo_values(mpk, values)

    def _encrypt_febo_values(self, mpk: FeboPublicKey,
                             values: Sequence[int]) -> list[FeboCiphertext]:
        store = self._store(self._febo_stores, mpk)
        out: list[FeboCiphertext | None] = [None] * len(values)
        remainder: list[tuple[int, int]] = []
        for j, value in enumerate(values):
            nonce = store.pop()
            if nonce is None:
                remainder.append((j, int(value)))
            else:
                self._count('consumed')
                out[j] = self.febo.encrypt(mpk, value, nonce=nonce)
        if remainder:
            if self.pool is not None:
                self._count('misses', len(remainder))
                cts = self.pool.secure_encrypt_values(
                    self.params, mpk, [v for _, v in remainder])
                for (j, _), ct in zip(remainder, cts):
                    out[j] = ct
            else:
                for j, value in remainder:
                    self._count('misses')
                    out[j] = self.febo.encrypt(
                        mpk, value, nonce=make_febo_nonce(self.febo.group,
                                                          mpk))
        return out


def resolve_engine(engine: EncryptionEngine | None, params: GroupParams,
                   workers: int | None = None,
                   rng: random.Random | None = None
                   ) -> EncryptionEngine | None:
    """Single policy for "which engine does this component use".

    An explicit engine wins; otherwise a configured worker count builds
    one over the shared process-wide pool; otherwise None (the caller
    keeps its serial path).
    """
    if engine is not None:
        return engine
    if workers:
        return EncryptionEngine(params, rng=rng, workers=workers)
    return None
