"""FEBO: functional encryption for basic operations (paper Section III-B).

This is the CryptoNN paper's own contribution: an ElGamal-derived scheme
computing ``f_delta(x, y) = x delta y`` for ``delta in {+, -, *, /}`` where
``x`` is encrypted and ``y`` is the server-side plaintext operand.

* ``Setup(1^lambda)``: ``msk = s``, ``mpk = (h = g^s, g)``.
* ``Encrypt(mpk, x)``: nonce ``r``; commitment ``cmt = g^r``; ``ct = h^r g^x``.
* ``KeyDerive(msk, cmt, delta, y)``::

      sk = cmt^s * g^{-y}     (delta = +)
      sk = cmt^s * g^{y}      (delta = -)
      sk = (cmt^s)^y          (delta = *)
      sk = (cmt^s)^{y^{-1}}   (delta = /)

* ``Decrypt``: ``g^{x+y} = ct / sk`` (add/sub), ``g^{x*y} = ct^y / sk``
  (mul), ``g^{x/y} = ct^{y^{-1}} / sk`` (div), then a bounded discrete log.

Notes faithful to the paper:

* keys are **per-ciphertext** (they depend on the commitment);
* division computes ``x * y^{-1} mod q``, which equals the rational x/y
  only when ``y`` divides ``x`` -- :meth:`Febo.decrypt` therefore only
  supports exact division and raises otherwise;
* the scheme is IND-CPA under DDH (Theorem 1) but intentionally does not
  resist the *direct inference* by an authorized decryptor, which the
  framework layer mitigates with label randomization.
"""

from __future__ import annotations

import enum
import random
from collections.abc import Sequence

from repro.fe.errors import (
    CiphertextError,
    FunctionKeyError,
    UnsupportedOperationError,
)
from repro.fe.keys import (
    FeboCiphertext,
    FeboFunctionKey,
    FeboMasterKey,
    FeboNonce,
    FeboPublicKey,
    key_fingerprint,
)
from repro.mathutils.dlog import GLOBAL_SOLVER_CACHE, DlogSolver, SolverCache
from repro.mathutils.group import GroupParams, SchnorrGroup


class FeboOp(str, enum.Enum):
    """The four permitted arithmetic operations ``delta``."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"

    @classmethod
    def coerce(cls, value: "FeboOp | str") -> "FeboOp":
        """Accept either an enum member or its symbol."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise UnsupportedOperationError(
                f"operation {value!r} not in permitted set {[o.value for o in cls]}"
            ) from None


class Febo:
    """Stateless FEBO scheme over a fixed Schnorr group."""

    def __init__(self, params: GroupParams, rng: random.Random | None = None,
                 solver_cache: SolverCache | None = None):
        self.group = SchnorrGroup(params, rng=rng)
        self._solver_cache = solver_cache or GLOBAL_SOLVER_CACHE

    # -- algorithms ---------------------------------------------------------
    def setup(self) -> tuple[FeboPublicKey, FeboMasterKey]:
        s = self.group.random_exponent()
        return (
            FeboPublicKey(params=self.group.params, h=self.group.gexp(s)),
            FeboMasterKey(s=s),
        )

    def encrypt(self, mpk: FeboPublicKey, x: int,
                nonce: FeboNonce | None = None) -> FeboCiphertext:
        """Encrypt the signed integer ``x``.

        With a precomputed ``nonce`` (commitment + mask) only the
        online half runs: one small-exponent ``g^x`` and one multiply.
        Single-use and key-fingerprint rules as in
        :meth:`repro.fe.feip.Feip.encrypt`.
        """
        group = self.group
        if nonce is not None:
            if nonce.key_fp != key_fingerprint(mpk):
                raise CiphertextError(
                    "nonce was precomputed for a different public key"
                )
            return FeboCiphertext(
                cmt=nonce.cmt,
                ct=group.mul(nonce.mask, group.gexp(int(x))),
            )
        r = group.random_exponent()
        # g and h are reused across every encryption under this key, so
        # the full-width exponentiations go through fixed-base tables.
        cmt = group.gexp(r)
        ct = group.mul(group.exp_cached(mpk.h, r), group.gexp(int(x)))
        return FeboCiphertext(cmt=cmt, ct=ct)

    def key_derive(self, msk: FeboMasterKey, cmt: int, op: FeboOp | str,
                   y: int) -> FeboFunctionKey:
        """Derive the per-ciphertext function key for ``x op y``."""
        op = FeboOp.coerce(op)
        group = self.group
        y = int(y)
        cmt_s = group.exp(cmt, msk.s)
        if op is FeboOp.ADD:
            sk = group.mul(cmt_s, group.gexp(-y))
        elif op is FeboOp.SUB:
            sk = group.mul(cmt_s, group.gexp(y))
        elif op is FeboOp.MUL:
            sk = group.exp(cmt_s, y)
        else:  # DIV
            if y % group.q == 0:
                raise FunctionKeyError("division by zero operand")
            sk = group.exp(cmt_s, group.exp_inverse(y))
        return FeboFunctionKey(op=op.value, y=y, sk=sk, cmt=cmt)

    def decrypt_raw(self, mpk: FeboPublicKey, skf: FeboFunctionKey,
                    ciphertext: FeboCiphertext) -> int:
        """Return the group element ``g^{f_delta(x, y)}``."""
        if skf.cmt and skf.cmt != ciphertext.cmt:
            raise FunctionKeyError(
                "function key was derived for a different ciphertext"
            )
        op = FeboOp.coerce(skf.op)
        group = self.group
        if op in (FeboOp.ADD, FeboOp.SUB):
            return group.div(ciphertext.ct, skf.sk)
        if op is FeboOp.MUL:
            return group.div(group.exp(ciphertext.ct, skf.y), skf.sk)
        # DIV
        inv_y = group.exp_inverse(skf.y)
        return group.div(group.exp(ciphertext.ct, inv_y), skf.sk)

    def decrypt(self, mpk: FeboPublicKey, skf: FeboFunctionKey,
                ciphertext: FeboCiphertext, bound: int,
                solver: DlogSolver | None = None) -> int:
        """Recover ``x op y`` assuming the result is within ``[-bound, bound]``.

        For division the result is only meaningful when ``y`` divides ``x``
        exactly; otherwise ``x * y^{-1} mod q`` is (with overwhelming
        probability) outside any reasonable bound and a
        :class:`~repro.mathutils.dlog.DiscreteLogError` is raised.
        """
        element = self.decrypt_raw(mpk, skf, ciphertext)
        solver = solver or self.solver_for(bound)
        return solver.solve(element)

    def decrypt_many(self, mpk: FeboPublicKey,
                     items: "Sequence[tuple[FeboFunctionKey, FeboCiphertext]]",
                     bound: int, solver: DlogSolver | None = None
                     ) -> list[int]:
        """Batched :meth:`decrypt` over ``(key, ciphertext)`` pairs.

        FEBO keys are per-ciphertext, so unlike FEIP there are no shared
        bases to amortize -- what *is* shared is the bounded discrete
        log: all raw elements go through the solver's batched
        :meth:`~repro.mathutils.dlog.DlogSolver.solve_many`, one
        deduplicated giant-step walk for the whole grid of element-wise
        results instead of one walk per cell.
        """
        elements = [self.decrypt_raw(mpk, skf, ct) for skf, ct in items]
        solver = solver or self.solver_for(bound)
        return solver.solve_many(elements)

    def solver_for(self, bound: int) -> DlogSolver:
        """Public accessor for the cached bounded-dlog solver."""
        return self._solver_cache.get(self.group, bound)
