"""Key and ciphertext containers for FEIP and FEBO.

These are deliberately thin, immutable dataclasses of plain ints so they
serialize trivially (see :mod:`repro.core.serialization`) and cross
process boundaries cheaply for the parallel secure-computation path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mathutils.group import GroupParams


def key_fingerprint(mpk) -> int:
    """Stable fingerprint of a public key for nonce/key binding checks.

    Relies on the frozen dataclasses hashing by value; int hashing is
    deterministic (unaffected by PYTHONHASHSEED), so fingerprints agree
    across processes -- pool workers precompute nonces the parent
    consumes.
    """
    return hash(mpk)


# --------------------------------------------------------------------------
# FEIP (inner product) -- Abdalla et al., reproduced in paper Section II-B
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class FeipPublicKey:
    """``mpk = (g, (h_i = g^{s_i})_{i in [eta]})`` plus the group params."""

    params: GroupParams
    h: tuple[int, ...]

    @property
    def eta(self) -> int:
        """Supported vector length."""
        return len(self.h)


@dataclass(frozen=True)
class FeipMasterKey:
    """``msk = s`` -- held only by the authority."""

    s: tuple[int, ...]

    @property
    def eta(self) -> int:
        return len(self.s)


@dataclass(frozen=True)
class FeipFunctionKey:
    """``sk_f = <y, s>`` for a specific weight vector ``y``.

    The vector itself rides along because FEIP decryption needs ``y`` in
    the clear (paper: Decrypt takes ``ct``, ``mpk``, ``sk_f`` *and* ``y``).
    """

    y: tuple[int, ...]
    sk: int


@dataclass(frozen=True)
class FeipCiphertext:
    """``ct = (ct_0 = g^r, (ct_i = h_i^r g^{x_i})_i)``."""

    ct0: int
    ct: tuple[int, ...]

    @property
    def eta(self) -> int:
        return len(self.ct)


@dataclass(frozen=True)
class FeipNonce:
    """Precomputed offline half of one FEIP encryption.

    Everything about ``Encrypt(mpk, x)`` that does not depend on the
    plaintext: the nonce ``r``, ``ct_0 = g^r`` and the per-slot masks
    ``h_i^r``.  The online phase is then one small-exponent ``g^{x_i}``
    plus one modular multiply per element.

    A nonce is single-use: reusing ``r`` across two ciphertexts leaks
    ``g^{x_i - x'_i}`` and breaks IND-CPA, so consumers (the
    :class:`~repro.fe.engine.EncryptionEngine` store) must hand each
    tuple out exactly once.  ``key_fp`` fingerprints the public key the
    masks were computed under; :meth:`Feip.encrypt` rejects a nonce
    carrying the wrong fingerprint instead of silently producing an
    undecryptable ciphertext.
    """

    r: int
    ct0: int
    masks: tuple[int, ...]
    key_fp: int

    @property
    def eta(self) -> int:
        return len(self.masks)


@dataclass(frozen=True)
class FeboNonce:
    """Precomputed offline half of one FEBO encryption.

    The commitment ``cmt = g^r`` and mask ``h^r``; single-use, key
    fingerprinted -- see :class:`FeipNonce`.
    """

    r: int
    cmt: int
    mask: int
    key_fp: int


# --------------------------------------------------------------------------
# FEBO (basic operations) -- paper Section III-B
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class FeboPublicKey:
    """``mpk = (h = g^s, g)`` plus the group params."""

    params: GroupParams
    h: int


@dataclass(frozen=True)
class FeboMasterKey:
    """``msk = s`` -- held only by the authority."""

    s: int


@dataclass(frozen=True)
class FeboCiphertext:
    """``(cmt = g^r, ct = h^r g^x)``.

    The commitment is part of the ciphertext and must be shipped to the
    authority at key-derivation time -- FEBO function keys are
    per-ciphertext (Section III-B KeyDerive takes ``cmt``).
    """

    cmt: int
    ct: int


@dataclass(frozen=True)
class FeboFunctionKey:
    """``sk_{f_delta}`` bound to one ciphertext commitment and one operand."""

    op: str
    y: int
    sk: int
    # Commitment the key was derived against; checked at decrypt time to
    # give an early, explicit error instead of a garbage discrete log.
    cmt: int = field(default=0)
