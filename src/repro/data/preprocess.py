"""Client-side pre-processing (paper Section III-A overview).

Two pieces:

* the mechanical encoding (flattening images into vectors, one-hot
  labels) that precedes encryption, and
* the **random label mapping** the paper requires before encrypting
  labels ("to prevent a direct inference attack ... the label should be
  mapped to a random number first", Sections III-A and IV-A):
  :class:`LabelMapper` draws a secret random permutation of class indices
  shared by the data owners; the server trains against permuted one-hot
  targets and never learns which logical class an output unit encodes.
"""

from __future__ import annotations

import numpy as np


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels -> one-hot matrix of shape (N, num_classes)."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"expected 1-D labels, got shape {labels.shape}")
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= num_classes:
        raise ValueError("label outside [0, num_classes)")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def flatten_images(images: np.ndarray) -> np.ndarray:
    """(N, C, H, W) -> (N, C*H*W), the paper's image-to-vector pretreatment."""
    return images.reshape(images.shape[0], -1)


def shared_feature_scale(features: list[np.ndarray]) -> float:
    """Global max-abs over all shards (plus epsilon against all-zeros).

    Multi-source training requires every client to scale its features
    identically -- encrypted shards cannot be re-normalized server-side
    -- so the scale must be agreed from the union of shards, not
    per-client.  Distribute the result alongside the public parameters.
    """
    return max(float(np.abs(x).max()) for x in features) + 1e-9


def normalize_features(x: np.ndarray, scale: float) -> np.ndarray:
    """Scale features into [-1, 1] with an agreed shared scale."""
    return np.clip(np.asarray(x, dtype=np.float64) / scale, -1.0, 1.0)


class LabelMapper:
    """Secret random permutation of class labels, shared by data owners.

    The permutation is sampled once from a seed the clients share (the
    authority may distribute it alongside ``mpk``); the server only ever
    sees mapped labels, so recovering ``Y - P`` during the secure
    evaluation step does not directly reveal the logical class.
    """

    def __init__(self, num_classes: int, rng: np.random.Generator | None = None):
        if num_classes < 2:
            raise ValueError("need at least 2 classes")
        rng = rng or np.random.default_rng()
        self.num_classes = num_classes
        self._forward = rng.permutation(num_classes)
        self._inverse = np.argsort(self._forward)

    def map_labels(self, labels: np.ndarray) -> np.ndarray:
        """Client side: logical label -> wire label."""
        labels = np.asarray(labels, dtype=np.int64)
        return self._forward[labels]

    def unmap_labels(self, mapped: np.ndarray) -> np.ndarray:
        """Client side: wire label -> logical label."""
        mapped = np.asarray(mapped, dtype=np.int64)
        return self._inverse[mapped]

    def unmap_probabilities(self, probabilities: np.ndarray) -> np.ndarray:
        """Reorder an (N, num_classes) probability matrix back to logical
        class order (used when the client interprets predictions)."""
        return probabilities[:, self._forward]

    @property
    def permutation(self) -> np.ndarray:
        return self._forward.copy()
