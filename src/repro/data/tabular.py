"""Synthetic "federated clinics" tabular data.

The paper's introduction motivates CryptoNN with distributed federal
clinics training a diagnostic model on privacy-sensitive records.  This
generator produces a binary-classification task (e.g. benign/malignant)
as a two-component Gaussian mixture with per-clinic distribution shift,
so multi-client experiments exercise realistically non-IID shards.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset


def load_clinics(n_clinics: int = 3, samples_per_clinic: int = 200,
                 n_features: int = 8, class_separation: float = 2.0,
                 clinic_shift: float = 0.3, seed: int = 0) -> list[Dataset]:
    """Generate one binary-labelled shard per clinic.

    Args:
        n_clinics: number of data owners.
        samples_per_clinic: shard size.
        n_features: feature dimensionality (vitals, lab results, ...).
        class_separation: distance between class means.
        clinic_shift: stddev of the per-clinic mean offset (non-IID-ness).
        seed: master seed.

    Returns:
        List of :class:`Dataset` shards with ``num_classes == 2`` and
        features standardized to roughly unit scale.
    """
    rng = np.random.default_rng(seed)
    direction = rng.normal(size=n_features)
    direction /= np.linalg.norm(direction)
    mean_pos = 0.5 * class_separation * direction
    mean_neg = -0.5 * class_separation * direction
    shards: list[Dataset] = []
    for _ in range(n_clinics):
        offset = rng.normal(0.0, clinic_shift, size=n_features)
        labels = rng.integers(0, 2, size=samples_per_clinic)
        x = np.empty((samples_per_clinic, n_features))
        for i, label in enumerate(labels):
            mean = mean_pos if label == 1 else mean_neg
            x[i] = rng.normal(mean + offset, 1.0)
        shards.append(Dataset(x=x, y=labels.astype(np.int64), num_classes=2))
    return shards


def merge_shards(shards: list[Dataset]) -> Dataset:
    """Concatenate shards into a single dataset (the server's view)."""
    if not shards:
        raise ValueError("no shards to merge")
    num_classes = shards[0].num_classes
    if any(s.num_classes != num_classes for s in shards):
        raise ValueError("shards disagree on num_classes")
    return Dataset(
        x=np.concatenate([s.x for s in shards]),
        y=np.concatenate([s.y for s in shards]),
        num_classes=num_classes,
    )
