"""Synthetic MNIST stand-in: procedurally rendered digit images.

The real MNIST (60k/10k examples, LeCun & Cortes) cannot be downloaded in
this offline environment.  This module renders the digits 0-9 from 5x7
bitmap glyphs onto a configurable canvas with randomized geometry and
noise:

* nearest-neighbour upsampling to the target canvas;
* random sub-glyph translation (like MNIST's centering jitter);
* per-pixel Gaussian noise and global intensity jitter;
* optional random distractor strokes to make the task non-trivial.

The resulting distribution is learnable by the same LeNet-style
architectures with the same qualitative accuracy dynamics the paper's
Figure 6 / Table III report (fast rise within the first epoch), while
keeping the crypto code path byte-identical to what real MNIST would
exercise.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset

# 5x7 bitmap glyphs, one string row per pixel row ('1' = ink).
_GLYPHS: dict[int, tuple[str, ...]] = {
    0: ("01110", "10001", "10011", "10101", "11001", "10001", "01110"),
    1: ("00100", "01100", "00100", "00100", "00100", "00100", "01110"),
    2: ("01110", "10001", "00001", "00010", "00100", "01000", "11111"),
    3: ("11111", "00010", "00100", "00010", "00001", "10001", "01110"),
    4: ("00010", "00110", "01010", "10010", "11111", "00010", "00010"),
    5: ("11111", "10000", "11110", "00001", "00001", "10001", "01110"),
    6: ("00110", "01000", "10000", "11110", "10001", "10001", "01110"),
    7: ("11111", "00001", "00010", "00100", "01000", "01000", "01000"),
    8: ("01110", "10001", "10001", "01110", "10001", "10001", "01110"),
    9: ("01110", "10001", "10001", "01111", "00001", "00010", "01100"),
}

GLYPH_HEIGHT = 7
GLYPH_WIDTH = 5


def glyph_bitmap(digit: int) -> np.ndarray:
    """Return the raw 7x5 {0,1} bitmap for ``digit``."""
    try:
        rows = _GLYPHS[digit]
    except KeyError:
        raise ValueError(f"digit must be 0-9, got {digit}") from None
    return np.array([[int(ch) for ch in row] for row in rows], dtype=np.float64)


def _resize_nearest(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Nearest-neighbour resize (no scipy dependency in the hot path)."""
    in_h, in_w = image.shape
    row_idx = (np.arange(out_h) * in_h // out_h).clip(0, in_h - 1)
    col_idx = (np.arange(out_w) * in_w // out_w).clip(0, in_w - 1)
    return image[np.ix_(row_idx, col_idx)]


def render_digit(digit: int, canvas: int = 8,
                 rng: np.random.Generator | None = None,
                 noise: float = 0.15, max_shift: int = 1,
                 intensity_jitter: float = 0.25,
                 distractor_prob: float = 0.2) -> np.ndarray:
    """Render one randomized digit image in ``[0, 1]`` of shape (canvas, canvas).

    Args:
        digit: class 0-9.
        canvas: output side length (>= 7 recommended).
        rng: randomness source; a fresh default generator when None.
        noise: stddev of additive per-pixel Gaussian noise.
        max_shift: maximum absolute translation in pixels.
        intensity_jitter: ink intensity is drawn from
            ``1 - U(0, intensity_jitter)``.
        distractor_prob: probability of adding one random 1-pixel stroke.
    """
    if canvas < GLYPH_HEIGHT:
        raise ValueError(f"canvas must be >= {GLYPH_HEIGHT}")
    rng = rng or np.random.default_rng()
    glyph = glyph_bitmap(digit)
    # leave a 1-pixel margin for translation
    inner = max(GLYPH_HEIGHT, canvas - 2 * max_shift)
    scaled = _resize_nearest(glyph, inner, max(GLYPH_WIDTH, inner * GLYPH_WIDTH // GLYPH_HEIGHT))
    scaled = scaled[:, :canvas]  # guard tall-canvas aspect overflow
    image = np.zeros((canvas, canvas), dtype=np.float64)
    dy = int(rng.integers(-max_shift, max_shift + 1))
    dx = int(rng.integers(-max_shift, max_shift + 1))
    top = max(0, (canvas - scaled.shape[0]) // 2 + dy)
    left = max(0, (canvas - scaled.shape[1]) // 2 + dx)
    bottom = min(canvas, top + scaled.shape[0])
    right = min(canvas, left + scaled.shape[1])
    image[top:bottom, left:right] = scaled[: bottom - top, : right - left]
    image *= 1.0 - rng.uniform(0.0, intensity_jitter)
    if rng.uniform() < distractor_prob:
        # a short random stroke that the model must learn to ignore
        r = int(rng.integers(0, canvas))
        c0 = int(rng.integers(0, canvas - 2))
        image[r, c0:c0 + 2] = np.maximum(image[r, c0:c0 + 2], rng.uniform(0.3, 0.7))
    image += rng.normal(0.0, noise, size=image.shape)
    return image.clip(0.0, 1.0)


def load_synth_digits(n_train: int = 2000, n_test: int = 500, canvas: int = 8,
                      seed: int = 0, noise: float = 0.15,
                      **render_kwargs) -> tuple[Dataset, Dataset]:
    """Generate a balanced train/test split of synthetic digits.

    Returns:
        ``(train, test)`` datasets with images of shape (N, 1, canvas,
        canvas) in [0, 1] and integer labels.
    """
    rng = np.random.default_rng(seed)

    def make(n: int) -> Dataset:
        labels = rng.integers(0, 10, size=n)
        images = np.stack([
            render_digit(int(label), canvas=canvas, rng=rng, noise=noise,
                         **render_kwargs)
            for label in labels
        ])
        return Dataset(x=images[:, np.newaxis, :, :],
                       y=labels.astype(np.int64), num_classes=10)

    return make(n_train), make(n_test)
