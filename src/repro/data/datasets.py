"""Dataset container and split helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Dataset:
    """Features plus integer class labels.

    ``x`` is (N, ...) float data, ``y`` is (N,) integer labels.
    """

    x: np.ndarray
    y: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"x has {self.x.shape[0]} samples but y has {self.y.shape[0]}"
            )

    def __len__(self) -> int:
        return int(self.x.shape[0])

    def subset(self, indices: np.ndarray) -> "Dataset":
        return Dataset(x=self.x[indices], y=self.y[indices],
                       num_classes=self.num_classes)

    def take(self, n: int) -> "Dataset":
        """First ``n`` samples (handy for scaled-down experiments)."""
        return Dataset(x=self.x[:n], y=self.y[:n], num_classes=self.num_classes)

    def shards(self, count: int) -> list["Dataset"]:
        """Split into ``count`` near-equal shards (the distributed-clients
        setting: each shard plays one data-owner)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        index_chunks = np.array_split(np.arange(len(self)), count)
        return [self.subset(chunk) for chunk in index_chunks]


def train_test_split(dataset: Dataset, test_fraction: float = 0.2,
                     rng: np.random.Generator | None = None
                     ) -> tuple[Dataset, Dataset]:
    """Shuffle and split into train/test datasets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = rng or np.random.default_rng()
    order = rng.permutation(len(dataset))
    n_test = max(1, int(len(dataset) * test_fraction))
    return dataset.subset(order[n_test:]), dataset.subset(order[:n_test])
