"""Datasets and pre-processing for the CryptoNN experiments.

The paper evaluates on MNIST; this environment has no network access, so
:mod:`repro.data.synth_digits` provides a procedurally-generated stand-in
with the same task structure (10-class digit images), as documented in
DESIGN.md.  :mod:`repro.data.tabular` generates the "federated clinics"
binary-classification data motivating the paper's introduction.
"""

from repro.data.datasets import Dataset, train_test_split
from repro.data.preprocess import (
    LabelMapper,
    flatten_images,
    normalize_features,
    one_hot,
    shared_feature_scale,
)
from repro.data.synth_digits import load_synth_digits, render_digit
from repro.data.tabular import load_clinics

__all__ = [
    "Dataset",
    "LabelMapper",
    "flatten_images",
    "load_clinics",
    "load_synth_digits",
    "normalize_features",
    "one_hot",
    "render_digit",
    "shared_feature_scale",
    "train_test_split",
]
