"""Core types for the repro static-analysis framework.

The analyzer machine-checks invariants the test suite cannot cover
exhaustively: nonce single-use (an IND-CPA break if violated), lock
discipline on shared counters (the PR 7 race class), entropy/wall-clock
freedom in resume-critical modules (the PR 4 byte-exact guarantee), and
hot-path arithmetic routed through :mod:`repro.mathutils.fastexp`
(the PR 1/5 performance win).  Each invariant is a :class:`Rule`; rules
register themselves in :data:`RULE_REGISTRY` at import time and report
:class:`Finding` objects with a file:line anchor and a fix hint.

A finding is silenced in source with a suppression comment on the same
line or the line directly above::

    rng = np.random.default_rng()  # repro: allow[determinism] -- why

The justification after ``--`` is captured into the finding so the
JSON report doubles as the documented exception list.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from typing import Any, Iterator

#: Severity levels in increasing order of badness.
SEVERITIES = ("warn", "error")


def severity_rank(severity: str) -> int:
    return SEVERITIES.index(severity)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a source location."""

    rule: str
    severity: str
    path: str
    line: int
    message: str
    hint: str = ""
    suppressed: bool = False
    justification: str = ""

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    def format(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        text = (f"{self.path}:{self.line}: [{self.severity}] "
                f"{self.rule}: {self.message}{tag}")
        if self.hint and not self.suppressed:
            text += f"\n    hint: {self.hint}"
        if self.suppressed and self.justification:
            text += f"\n    allowed: {self.justification}"
        return text


_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[([a-z0-9_\-, ]+)\]"
    r"(?:\s*--\s*(?P<why>.*?))?\s*$")


def parse_suppressions(text: str) -> dict[str, dict[int, str]]:
    """Extract ``# repro: allow[rule-id]`` comments.

    Returns ``{rule_id: {covered_line: justification}}``.  A trailing
    comment covers its own line; a standalone comment covers every
    following comment/blank line plus the first code line after it, so
    a multi-line justification still reaches the statement below.

    Comments are found with :mod:`tokenize` (not a regex over raw
    lines) so a string literal *containing* the marker never counts.
    """
    out: dict[str, dict[int, str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    lines = text.splitlines()

    def _coverage(line: int, why: str) -> tuple[list[int], str]:
        covered = [line]
        stripped = lines[line - 1].lstrip() if line <= len(lines) else ""
        if not stripped.startswith("#"):
            return covered, why  # trailing comment: its own line only
        cur = line + 1
        while cur <= len(lines):
            covered.append(cur)
            nxt = lines[cur - 1].strip()
            if nxt and not nxt.startswith("#"):
                break  # reached the code line the comment annotates
            if nxt.startswith("#"):
                # continuation comment line: part of the justification
                why = (why + " " + nxt.lstrip("#").strip()).strip()
            cur += 1
        return covered, why

    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(tok.string)
        if not match:
            continue
        covered_lines, why = _coverage(
            tok.start[0], (match.group("why") or "").strip())
        for rule_id in match.group(1).split(","):
            rule_id = rule_id.strip()
            if not rule_id:
                continue
            covered = out.setdefault(rule_id, {})
            for line in covered_lines:
                covered.setdefault(line, why)
    return out


class SourceFile:
    """A parsed source file: AST, raw lines, and suppression map."""

    def __init__(self, path: Any, rel: str, text: str | None = None):
        self.path = path
        self.rel = rel
        self.text = path.read_text(encoding="utf-8") if text is None else text
        self.tree = ast.parse(self.text, filename=rel)
        self.suppressions = parse_suppressions(self.text)
        self._parents: dict[ast.AST, ast.AST] | None = None

    def parent_map(self) -> dict[ast.AST, ast.AST]:
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        parents = self.parent_map()
        cur = parents.get(node)
        while cur is not None:
            yield cur
            cur = parents.get(cur)

    def suppression_for(self, rule_id: str, line: int) -> str | None:
        """Justification text if (rule, line) is suppressed, else None."""
        covered = self.suppressions.get(rule_id)
        if covered is None:
            return None
        if line in covered:
            return covered[line]
        return None


def attr_path(node: ast.AST) -> str | None:
    """Dotted path of a Name/Attribute chain (``self.stats.hits``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_path(node: ast.Call) -> str | None:
    """Dotted path of a call's callee, or None for computed callees."""
    return attr_path(node.func)


class Rule:
    """Base class: one machine-checked invariant.

    Subclasses set ``id``/``severity``/``description`` and override
    either :meth:`check_file` (scope ``"file"``, run per matching file)
    or :meth:`check_project` (scope ``"project"``, run once over the
    whole tree for cross-file invariants).  ``paths`` limits file-scope
    rules to repo-relative prefixes; empty means every scanned file.
    """

    id: str = ""
    severity: str = "error"
    description: str = ""
    scope: str = "file"
    paths: tuple[str, ...] = ()

    def applies_to(self, rel: str) -> bool:
        return not self.paths or any(rel.startswith(p) for p in self.paths)

    def check_file(self, src: SourceFile, project) -> list[Finding]:
        return []

    def check_project(self, project) -> list[Finding]:
        return []

    def finding(self, rel: str, line: int, message: str,
                hint: str = "") -> Finding:
        return Finding(rule=self.id, severity=self.severity, path=rel,
                       line=line, message=message, hint=hint)


#: Rule id -> rule instance, populated by the ``register`` decorator
#: when :mod:`repro.analysis.rules` is imported.
RULE_REGISTRY: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    if rule.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id: {rule.id}")
    RULE_REGISTRY[rule.id] = rule
    return cls
