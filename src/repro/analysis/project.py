"""Project discovery and the lint driver.

A :class:`Project` is the set of parseable Python files under a repo
root (``src``, ``benchmarks``, ``examples`` by default -- ``tests`` is
excluded because fixtures there violate invariants on purpose, e.g. the
IND-CPA suite's deliberately nonce-fixed scheme).  :func:`run_lint`
runs every requested rule over it and returns a :class:`LintReport`
with suppressions already applied.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any

from repro.analysis.core import (
    RULE_REGISTRY,
    Finding,
    Rule,
    SourceFile,
    severity_rank,
)

#: Directories scanned relative to the repo root, when present.
DEFAULT_ROOTS = ("src", "benchmarks", "examples")

_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "results"}


class Project:
    """Parsed view of the repo's Python files, keyed by relative path."""

    def __init__(self, root: Path, roots: tuple[str, ...] = DEFAULT_ROOTS):
        self.root = Path(root)
        self.parse_errors: list[Finding] = []
        self._files: dict[str, SourceFile] = {}
        for top in roots:
            base = self.root / top
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                if any(part in _SKIP_DIRS for part in path.parts):
                    continue
                rel = path.relative_to(self.root).as_posix()
                try:
                    self._files[rel] = SourceFile(path, rel)
                except (SyntaxError, UnicodeDecodeError) as exc:
                    line = getattr(exc, "lineno", 1) or 1
                    self.parse_errors.append(Finding(
                        rule="parse", severity="error", path=rel,
                        line=line, message=f"file does not parse: {exc}"))

    def files(self) -> list[SourceFile]:
        return list(self._files.values())

    def file(self, rel: str) -> SourceFile | None:
        return self._files.get(rel)

    def __len__(self) -> int:
        return len(self._files)


@dataclasses.dataclass
class LintReport:
    """Everything one lint run produced, suppressions applied."""

    root: str
    rules: list[Rule]
    findings: list[Finding]
    files_scanned: int

    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    def failures(self, fail_on: str) -> list[Finding]:
        """Active findings at or above the ``fail_on`` severity."""
        threshold = severity_rank(fail_on)
        return [f for f in self.active()
                if severity_rank(f.severity) >= threshold]

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": 1,
            "root": self.root,
            "rules": [{"id": r.id, "severity": r.severity,
                       "scope": r.scope, "description": r.description}
                      for r in self.rules],
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "files_scanned": self.files_scanned,
                "errors": sum(1 for f in self.active()
                              if f.severity == "error"),
                "warnings": sum(1 for f in self.active()
                                if f.severity == "warn"),
                "suppressed": len(self.suppressed()),
            },
        }


def _apply_suppression(project: Project, finding: Finding) -> Finding:
    src = project.file(finding.path)
    if src is None:
        return finding
    why = src.suppression_for(finding.rule, finding.line)
    if why is None:
        return finding
    return dataclasses.replace(finding, suppressed=True, justification=why)


def select_rules(rule_ids: list[str] | None) -> list[Rule]:
    """Resolve rule ids to instances; None means every registered rule."""
    import repro.analysis.rules  # noqa: F401  (populates the registry)
    if rule_ids is None:
        return [RULE_REGISTRY[k] for k in sorted(RULE_REGISTRY)]
    rules = []
    for rid in rule_ids:
        if rid not in RULE_REGISTRY:
            known = ", ".join(sorted(RULE_REGISTRY))
            raise KeyError(f"unknown rule {rid!r} (known: {known})")
        rules.append(RULE_REGISTRY[rid])
    return rules


def run_lint(root: Path, rule_ids: list[str] | None = None,
             roots: tuple[str, ...] = DEFAULT_ROOTS) -> LintReport:
    """Run the selected rules over every scanned file under ``root``."""
    rules = select_rules(rule_ids)
    project = Project(Path(root), roots=roots)
    findings: list[Finding] = list(project.parse_errors)
    for rule in rules:
        if rule.scope == "project":
            findings.extend(rule.check_project(project))
        else:
            for src in project.files():
                if rule.applies_to(src.rel):
                    findings.extend(rule.check_file(src, project))
    findings = [_apply_suppression(project, f) for f in findings]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return LintReport(root=str(root), rules=rules, findings=findings,
                      files_scanned=len(project))
