"""Rendering for lint reports: human text and machine JSON."""

from __future__ import annotations

import json

from repro.analysis.project import LintReport


def render_text(report: LintReport, show_suppressed: bool = False) -> str:
    lines: list[str] = []
    active = report.active()
    for finding in active:
        lines.append(finding.format())
    if show_suppressed:
        for finding in report.suppressed():
            lines.append(finding.format())
    summary = report.to_dict()["summary"]
    lines.append(
        f"{summary['files_scanned']} files scanned, "
        f"{summary['errors']} errors, {summary['warnings']} warnings, "
        f"{summary['suppressed']} suppressed")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def render_rule_list(rules) -> str:
    """One line per rule for ``repro lint --list-rules``."""
    width = max(len(r.id) for r in rules)
    return "\n".join(
        f"{r.id:<{width}}  [{r.severity}/{r.scope}]  {r.description}"
        for r in rules)
