"""hotpath-pow: hot-path modules route exponentiation through fastexp.

PR 1/5's entire win is that ``fe/``, ``matrix/`` and the secure layers
never call bare three-argument ``pow`` -- group exponentiation goes
through ``group.exp``/``exp_cached``/``fastexp.multiexp`` so the comb
tables and small signed-exponent forms apply.  A companion pathology
from PR 1: reducing an exponent argument with full-width ``% q`` before
handing it to the exponentiator destroys the small signed form the
fast path depends on.  ``mathutils/`` itself is exempt -- it is where
the real ``pow`` lives.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Rule, SourceFile, register

_EXP_CALLEES = {"exp", "gexp", "exp_cached", "multiexp", "eval_many"}


def _is_q_mod(node: ast.AST) -> bool:
    """True for ``... % q`` / ``... % self.q`` style reductions."""
    if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod)):
        return False
    right = node.right
    if isinstance(right, ast.Name):
        return right.id == "q"
    if isinstance(right, ast.Attribute):
        return right.attr == "q"
    return False


@register
class HotPathPowRule(Rule):
    id = "hotpath-pow"
    severity = "error"
    description = ("no bare 3-arg pow() or full-width %q exponent "
                   "reductions in fe/, matrix/, secure layers")
    paths = ("src/repro/fe/", "src/repro/matrix/",
             "src/repro/core/secure_layers.py")

    def check_file(self, src: SourceFile, project) -> list:
        findings = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "pow" \
                    and len(node.args) == 3:
                findings.append(self.finding(
                    src.rel, node.lineno,
                    "bare 3-arg pow() bypasses the fastexp comb tables",
                    hint="route through group.exp/exp_cached or "
                         "mathutils.fastexp"))
                continue
            callee = node.func.attr if isinstance(
                node.func, ast.Attribute) else (
                node.func.id if isinstance(node.func, ast.Name) else None)
            if callee not in _EXP_CALLEES:
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                if _is_q_mod(arg):
                    findings.append(self.finding(
                        src.rel, arg.lineno,
                        f"exponent argument to {callee}() is reduced "
                        f"with full-width % q, destroying the small "
                        f"signed-exponent form",
                        hint="pass the small signed exponent through; "
                             "the exponentiator reduces internally"))
        return findings
