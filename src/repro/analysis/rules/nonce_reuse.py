"""nonce-reuse: every ``encrypt(nonce=...)`` must get a fresh nonce.

Reusing a commitment nonce across two FEBO encryptions (or an FEIP
nonce tuple across two columns) collapses the scheme to deterministic
ElGamal -- the IND-CPA suite demonstrates the break.  Safe shapes are
a direct producing call (``nonce=store.pop()``, ``nonce=make_*``), a
name assigned fresh before each use, or a pass-through parameter of an
encrypt wrapper.  Flagged shapes:

* a stored nonce (``nonce=self._nonce`` / ``nonce=cache[k]``),
* a name with no visible assignment in the function,
* an encrypt call inside a loop whose nonce name is only bound
  outside that loop (one nonce across all iterations),
* one assignment feeding several encrypt calls.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Rule, SourceFile, register

_HINT = "consume a fresh nonce per call (engine store pop or make_*)"


def _nonce_keyword(call: ast.Call):
    for kw in call.keywords:
        if kw.arg == "nonce":
            return kw.value
    return None


@register
class NonceReuseRule(Rule):
    id = "nonce-reuse"
    severity = "error"
    description = ("encrypt(nonce=...) arguments must be freshly "
                   "produced, never stored or reused")
    paths = ()  # every scanned file

    def check_file(self, src: SourceFile, project) -> list:
        findings = []
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(src, node))
        return findings

    def _check_function(self, src: SourceFile, fn) -> list:
        calls: list[tuple[ast.Call, ast.expr]] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                value = _nonce_keyword(node)
                if value is not None and not (
                        isinstance(value, ast.Constant)
                        and value.value is None):
                    calls.append((node, value))
        if not calls:
            return []

        params = {a.arg for a in fn.args.args + fn.args.kwonlyargs
                  + fn.args.posonlyargs}
        assigns = self._name_assignments(fn)
        findings = []
        uses_by_name: dict[str, list[ast.Call]] = {}
        for call, value in calls:
            if isinstance(value, ast.Call):
                continue  # produced in place: fresh by construction
            if isinstance(value, (ast.Attribute, ast.Subscript)):
                findings.append(self.finding(
                    src.rel, call.lineno,
                    "nonce comes from stored state "
                    f"({ast.unparse(value)}); stored nonces get reused",
                    hint=_HINT))
                continue
            if not isinstance(value, ast.Name):
                findings.append(self.finding(
                    src.rel, call.lineno,
                    f"nonce is a computed expression "
                    f"({ast.unparse(value)}); freshness is unverifiable",
                    hint=_HINT))
                continue
            name = value.id
            if name in params:
                continue  # wrapper pass-through: caller is checked instead
            sites = assigns.get(name, [])
            if not sites:
                findings.append(self.finding(
                    src.rel, call.lineno,
                    f"nonce name {name!r} has no visible assignment in "
                    f"{fn.name}()",
                    hint=_HINT))
                continue
            loop = self._enclosing_loop(src, call, fn)
            if loop is not None:
                in_loop = set(map(id, ast.walk(loop)))
                if not any(id(site) in in_loop for site in sites):
                    findings.append(self.finding(
                        src.rel, call.lineno,
                        f"nonce {name!r} is bound outside the loop; one "
                        f"nonce would encrypt every iteration",
                        hint=_HINT))
                    continue
            uses_by_name.setdefault(name, []).append(call)
        for name, uses in uses_by_name.items():
            if len(uses) > len(assigns.get(name, [])):
                for call in uses[len(assigns.get(name, [])):]:
                    findings.append(self.finding(
                        src.rel, call.lineno,
                        f"nonce {name!r} feeds {len(uses)} encrypt calls "
                        f"but has {len(assigns.get(name, []))} "
                        f"assignment(s)",
                        hint=_HINT))
        return findings

    @staticmethod
    def _name_assignments(fn) -> dict[str, list[ast.AST]]:
        out: dict[str, list[ast.AST]] = {}
        for node in ast.walk(fn):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign,
                                   ast.NamedExpr)):
                targets = [node.target]
            for target in targets:
                for el in ast.walk(target):
                    if isinstance(el, ast.Name):
                        out.setdefault(el.id, []).append(node)
        return out

    @staticmethod
    def _enclosing_loop(src: SourceFile, call: ast.Call, fn):
        """Nearest loop between ``call`` and its enclosing function."""
        for anc in src.ancestors(call):
            if anc is fn:
                return None
            if isinstance(anc, (ast.For, ast.AsyncFor, ast.While,
                                ast.comprehension, ast.ListComp,
                                ast.SetComp, ast.DictComp,
                                ast.GeneratorExp)):
                return anc
        return None
