"""protocol-complete: every message kind is wired end to end.

A message kind is only real when three files agree on it: a codec
registered in ``rpc/messages.py`` (the ``@_register`` decorator), a
service ``isinstance`` handler for its class (request kinds only --
responses and ``ack``/``error`` terminate at the client), and, for the
paper-protocol kinds declared in ``core/protocol.py``, a reference in
the entity-layer TrafficLog accounting.  PR 3 added the registry and
PR 8 the chunked-upload kinds; each grew a kind in one file and had to
remember the other two by hand.  This rule parses all of them and
cross-checks, so a future kind that forgets its handler or accounting
fails CI instead of silently dropping traffic.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Rule, attr_path, register

#: Kinds that legitimately have no service handler: the client consumes
#: them (responses) or they are terminal control frames.
_UNHANDLED_OK = {"ack", "error"}


def _kind_constants(src) -> dict[str, tuple[str, int]]:
    """Top-level ``KIND_X = "literal"`` assignments: name -> (value, line)."""
    out: dict[str, tuple[str, int]] = {}
    if src is None:
        return out
    for node in src.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id.startswith("KIND_") \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            out[node.targets[0].id] = (node.value.value, node.lineno)
    return out


@register
class ProtocolCompleteRule(Rule):
    id = "protocol-complete"
    severity = "error"
    description = ("every message kind has a codec, a service handler, "
                   "and TrafficLog accounting (cross-file check)")
    scope = "project"

    PROTOCOL_PATH = "src/repro/core/protocol.py"
    MESSAGES_PATH = "src/repro/rpc/messages.py"
    HANDLER_PATHS = ("src/repro/rpc/service.py",
                     "src/repro/rpc/authority_service.py",
                     "src/repro/rpc/training_service.py")
    ACCOUNTING_PATH = "src/repro/core/entities.py"

    def check_project(self, project) -> list:
        protocol_src = project.file(self.PROTOCOL_PATH)
        messages_src = project.file(self.MESSAGES_PATH)
        if protocol_src is None or messages_src is None:
            return []  # not this repo's layout (e.g. a fixture subset)
        findings = []

        protocol_kinds = _kind_constants(protocol_src)
        local_kinds = _kind_constants(messages_src)

        # codec registrations: kind value -> (class name, line)
        registered: dict[str, tuple[str, int]] = {}
        for node in messages_src.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for deco in node.decorator_list:
                if not (isinstance(deco, ast.Call)
                        and isinstance(deco.func, ast.Name)
                        and deco.func.id == "_register"):
                    continue
                for arg in deco.args:
                    value = self._kind_value(arg, protocol_kinds,
                                             local_kinds)
                    if value is None:
                        continue
                    if value in registered:
                        findings.append(self.finding(
                            self.MESSAGES_PATH, node.lineno,
                            f"kind {value!r} is registered by both "
                            f"{registered[value][0]} and {node.name}; "
                            f"the second silently wins",
                            hint="each kind gets exactly one codec"))
                    else:
                        registered[value] = (node.name, node.lineno)

        # 1. every paper-protocol kind has a codec
        for name, (value, line) in protocol_kinds.items():
            if value not in registered:
                findings.append(self.finding(
                    self.PROTOCOL_PATH, line,
                    f"protocol kind {name} ({value!r}) has no "
                    f"registered message codec",
                    hint="add an @_register class in rpc/messages.py"))

        # 2. every request kind's class appears in a dispatch isinstance
        handled = self._handled_classes(project)
        for value, (cls_name, line) in registered.items():
            if value.endswith("-response") or value in _UNHANDLED_OK:
                continue
            if cls_name not in handled:
                findings.append(self.finding(
                    self.MESSAGES_PATH, line,
                    f"request kind {value!r} ({cls_name}) is decoded "
                    f"by no service dispatch",
                    hint="add an isinstance branch in a _dispatch "
                         "method or list the kind in OBS_KINDS"))

        # 3. every paper-protocol kind appears in entity accounting
        accounted = self._accounting_refs(project)
        for name, (value, line) in protocol_kinds.items():
            if name not in accounted:
                findings.append(self.finding(
                    self.PROTOCOL_PATH, line,
                    f"protocol kind {name} is never referenced in "
                    f"{self.ACCOUNTING_PATH} TrafficLog accounting",
                    hint="record the kind where the entity sends or "
                         "receives it"))
        return findings

    @staticmethod
    def _kind_value(arg, protocol_kinds, local_kinds) -> str | None:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        path = attr_path(arg)
        if path is None:
            return None
        name = path.rsplit(".", 1)[-1]
        if path.startswith("protocol.") and name in protocol_kinds:
            return protocol_kinds[name][0]
        if name in local_kinds:
            return local_kinds[name][0]
        return None

    def _handled_classes(self, project) -> set[str]:
        handled: set[str] = set()
        for rel in self.HANDLER_PATHS:
            src = project.file(rel)
            if src is None:
                continue
            for fn in ast.walk(src.tree):
                if not isinstance(fn, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    continue
                if not fn.name.startswith(("_dispatch", "_handle")):
                    continue
                for node in ast.walk(fn):
                    if isinstance(node, ast.Call) \
                            and isinstance(node.func, ast.Name) \
                            and node.func.id == "isinstance" \
                            and len(node.args) == 2:
                        types = node.args[1]
                        elements = types.elts if isinstance(
                            types, ast.Tuple) else [types]
                        for el in elements:
                            if isinstance(el, ast.Name):
                                handled.add(el.id)
        return handled

    def _accounting_refs(self, project) -> set[str]:
        src = project.file(self.ACCOUNTING_PATH)
        refs: set[str] = set()
        if src is None:
            return refs
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Attribute) \
                    and node.attr.startswith("KIND_"):
                refs.add(node.attr)
            elif isinstance(node, ast.Name) \
                    and node.id.startswith("KIND_"):
                refs.add(node.id)
        return refs
