"""determinism: resume-critical modules draw no entropy or wall clock.

PR 4's guarantee is byte-exact resume: a run killed at any checkpoint
and resumed must produce bit-identical weights.  That only holds if the
fit loop, checkpoint codec and optimizer stepping never consult
``time.time()``, ``datetime.now()``, the ``random`` module, an
*unseeded* ``default_rng()``, ``os.urandom``/``secrets``/``uuid4`` --
any of those and the resumed trajectory diverges from the original.
Seeded ``default_rng(seed)`` is fine: the seed travels through the
checkpoint.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Rule, SourceFile, call_path, register

_BANNED_EXACT = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "time.ctime": "wall-clock time",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "time/host-derived id",
    "uuid.uuid4": "OS entropy",
}


@register
class DeterminismRule(Rule):
    id = "determinism"
    severity = "error"
    description = ("no wall-clock/entropy (time.time, datetime.now, "
                   "random.*, unseeded default_rng) in resume-critical "
                   "modules")
    paths = ("src/repro/core/cryptonn.py",
             "src/repro/core/checkpoint.py",
             "src/repro/nn/optimizers.py")

    def check_file(self, src: SourceFile, project) -> list:
        findings = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            path = call_path(node)
            if path is None:
                continue
            reason = self._banned(path, node)
            if reason:
                findings.append(self.finding(
                    src.rel, node.lineno,
                    f"{path}() draws {reason} in a resume-critical "
                    f"module; byte-exact resume (PR 4) breaks",
                    hint="accept the value (rng, timestamp) from the "
                         "caller so it is part of checkpointed state"))
        return findings

    @staticmethod
    def _banned(path: str, node: ast.Call) -> str | None:
        if path in _BANNED_EXACT:
            return _BANNED_EXACT[path]
        last = path.rsplit(".", 1)[-1]
        if last in ("now", "utcnow", "today") and (
                "datetime" in path or path.startswith("date.")):
            return "wall-clock time"
        if path == "random" or path.startswith("random."):
            return "shared-PRNG entropy"
        if path.startswith("secrets."):
            return "OS entropy"
        if path in ("np.random.default_rng", "numpy.random.default_rng"):
            if not node.args and not node.keywords:
                return "an unseeded (OS-entropy) generator"
            return None
        if path.startswith(("np.random.", "numpy.random.")):
            return "NumPy global-PRNG entropy"
        return None
