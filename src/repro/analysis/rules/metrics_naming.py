"""metrics-naming: every metric follows the ROADMAP naming scheme.

The observability layer's contract (PR 7): every exported series is
``repro_<area>_<what>``, lowercase with underscores, counters end in
``_total``, gauges and histograms do not, and labeled histograms use
the Prometheus form ``repro_phase_seconds{phase="..."}``.  Dashboards
and the scrape tests key on these names, so a misnamed metric is a
silent observability hole.  This rule checks every ``repro_*`` string
literal in ``src/repro`` against the charset, and enforces the
counter/gauge suffix contract at ``registry.counter/gauge/histogram``
call sites (f-strings are checked by their literal prefix).
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import Rule, attr_path, register

_NAME_RE = re.compile(r"^repro_[a-z0-9_]+(\{[^{}]*\}?)?$")
_METHODS = {"counter", "gauge", "histogram"}


def _literal_name(arg) -> tuple[str, bool] | None:
    """(name, is_complete) for a str constant or f-string prefix."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, True
    if isinstance(arg, ast.JoinedStr) and arg.values:
        first = arg.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value, False
        return "", False
    return None


@register
class MetricsNamingRule(Rule):
    id = "metrics-naming"
    severity = "error"
    description = ("metric names match repro_[a-z0-9_]+; counters end "
                   "_total, gauges/histograms do not")
    scope = "project"

    def check_project(self, project) -> list:
        findings = []
        for src in project.files():
            if not src.rel.startswith("src/repro/"):
                continue
            if src.rel.startswith("src/repro/analysis/"):
                continue  # the analyzer's own prose mentions repro_*
            checked_nodes: set[int] = set()
            for node in ast.walk(src.tree):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _METHODS \
                        and node.args:
                    recv = attr_path(node.func.value) or ""
                    if "registry" not in recv.lower():
                        continue
                    findings.extend(self._check_registration(
                        src, node, checked_nodes))
            # any other repro_* literal (collector dict keys etc.)
            for node in ast.walk(src.tree):
                if isinstance(node, ast.Constant) \
                        and isinstance(node.value, str) \
                        and node.value.startswith("repro_") \
                        and id(node) not in checked_nodes:
                    if not _NAME_RE.match(node.value):
                        findings.append(self.finding(
                            src.rel, node.lineno,
                            f"metric name {node.value!r} violates the "
                            f"repro_[a-z0-9_]+ scheme",
                            hint="lowercase, underscores, repro_ "
                                 "prefix (ROADMAP naming table)"))
        return findings

    def _check_registration(self, src, node: ast.Call,
                            checked_nodes: set[int]) -> list:
        method = node.func.attr
        parsed = _literal_name(node.args[0])
        if parsed is None:
            return []
        name, complete = parsed
        # mark the literal as handled so the generic pass skips it
        arg = node.args[0]
        if isinstance(arg, ast.Constant):
            checked_nodes.add(id(arg))
        elif isinstance(arg, ast.JoinedStr) and arg.values:
            checked_nodes.add(id(arg.values[0]))
        if not name.startswith("repro_"):
            return [self.finding(
                src.rel, node.lineno,
                f"{method}() metric {name!r} lacks the repro_ prefix",
                hint="repro_<area>_<what> per the ROADMAP scheme")]
        base = name.split("{", 1)[0]
        if complete and not _NAME_RE.match(name):
            return [self.finding(
                src.rel, node.lineno,
                f"{method}() metric {name!r} violates the "
                f"repro_[a-z0-9_]+ scheme",
                hint="lowercase, underscores, repro_ prefix")]
        if method == "counter" and complete \
                and not base.endswith("_total"):
            return [self.finding(
                src.rel, node.lineno,
                f"counter {name!r} must end in _total",
                hint="counters carry the _total suffix so the "
                     "snapshot routes them to the counters section")]
        if method in ("gauge", "histogram") and base.endswith("_total"):
            return [self.finding(
                src.rel, node.lineno,
                f"{method} {name!r} must not end in _total "
                f"(that suffix marks counters)",
                hint="drop the _total suffix for non-counters")]
        return []
