"""crypto-random: no ``random``-module entropy in crypto-adjacent code.

Key material, nonces and group elements in ``fe/``, ``mathutils/`` and
``rpc/`` must come from ``secrets`` or an OS-seeded generator.  The
stdlib ``random`` module-level functions share one Mersenne Twister --
predictable and cross-thread-shared -- and a *literal*-seeded
``random.Random(42)`` or ``default_rng(42)`` in these directories is a
fixed, public entropy stream.  An argument-seeded generator is allowed
(the seed is the caller's responsibility) and so are ``random.Random()``
/ ``random.SystemRandom()``.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Rule, SourceFile, call_path, register

_ALLOWED_CLASSES = {"Random", "SystemRandom"}


@register
class CryptoRandomRule(Rule):
    id = "crypto-random"
    severity = "error"
    description = ("no global/literal-seeded random module use in "
                   "fe/, mathutils/, rpc/")
    paths = ("src/repro/fe/", "src/repro/mathutils/", "src/repro/rpc/")

    def check_file(self, src: SourceFile, project) -> list:
        findings = []
        # names pulled in with `from random import x`
        from_random: set[str] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    from_random.add(alias.asname or alias.name)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            path = call_path(node)
            if path is None:
                continue
            if path.startswith("random."):
                attr = path.split(".", 1)[1]
                if attr in _ALLOWED_CLASSES:
                    findings.extend(self._check_seed(src, node, path))
                else:
                    findings.append(self.finding(
                        src.rel, node.lineno,
                        f"{path}() uses the shared module-level PRNG",
                        hint="use secrets or a random.Random instance "
                             "owned by the caller"))
            elif path in ("np.random.default_rng",
                          "numpy.random.default_rng"):
                findings.extend(self._check_seed(src, node, path))
            elif path.startswith(("np.random.", "numpy.random.")):
                findings.append(self.finding(
                    src.rel, node.lineno,
                    f"{path}() uses NumPy's global PRNG",
                    hint="construct a Generator via default_rng and "
                         "pass it down"))
            elif isinstance(node.func, ast.Name) \
                    and node.func.id in from_random \
                    and node.func.id not in _ALLOWED_CLASSES:
                findings.append(self.finding(
                    src.rel, node.lineno,
                    f"{node.func.id}() imported from random uses the "
                    f"shared module-level PRNG",
                    hint="use secrets or a caller-owned generator"))
        return findings

    def _check_seed(self, src: SourceFile, node: ast.Call,
                    path: str) -> list:
        # OS-seeded (no args / None) and argument-seeded are fine;
        # a literal seed is a fixed public entropy stream.
        seeds = list(node.args) + [kw.value for kw in node.keywords]
        for seed in seeds:
            if isinstance(seed, ast.Constant) and seed.value is not None:
                return [self.finding(
                    src.rel, node.lineno,
                    f"{path}({seed.value!r}) is seeded with a literal "
                    f"constant in crypto-adjacent code",
                    hint="let the OS seed it (no argument) or accept "
                         "the seed from the caller")]
        return []
