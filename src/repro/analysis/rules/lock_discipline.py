"""lock-discipline: shared attributes are written under the lock, always.

PR 7 fixed three consistent-snapshot races of the same shape: a class
owns a ``threading.Lock``/``RLock`` and guards *most* writes to an
attribute with it, but one code path writes the same attribute bare.
Readers holding the lock then see torn state.  This rule flags, per
class that owns a lock:

* any attribute path written both inside and outside a ``with
  self.<lock>:`` block (``__init__`` writes are exempt -- construction
  happens-before sharing);
* plus, module-scope: a ``GLOBAL_*`` singleton of a lock-less class
  whose methods mutate ``self`` -- shared process-wide with no lock to
  take (the ``GLOBAL_SOLVER_CACHE`` shape).
"""

from __future__ import annotations

import ast

from repro.analysis.core import Rule, SourceFile, attr_path, register

_LOCK_FACTORIES = {"threading.Lock", "threading.RLock",
                   "Lock", "RLock"}


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Names of ``self.<x> = threading.Lock()``-style attributes."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        callee = attr_path(node.value.func)
        if callee not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            path = attr_path(target)
            if path is not None and path.startswith("self."):
                locks.add(path.split(".", 1)[1])
    return locks


def _self_writes(node: ast.AST):
    """Yield (dotted path after self, assignment node) for self writes."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    for target in targets:
        elements = target.elts if isinstance(
            target, (ast.Tuple, ast.List)) else [target]
        for el in elements:
            path = attr_path(el)
            if path is not None and path.startswith("self."):
                yield path.split(".", 1)[1], node


def _mutates_self(cls: ast.ClassDef) -> bool:
    for item in cls.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name == "__init__":
            continue
        for node in ast.walk(item):
            for _path, _n in _self_writes(node):
                return True
    return False


@register
class LockDisciplineRule(Rule):
    id = "lock-discipline"
    severity = "error"
    description = ("attributes written both inside and outside "
                   "`with self._lock:` in lock-owning classes; "
                   "GLOBAL_* singletons of lock-less mutable classes")
    paths = ()  # every scanned file

    def check_file(self, src: SourceFile, project) -> list:
        findings = []
        lockless_mutable: set[str] = set()
        for node in src.tree.body:
            if isinstance(node, ast.ClassDef):
                locks = _lock_attrs(node)
                if locks:
                    findings.extend(self._check_class(src, node, locks))
                elif _mutates_self(node):
                    lockless_mutable.add(node.name)
        findings.extend(
            self._check_singletons(src, lockless_mutable))
        return findings

    def _check_class(self, src: SourceFile, cls: ast.ClassDef,
                     locks: set[str]) -> list:
        # (path -> [(locked?, node)]) over every method except __init__
        writes: dict[str, list[tuple[bool, ast.AST]]] = {}
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":
                continue
            for node in ast.walk(item):
                for path, assign in _self_writes(node):
                    locked = self._under_lock(src, assign, locks)
                    writes.setdefault(path, []).append((locked, assign))
        findings = []
        for path, sites in writes.items():
            if any(locked for locked, _ in sites) \
                    and any(not locked for locked, _ in sites):
                for locked, node in sites:
                    if not locked:
                        findings.append(self.finding(
                            src.rel, node.lineno,
                            f"{cls.name}.{path} is written here without "
                            f"the lock but under it elsewhere",
                            hint="move the write inside `with "
                                 "self._lock:` (the PR 7 "
                                 "consistent-snapshot treatment)"))
        return findings

    @staticmethod
    def _under_lock(src: SourceFile, node: ast.AST,
                    locks: set[str]) -> bool:
        for anc in src.ancestors(node):
            if isinstance(anc, (ast.With, ast.AsyncWith)):
                for item in anc.items:
                    path = attr_path(item.context_expr)
                    if path is not None and path.startswith("self.") \
                            and path.split(".", 1)[1] in locks:
                        return True
        return False

    def _check_singletons(self, src: SourceFile,
                          lockless_mutable: set[str]) -> list:
        findings = []
        for node in src.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            callee = node.value.func
            if not (isinstance(callee, ast.Name)
                    and callee.id in lockless_mutable):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) \
                        and target.id.startswith("GLOBAL_"):
                    findings.append(self.finding(
                        src.rel, node.lineno,
                        f"{target.id} shares a {callee.id} instance "
                        f"process-wide, but {callee.id} owns no lock "
                        f"and its methods mutate self",
                        hint="give the class a threading.Lock and "
                             "guard its mutations"))
        return findings
