"""key-serialization: master-key material must not reach serializers.

The paper's architecture keeps master secret keys (``msk``) inside the
authority; anything a serializer touches can end up in a file or on the
wire.  This rule walks every serialization-shaped function (``save_*``,
``pack_*``, ``to_*``, ``dump*``, ``serialize*``, wire ``body``/
``header`` methods) in the serialization, checkpoint and message
modules and flags reads of key-material names -- attribute accesses or
dict/subscript string keys matching ``msk``/``sk``/``master_*``.

The two legitimate carriers are suppression-documented at their sites:
the authority key file (it *is* the master-key artifact) and derived
function keys (``FeipFunctionKey.sk`` is the protocol payload, not a
master secret).
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import Rule, SourceFile, register

_SERIALIZER_NAME = re.compile(
    r"^(save_|pack_|dump|write_|serialize)|(^|_)to_")
_WIRE_METHODS = {"body", "header"}
_KEY_STRING = re.compile(r"(^|_)msks?($|_)|^master_|^sk$")


def _is_key_attr(name: str) -> bool:
    return (name in ("msk", "sk") or name.startswith("master_")
            or bool(re.search(r"(^|_)msks?$", name)))


@register
class KeySerializationRule(Rule):
    id = "key-serialization"
    severity = "error"
    description = ("key-material names (msk/sk/master_*) must not be "
                   "read inside serialization/checkpoint code")
    paths = ("src/repro/core/serialization.py",
             "src/repro/core/checkpoint.py",
             "src/repro/rpc/messages.py")

    def check_file(self, src: SourceFile, project) -> list:
        findings = []
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if not (_SERIALIZER_NAME.search(node.name)
                    or node.name in _WIRE_METHODS):
                continue
            findings.extend(self._check_function(src, node))
        return findings

    def _check_function(self, src: SourceFile, fn) -> list:
        findings = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute) and _is_key_attr(node.attr):
                findings.append(self.finding(
                    src.rel, node.lineno,
                    f"serializer {fn.name}() reads key-material "
                    f"attribute .{node.attr}",
                    hint="keep master material out of serialized "
                         "artifacts, or suppress with a justification "
                         "if this payload is the documented exception"))
            elif isinstance(node, ast.Constant) \
                    and isinstance(node.value, str) \
                    and _KEY_STRING.search(node.value):
                findings.append(self.finding(
                    src.rel, node.lineno,
                    f"serializer {fn.name}() emits key-material field "
                    f"{node.value!r}",
                    hint="keep master material out of serialized "
                         "artifacts, or suppress with a justification "
                         "if this payload is the documented exception"))
        return findings
