"""Rule suite: importing this package populates ``RULE_REGISTRY``.

To add a rule, drop a module here with a ``@register``-decorated
:class:`repro.analysis.core.Rule` subclass and import it below.
"""

from repro.analysis.rules import (  # noqa: F401
    crypto_random,
    determinism,
    hotpath,
    key_serialization,
    lock_discipline,
    metrics_naming,
    nonce_reuse,
    protocol_complete,
)
