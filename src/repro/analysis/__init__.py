"""AST-based invariant analyzer for the repro codebase.

Machine-checks the rules the repo's correctness rests on -- nonce
single-use, lock discipline, resume determinism, hot-path arithmetic,
protocol completeness and metric naming -- as ``repro lint`` and a CI
gate.  See :mod:`repro.analysis.core` for the framework and
:mod:`repro.analysis.rules` for the rule suite.
"""

from repro.analysis.core import (
    RULE_REGISTRY,
    Finding,
    Rule,
    SourceFile,
    register,
)
from repro.analysis.project import (
    LintReport,
    Project,
    run_lint,
    select_rules,
)
from repro.analysis.report import render_json, render_rule_list, render_text

__all__ = [
    "RULE_REGISTRY",
    "Finding",
    "Rule",
    "SourceFile",
    "register",
    "LintReport",
    "Project",
    "run_lint",
    "select_rules",
    "render_json",
    "render_rule_list",
    "render_text",
]
