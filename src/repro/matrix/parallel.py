"""Process-parallel secure computation.

The paper reports (Figures 3d, 4d, 5d) that parallelizing the decryption
loop turns secure dot-products from ~90 minutes into ~8 seconds.  The
expensive part -- modular exponentiation plus the discrete log -- is pure
CPU work on Python ints, so we parallelize across *processes* (threads
would serialize on the GIL).

Worker processes are initialized once with the group parameters, public
key, function keys and dlog bound; tasks then only ship ciphertexts and
indices.  All key/ciphertext containers are frozen dataclasses of ints,
so pickling is cheap.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Sequence

import numpy as np

from repro.fe.febo import Febo
from repro.fe.feip import Feip
from repro.fe.keys import (
    FeboCiphertext,
    FeboFunctionKey,
    FeboPublicKey,
    FeipCiphertext,
    FeipFunctionKey,
    FeipPublicKey,
)
from repro.matrix.secure_matrix import EncryptedMatrix
from repro.mathutils.dlog import DlogSolver
from repro.mathutils.group import GroupParams

# Per-process state installed by the pool initializer.  A module-level dict
# is the standard idiom: it exists independently in every worker process.
_WORKER_STATE: dict = {}


def default_workers() -> int:
    """Number of worker processes used when the caller does not choose."""
    return max(1, (os.cpu_count() or 2) - 1)


# -- dot-product ------------------------------------------------------------

def _init_dot_worker(params: GroupParams, mpk: FeipPublicKey,
                     keys: list[FeipFunctionKey], bound: int) -> None:
    feip = Feip(params)
    _WORKER_STATE["feip"] = feip
    _WORKER_STATE["mpk"] = mpk
    _WORKER_STATE["keys"] = keys
    _WORKER_STATE["solver"] = DlogSolver(feip.group, bound)


def _dot_column(task: tuple[int, FeipCiphertext]) -> tuple[int, list[int]]:
    j, column_ct = task
    feip: Feip = _WORKER_STATE["feip"]
    solver: DlogSolver = _WORKER_STATE["solver"]
    mpk = _WORKER_STATE["mpk"]
    values = [
        solver.solve(feip.decrypt_raw(mpk, column_ct, key))
        for key in _WORKER_STATE["keys"]
    ]
    return j, values


def secure_dot_parallel(params: GroupParams, mpk: FeipPublicKey,
                        encrypted: EncryptedMatrix,
                        keys: Sequence[FeipFunctionKey], bound: int,
                        workers: int | None = None) -> np.ndarray:
    """Parallel version of :meth:`SecureMatrixScheme.secure_dot`.

    Columns of the encrypted matrix are distributed over worker
    processes; each worker decrypts the column against every row key.
    """
    columns = encrypted.require_feip()
    keys = list(keys)
    workers = workers or default_workers()
    z = np.empty((len(keys), len(columns)), dtype=object)
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_dot_worker,
        initargs=(params, mpk, keys, bound),
    ) as pool:
        for j, values in pool.map(_dot_column, enumerate(columns),
                                  chunksize=max(1, len(columns) // (workers * 4) or 1)):
            for i, value in enumerate(values):
                z[i, j] = value
    return z


# -- element-wise ------------------------------------------------------------

def _init_elementwise_worker(params: GroupParams, mpk: FeboPublicKey,
                             bound: int) -> None:
    febo = Febo(params)
    _WORKER_STATE["febo"] = febo
    _WORKER_STATE["febo_mpk"] = mpk
    _WORKER_STATE["solver"] = DlogSolver(febo.group, bound)


def _elementwise_cell(
    task: tuple[int, int, FeboCiphertext, FeboFunctionKey],
) -> tuple[int, int, int]:
    i, j, ciphertext, key = task
    febo: Febo = _WORKER_STATE["febo"]
    solver: DlogSolver = _WORKER_STATE["solver"]
    element = febo.decrypt_raw(_WORKER_STATE["febo_mpk"], key, ciphertext)
    return i, j, solver.solve(element)


def secure_elementwise_parallel(params: GroupParams, mpk: FeboPublicKey,
                                encrypted: EncryptedMatrix,
                                keys: list[list[FeboFunctionKey]], bound: int,
                                workers: int | None = None) -> np.ndarray:
    """Parallel version of :meth:`SecureMatrixScheme.secure_elementwise`."""
    elements = encrypted.require_febo()
    rows, cols = encrypted.shape
    workers = workers or default_workers()
    tasks = [
        (i, j, elements[i][j], keys[i][j])
        for i in range(rows)
        for j in range(cols)
    ]
    z = np.empty((rows, cols), dtype=object)
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_elementwise_worker,
        initargs=(params, mpk, bound),
    ) as pool:
        chunk = max(1, len(tasks) // (workers * 8) or 1)
        for i, j, value in pool.map(_elementwise_cell, tasks, chunksize=chunk):
            z[i, j] = value
    return z


# -- convolution ------------------------------------------------------------

def _conv_window(task: tuple[int, FeipCiphertext]) -> tuple[int, list[int]]:
    pos, window_ct = task
    feip: Feip = _WORKER_STATE["feip"]
    solver: DlogSolver = _WORKER_STATE["solver"]
    mpk = _WORKER_STATE["mpk"]
    values = [
        solver.solve(feip.decrypt_raw(mpk, window_ct, key))
        for key in _WORKER_STATE["keys"]
    ]
    return pos, values


def secure_convolve_parallel(params: GroupParams, mpk: FeipPublicKey,
                             windows: Sequence[FeipCiphertext],
                             out_shape: tuple[int, int],
                             keys: Sequence[FeipFunctionKey], bound: int,
                             workers: int | None = None) -> np.ndarray:
    """Parallel secure convolution over a filter bank.

    Returns shape ``(len(keys), out_h, out_w)``.
    """
    out_h, out_w = out_shape
    keys = list(keys)
    workers = workers or default_workers()
    z = np.empty((len(keys), out_h, out_w), dtype=object)
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_dot_worker,
        initargs=(params, mpk, keys, bound),
    ) as pool:
        chunk = max(1, len(windows) // (workers * 4) or 1)
        for pos, values in pool.map(_conv_window, enumerate(windows),
                                    chunksize=chunk):
            for f, value in enumerate(values):
                z[f, pos // out_w, pos % out_w] = value
    return z
