"""Process-parallel secure computation.

The paper reports (Figures 3d, 4d, 5d) that parallelizing the decryption
loop turns secure dot-products from ~90 minutes into ~8 seconds.  The
expensive part -- modular exponentiation plus the discrete log -- is pure
CPU work on Python ints, so we parallelize across *processes* (threads
would serialize on the GIL).

The same pool also serves the *client* side: the ``encrypt``
configuration kind lets idle workers produce offline encryption
material in bulk (:meth:`SecureComputePool.precompute_encryption`) or
run whole encryptions (:meth:`SecureComputePool.secure_encrypt_columns`
/ :meth:`SecureComputePool.secure_encrypt_values`).  Workers draw
nonces from their own OS-seeded RNGs -- each worker process constructs
a fresh ``Feip``/``Febo`` on config install, so nonce streams are
independent across workers and dispatches.

Worker processes live in a persistent :class:`SecureComputePool`: they
are forked once and reused across every ``secure_dot`` /
``secure_elementwise`` / ``secure_convolve`` call for the lifetime of a
training run, instead of paying executor startup plus key pickling on
every call (every layer of every training step).  :meth:`configure`
broadcasts the group parameters, public key, function keys and dlog
bound; workers memoize the installed state by a sequence number, and
each worker's dlog-solver cache survives reconfiguration, so iterating
with fresh keys but a stable bound never rebuilds baby-step tables.

All key/ciphertext containers are frozen dataclasses of ints, so the
per-configuration pickling is cheap.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from collections.abc import Sequence
from functools import partial

import numpy as np

from repro.fe.engine import make_febo_nonce, make_feip_nonce
from repro.fe.febo import Febo
from repro.fe.feip import Feip
from repro.fe.keys import (
    FeboCiphertext,
    FeboFunctionKey,
    FeboNonce,
    FeboPublicKey,
    FeipCiphertext,
    FeipFunctionKey,
    FeipNonce,
    FeipPublicKey,
)
from repro.matrix.secure_matrix import EncryptedMatrix
from repro.mathutils.dlog import GLOBAL_SOLVER_CACHE
from repro.mathutils.group import GroupParams
from repro.obs.metrics import GLOBAL_REGISTRY

# Per-process state installed by the configuration broadcast, keyed by
# config sequence number.  A module-level dict is the standard idiom: it
# exists independently in every worker process and persists for the
# worker's lifetime.  Several configs stay warm at once because training
# steps alternate between dot and elementwise dispatches.
_WORKER_CONFIGS: dict[int, dict] = {}
_WORKER_CONFIGS_MAX = 8


def default_workers() -> int:
    """Number of worker processes used when the caller does not choose."""
    return max(1, (os.cpu_count() or 2) - 1)


#: Column chunks produced per worker by a ``secure_dot`` dispatch: enough
#: slack for load balancing across uneven columns, few enough that the
#: per-chunk state shipment (config blob + chunk pickle) stays marginal.
DOT_CHUNKS_PER_WORKER = 2


def chunk_tasks(tasks: Sequence, n_chunks: int) -> list[tuple]:
    """Split ``tasks`` into at most ``n_chunks`` contiguous chunks.

    Every task appears in exactly one chunk and no chunk is empty, for
    any ``n_tasks``/``n_chunks`` combination (the regression tests sweep
    the awkward ones).
    """
    tasks = list(tasks)
    if not tasks:
        return []
    n_chunks = max(1, min(int(n_chunks), len(tasks)))
    per_chunk = -(-len(tasks) // n_chunks)
    return [tuple(tasks[i:i + per_chunk])
            for i in range(0, len(tasks), per_chunk)]


# -- worker side -------------------------------------------------------------

def _install_config(config: tuple) -> dict:
    """(Re)build per-process crypto state for a configuration broadcast.

    ``config`` is ``(seq, kind, blob)`` with the payload pre-pickled on
    the parent side, so shipping it with every task chunk costs one
    bytes copy, not one traversal of the key material; a worker that
    already holds ``seq`` skips the unpickling and rebuild entirely.
    The dlog solver comes from the worker's process-wide cache, so it
    outlives reconfigurations that keep the same (group, bound) -- the
    per-iteration case in training.
    """
    if os.environ.get("REPRO_CHAOS_WORKER_KILL") \
            and multiprocessing.parent_process() is not None:
        # chaos hook for the degradation tests: every *forked worker*
        # dies on first use (deterministically -- no racing kill
        # thread), while the parent-process fallback path, which also
        # runs this function, computes normally
        os._exit(3)
    seq, kind, blob = config
    state = _WORKER_CONFIGS.get(seq)
    if state is not None:
        return state
    payload = pickle.loads(blob)
    if kind == "dot":
        params, mpk, keys, bound = payload
        feip = Feip(params)
        state = dict(feip=feip, mpk=mpk, keys=keys,
                     solver=GLOBAL_SOLVER_CACHE.get(feip.group, bound))
    elif kind == "elementwise":
        params, mpk, bound = payload
        febo = Febo(params)
        state = dict(febo=febo, febo_mpk=mpk,
                     solver=GLOBAL_SOLVER_CACHE.get(febo.group, bound))
    elif kind == "encrypt":
        params, feip_mpk, febo_mpk = payload
        # fresh Feip/Febo per worker => fresh OS-seeded RNG per worker,
        # so nonce streams never collide across the pool
        state = dict(feip=Feip(params), febo=Febo(params),
                     feip_mpk=feip_mpk, febo_mpk=febo_mpk)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown pool configuration kind {kind!r}")
    while len(_WORKER_CONFIGS) >= _WORKER_CONFIGS_MAX:
        _WORKER_CONFIGS.pop(next(iter(_WORKER_CONFIGS)))
    _WORKER_CONFIGS[seq] = state
    return state


def _dot_column(config: tuple, task: tuple[int, FeipCiphertext]
                ) -> tuple[int, list[int]]:
    state = _install_config(config)
    j, column_ct = task
    feip: Feip = state["feip"]
    solver = state["solver"]
    values = feip.decrypt_rows(state["mpk"], column_ct, state["keys"],
                               solver.bound, solver=solver)
    return j, values


def _dot_columns(config: tuple,
                 chunk: tuple[tuple[int, FeipCiphertext], ...]
                 ) -> list[tuple[int, list[int]]]:
    """Decrypt a whole chunk of columns against every row key.

    One task per chunk means the config blob and the bound function
    cross the process boundary once per chunk, and each column
    ciphertext crosses exactly once; inside, ``decrypt_rows`` shares
    the per-column window tables across all rows.
    """
    return [_dot_column(config, task) for task in chunk]


def _elementwise_cell(
    config: tuple,
    task: tuple[int, int, FeboCiphertext, FeboFunctionKey],
) -> tuple[int, int, int]:
    state = _install_config(config)
    i, j, ciphertext, key = task
    febo: Febo = state["febo"]
    solver = state["solver"]
    element = febo.decrypt_raw(state["febo_mpk"], key, ciphertext)
    return i, j, solver.solve(element)


def _feip_nonce_chunk(config: tuple, count: int) -> list[FeipNonce]:
    state = _install_config(config)
    feip: Feip = state["feip"]
    mpk = state["feip_mpk"]
    return [make_feip_nonce(feip.group, mpk) for _ in range(count)]


def _febo_nonce_chunk(config: tuple, count: int) -> list[FeboNonce]:
    state = _install_config(config)
    febo: Febo = state["febo"]
    mpk = state["febo_mpk"]
    return [make_febo_nonce(febo.group, mpk) for _ in range(count)]


def _encrypt_column(config: tuple, task: tuple[int, list[int]]
                    ) -> tuple[int, FeipCiphertext]:
    state = _install_config(config)
    j, values = task
    return j, state["feip"].encrypt(state["feip_mpk"], values)


def _encrypt_value(config: tuple, task: tuple[int, int]
                   ) -> tuple[int, FeboCiphertext]:
    state = _install_config(config)
    j, value = task
    return j, state["febo"].encrypt(state["febo_mpk"], value)


# -- the persistent pool ------------------------------------------------------

class SecureComputePool:
    """Persistent worker pool for secure matrix computation.

    One :class:`~concurrent.futures.ProcessPoolExecutor` is created on
    first use and reused by every subsequent call; :meth:`close` (or
    interpreter exit) tears it down.  State reaches the workers through
    :meth:`configure`: the pool stamps the payload with a fresh sequence
    number and ships it alongside the next dispatch (once per task
    chunk); each worker installs it at most once per sequence number.
    """

    _seq = itertools.count(1)

    def __init__(self, workers: int | None = None, *,
                 crash_retries: int = 2, allow_degraded: bool = True):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if crash_retries < 0:
            raise ValueError("crash_retries must be >= 0")
        self.workers = workers or default_workers()
        #: per-dispatch budget of executor rebuilds after worker crashes
        #: before the dispatch falls back (or raises)
        self.crash_retries = crash_retries
        #: when True, a dispatch that exhausts its crash budget runs
        #: sequentially in-process instead of raising -- training slows
        #: down but completes (graceful degradation)
        self.allow_degraded = allow_degraded
        self._executor: ProcessPoolExecutor | None = None
        # (kind, payload) -> stamped config -- training alternates dot,
        # elementwise and encrypt dispatches (and a client may juggle
        # several public keys), so a handful of configs stay warm;
        # mirrors the worker-side _WORKER_CONFIGS_MAX cap
        self._configs: dict[tuple, tuple] = {}
        self._lock = threading.RLock()
        #: executors constructed over the pool's lifetime -- stays at 1
        #: however many secure_* calls run (asserted by the perf smoke
        #: test and the ablation bench).
        self.executors_created = 0
        self.dispatches = 0
        #: executor rebuilds forced by worker crashes (BrokenProcessPool)
        self.worker_restarts = 0
        #: dispatches that completed on the sequential in-process fallback
        self.degraded_dispatches = 0
        #: latched True by the first degraded dispatch
        self.degraded = False
        GLOBAL_REGISTRY.register_collector(
            f"pool.{id(self)}", self._obs_collect)

    @property
    def stats(self) -> dict[str, int | bool]:
        """Fault counters for the ops surface (train-status, reports).

        Copied under the pool lock so a scrape concurrent with a
        dispatch sees one consistent view (e.g. never a degraded
        dispatch without the ``degraded`` latch).
        """
        with self._lock:
            return {
                "dispatches": self.dispatches,
                "executors_created": self.executors_created,
                "worker_restarts": self.worker_restarts,
                "degraded_dispatches": self.degraded_dispatches,
                "degraded": self.degraded,
            }

    def _obs_collect(self) -> dict[str, int]:
        """Registry collector; multiple pools sum into one family."""
        stats = self.stats
        return {
            "repro_pool_dispatches_total": stats["dispatches"],
            "repro_pool_executors_created_total":
                stats["executors_created"],
            "repro_pool_worker_restarts_total": stats["worker_restarts"],
            "repro_pool_degraded_dispatches_total":
                stats["degraded_dispatches"],
            "repro_pool_degraded": int(stats["degraded"]),
            "repro_pool_workers": self.workers,
        }

    # -- lifecycle -----------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._executor is not None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
                self.executors_created += 1
            return self._executor

    def close(self) -> None:
        """Shut the workers down; the next call transparently restarts."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            self._configs.clear()

    def __enter__(self) -> "SecureComputePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- configuration broadcast ----------------------------------------------
    def configure(self, kind: str, payload: tuple) -> tuple:
        """Install ``payload`` as the workers' computation state.

        Returns the stamped config (pass it to the dispatch that uses
        it, so concurrent callers on a shared pool cannot clobber each
        other).  Re-configuring with an identical (kind, payload) reuses
        the previous stamp, so repeated calls against stable keys/bounds
        skip both the pickling and the worker-side rebuild -- also when
        dot, elementwise and encrypt dispatches alternate, as every
        training step (and a multi-key client) does.
        """
        with self._lock:
            key = (kind, payload)
            cached = self._configs.get(key)
            if cached is not None:
                return cached
            config = (next(self._seq), kind,
                      pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
            while len(self._configs) >= _WORKER_CONFIGS_MAX:
                self._configs.pop(next(iter(self._configs)))
            self._configs[key] = config
            return config

    def configure_dot(self, params: GroupParams, mpk: FeipPublicKey,
                      keys: Sequence[FeipFunctionKey], bound: int) -> tuple:
        return self.configure("dot", (params, mpk, tuple(keys), bound))

    def configure_elementwise(self, params: GroupParams, mpk: FeboPublicKey,
                              bound: int) -> tuple:
        return self.configure("elementwise", (params, mpk, bound))

    def configure_encrypt(self, params: GroupParams,
                          feip_mpk: FeipPublicKey | None = None,
                          febo_mpk: FeboPublicKey | None = None) -> tuple:
        return self.configure("encrypt", (params, feip_mpk, febo_mpk))

    def _map(self, fn, config: tuple, tasks, parallelism_hint: int,
             n_tasks: int | None = None, chunksize: int | None = None) -> list:
        """Dispatch ``tasks`` under ``config``, surviving worker crashes.

        ``tasks`` is either a sequence or a zero-argument callable
        returning a fresh iterable.  The callable form *streams*:
        ``executor.map`` pulls and pickles tasks chunk by chunk as
        workers free up instead of the caller materializing the full
        task list first (``n_tasks`` then sizes the chunks), and the
        crash retry simply re-invokes the factory.

        A crashed worker breaks the whole executor; unlike the old
        executor-per-call code that recovered for free, a persistent
        pool must rebuild explicitly, so the dispatch is retried on a
        fresh executor up to ``crash_retries`` times.  A pool that keeps
        breaking (a machine swapping its workers to death, a chaos test)
        then *degrades* instead of raising: with ``allow_degraded`` the
        dispatch runs sequentially in this process -- the task functions
        are plain picklable callables, so the numerics are identical,
        just slower -- and the degradation is counted and latched in
        ``stats``.
        """
        if callable(tasks):
            factory = tasks
        else:
            # a bare iterator would be exhausted by the time the crash
            # retry re-submits it, silently dropping results -- pin
            # non-replayable iterables down first
            if not isinstance(tasks, Sequence):
                tasks = tuple(tasks)
            factory = lambda: tasks  # noqa: E731
        if n_tasks is None:
            n_tasks = len(tasks)
        if chunksize is None:
            chunksize = max(1, n_tasks // (self.workers * parallelism_hint))
        with self._lock:
            self.dispatches += 1
        bound_fn = partial(fn, config)
        last_exc: BrokenProcessPool | None = None
        for _ in range(self.crash_retries + 1):
            executor = self._ensure_executor()
            try:
                return list(executor.map(bound_fn, factory(),
                                         chunksize=chunksize))
            except BrokenProcessPool as exc:
                last_exc = exc
                with self._lock:
                    # replace only the executor that failed: a
                    # concurrent dispatch may already have rebuilt it,
                    # and shutting the replacement down would break that
                    # dispatch's retry
                    if self._executor is executor:
                        executor.shutdown(wait=False)
                        self._executor = None
                        self.worker_restarts += 1
        if not self.allow_degraded:
            raise last_exc
        with self._lock:
            self.degraded_dispatches += 1
            self.degraded = True
        return [bound_fn(task) for task in factory()]

    # -- secure computations ---------------------------------------------------
    def secure_dot(self, params: GroupParams, mpk: FeipPublicKey,
                   columns: Sequence[FeipCiphertext],
                   keys: Sequence[FeipFunctionKey], bound: int) -> np.ndarray:
        """Decrypt every column against every row key; shape (keys, cols).

        Columns are pre-chunked so each worker task carries a run of
        columns: the stamped config and each column ciphertext cross the
        process boundary once per chunk, and inside a chunk
        ``Feip.decrypt_rows`` amortizes the shared-base window tables,
        the ``ct_0`` comb and the giant-step walk over all ``m`` rows.
        """
        keys = list(keys)
        config = self.configure_dot(params, mpk, keys, bound)
        z = np.empty((len(keys), len(columns)), dtype=object)
        chunks = chunk_tasks(list(enumerate(columns)),
                             self.workers * DOT_CHUNKS_PER_WORKER)
        for chunk_result in self._map(_dot_columns, config, chunks, 1,
                                      chunksize=1):
            for j, values in chunk_result:
                for i, value in enumerate(values):
                    z[i, j] = value
        return z

    def secure_elementwise(self, params: GroupParams, mpk: FeboPublicKey,
                           tasks, shape: tuple[int, int],
                           bound: int) -> np.ndarray:
        """Decrypt ``(i, j, ciphertext, key)`` tasks into a (rows, cols) grid.

        ``tasks`` may be a sequence or a zero-argument callable yielding
        the tasks; the callable form streams tuples to the workers
        instead of materializing ``rows * cols`` of them up front.
        """
        config = self.configure_elementwise(params, mpk, bound)
        z = np.empty(shape, dtype=object)
        n_tasks = shape[0] * shape[1]
        for i, j, value in self._map(_elementwise_cell, config, tasks, 8,
                                     n_tasks=n_tasks):
            z[i, j] = value
        return z

    def secure_convolve(self, params: GroupParams, mpk: FeipPublicKey,
                        windows: Sequence[FeipCiphertext],
                        out_shape: tuple[int, int],
                        keys: Sequence[FeipFunctionKey],
                        bound: int) -> np.ndarray:
        """Convolution as window-wise dot products; shape (keys, out_h, out_w)."""
        out_h, out_w = out_shape
        keys = list(keys)
        return self.secure_dot(params, mpk, windows, keys, bound) \
            .reshape(len(keys), out_h, out_w)

    # -- client-side encryption dispatches -------------------------------------
    def _nonce_chunks(self, count: int) -> list[int]:
        """Split ``count`` nonces into per-worker task chunks."""
        per_chunk = max(1, -(-count // (self.workers * 2)))
        chunks = [per_chunk] * (count // per_chunk)
        if count % per_chunk:
            chunks.append(count % per_chunk)
        return chunks

    def precompute_encryption(self, params: GroupParams,
                              feip_mpk: FeipPublicKey | None = None,
                              febo_mpk: FeboPublicKey | None = None,
                              feip_count: int = 0, febo_count: int = 0
                              ) -> tuple[list[FeipNonce], list[FeboNonce]]:
        """Produce offline encryption material on the worker pool.

        Returns ``(feip_nonces, febo_nonces)`` with the requested
        counts.  Workers draw from independent OS-seeded RNGs, so the
        returned nonces are distinct with overwhelming probability (the
        engine's nonce-hygiene test pins this).
        """
        config = self.configure_encrypt(params, feip_mpk, febo_mpk)
        feip_nonces: list[FeipNonce] = []
        febo_nonces: list[FeboNonce] = []
        if feip_count > 0:
            if feip_mpk is None:
                raise ValueError("feip_count > 0 requires feip_mpk")
            for batch in self._map(_feip_nonce_chunk, config,
                                   self._nonce_chunks(feip_count), 2):
                feip_nonces.extend(batch)
        if febo_count > 0:
            if febo_mpk is None:
                raise ValueError("febo_count > 0 requires febo_mpk")
            for batch in self._map(_febo_nonce_chunk, config,
                                   self._nonce_chunks(febo_count), 2):
                febo_nonces.extend(batch)
        return feip_nonces, febo_nonces

    def secure_encrypt_columns(self, params: GroupParams,
                               mpk: FeipPublicKey,
                               columns: Sequence[Sequence[int]]
                               ) -> list[FeipCiphertext]:
        """FEIP-encrypt integer vectors in parallel (workers own the nonces)."""
        config = self.configure_encrypt(params, feip_mpk=mpk)
        out: list[FeipCiphertext | None] = [None] * len(columns)
        tasks = [(j, [int(v) for v in col]) for j, col in enumerate(columns)]
        for j, ct in self._map(_encrypt_column, config, tasks, 4):
            out[j] = ct
        return out

    def secure_encrypt_values(self, params: GroupParams,
                              mpk: FeboPublicKey,
                              values: Sequence[int]) -> list[FeboCiphertext]:
        """FEBO-encrypt integer scalars in parallel (workers own the nonces)."""
        config = self.configure_encrypt(params, febo_mpk=mpk)
        out: list[FeboCiphertext | None] = [None] * len(values)
        tasks = [(j, int(v)) for j, v in enumerate(values)]
        for j, ct in self._map(_encrypt_value, config, tasks, 8):
            out[j] = ct
        return out


# -- process-wide default pools ----------------------------------------------

_DEFAULT_POOLS: dict[int, SecureComputePool] = {}
_DEFAULT_POOLS_LOCK = threading.Lock()


def get_compute_pool(workers: int | None = None) -> SecureComputePool:
    """Process-wide persistent pool for ``workers`` worker processes.

    Successive callers asking for the same worker count share one pool
    (and therefore one set of warm processes and solver caches).
    """
    count = workers or default_workers()
    with _DEFAULT_POOLS_LOCK:
        pool = _DEFAULT_POOLS.get(count)
        if pool is None:
            pool = SecureComputePool(workers=count)
            _DEFAULT_POOLS[count] = pool
        return pool


def resolve_pool(pool: SecureComputePool | None,
                 workers: int | None) -> SecureComputePool | None:
    """Single policy for "which pool does this component use".

    An explicit pool wins; otherwise a configured worker count maps to
    the shared process-wide pool; otherwise None (serial execution).
    """
    if pool is not None:
        return pool
    if workers:
        return get_compute_pool(workers)
    return None


@atexit.register
def shutdown_compute_pools() -> None:
    """Tear down every shared pool (registered atexit; callable in tests)."""
    with _DEFAULT_POOLS_LOCK:
        pools = list(_DEFAULT_POOLS.values())
        _DEFAULT_POOLS.clear()
    for pool in pools:
        pool.close()


# -- module-level conveniences ------------------------------------------------

def secure_dot_parallel(params: GroupParams, mpk: FeipPublicKey,
                        encrypted: EncryptedMatrix,
                        keys: Sequence[FeipFunctionKey], bound: int,
                        workers: int | None = None,
                        pool: SecureComputePool | None = None) -> np.ndarray:
    """Parallel version of :meth:`SecureMatrixScheme.secure_dot`.

    Columns of the encrypted matrix are distributed over the persistent
    worker pool; each worker decrypts the column against every row key.
    """
    pool = pool or get_compute_pool(workers)
    return pool.secure_dot(params, mpk, encrypted.require_feip(), keys, bound)


def secure_elementwise_parallel(params: GroupParams, mpk: FeboPublicKey,
                                encrypted: EncryptedMatrix,
                                keys: list[list[FeboFunctionKey]], bound: int,
                                workers: int | None = None,
                                pool: SecureComputePool | None = None
                                ) -> np.ndarray:
    """Parallel version of :meth:`SecureMatrixScheme.secure_elementwise`."""
    elements = encrypted.require_febo()
    rows, cols = encrypted.shape
    tasks = lambda: (  # noqa: E731 - streamed, see SecureComputePool._map
        (i, j, elements[i][j], keys[i][j])
        for i in range(rows)
        for j in range(cols)
    )
    pool = pool or get_compute_pool(workers)
    return pool.secure_elementwise(params, mpk, tasks, (rows, cols), bound)


def secure_convolve_parallel(params: GroupParams, mpk: FeipPublicKey,
                             windows: Sequence[FeipCiphertext],
                             out_shape: tuple[int, int],
                             keys: Sequence[FeipFunctionKey], bound: int,
                             workers: int | None = None,
                             pool: SecureComputePool | None = None
                             ) -> np.ndarray:
    """Parallel secure convolution over a filter bank.

    Returns shape ``(len(keys), out_h, out_w)``.
    """
    pool = pool or get_compute_pool(workers)
    return pool.secure_convolve(params, mpk, windows, out_shape, keys, bound)
