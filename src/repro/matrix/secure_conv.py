"""Secure convolution scheme (paper Algorithm 3).

A convolution of an encrypted image with a plaintext filter reduces to
FEIP inner products: the *client* pads the image, slides the window,
flattens every window into a vector and FEIP-encrypts it (lines 9-16);
the *authority* derives one key per flattened filter (lines 17-20); the
*server* decrypts one inner product per output position (lines 2-8).

The paper distinguishes fully- and partially-encrypted windows (padding
pixels are known zeros).  Because the client performs the padding before
encryption, both kinds flow through the identical FEIP path -- the
known-zero coordinates simply contribute ``g^0`` -- which is exactly how
the paper's Algorithm 3 resolves the "mixed matrix" issue.

Multi-channel images (C, H, W) and multi-filter banks (F, C, fh, fw) are
supported; windows flatten channel-major to length ``C * fh * fw``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.fe.errors import CiphertextError
from repro.fe.feip import Feip
from repro.fe.keys import FeipCiphertext, FeipFunctionKey, FeipMasterKey, FeipPublicKey


def conv_output_shape(height: int, width: int, filter_size: int,
                      stride: int, padding: int) -> tuple[int, int]:
    """Standard convolution output geometry (paper Fig. 2 example)."""
    out_h = (height + 2 * padding - filter_size) // stride + 1
    out_w = (width + 2 * padding - filter_size) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"filter {filter_size} with stride {stride} and padding {padding} "
            f"does not fit a {height}x{width} input"
        )
    return out_h, out_w


def extract_windows(image: np.ndarray, filter_size: int, stride: int,
                    padding: int) -> tuple[list[list[int]], tuple[int, int]]:
    """Pad and slide: return flattened integer windows plus output shape.

    ``image`` has shape (C, H, W) with integer entries (fixed-point
    encoded).  Window vectors are ordered row-major over output positions.
    """
    image = np.asarray(image, dtype=object)
    if image.ndim == 2:
        image = image[np.newaxis, :, :]
    if image.ndim != 3:
        raise ValueError(f"expected (C, H, W) image, got ndim={image.ndim}")
    channels, height, width = image.shape
    out_h, out_w = conv_output_shape(height, width, filter_size, stride, padding)
    padded = np.zeros((channels, height + 2 * padding, width + 2 * padding),
                      dtype=object)
    padded[:, padding:padding + height, padding:padding + width] = image
    windows: list[list[int]] = []
    for oi in range(out_h):
        for oj in range(out_w):
            window = padded[:, oi * stride:oi * stride + filter_size,
                            oj * stride:oj * stride + filter_size]
            windows.append([int(v) for v in window.ravel()])
    return windows, (out_h, out_w)


@dataclass
class EncryptedWindows:
    """Client output: one FEIP ciphertext per sliding-window position."""

    out_shape: tuple[int, int]
    window_length: int
    windows: list[FeipCiphertext]

    def __len__(self) -> int:
        return len(self.windows)


class SecureConvolution:
    """Algorithm 3 with explicit client / authority / server methods.

    An optional :class:`~repro.fe.engine.EncryptionEngine` accelerates
    the client side: window encryption consumes precomputed nonce
    tuples (and falls through to pool-parallel bulk encryption when the
    engine has a pool), instead of paying one full-width ``h_i^r`` per
    window element online.
    """

    def __init__(self, feip: Feip, mpk: FeipPublicKey | None = None,
                 engine=None):
        self.feip = feip
        self.mpk = mpk
        self.engine = engine

    def setup(self, window_length: int) -> FeipMasterKey:
        """Authority: generate a key pair for ``window_length`` vectors."""
        self.mpk, msk = self.feip.setup(window_length)
        return msk

    # -- client ------------------------------------------------------------
    def pre_process_encryption(self, image: np.ndarray, filter_size: int,
                               stride: int = 1, padding: int = 0) -> EncryptedWindows:
        """Pad, slide, flatten, encrypt (lines 9-16).

        The client learns ``filter_size``, ``stride`` and ``padding`` from
        the server because "the architecture is fixed in the adopted CNN
        model" (paper Section III-E1).
        """
        if self.mpk is None:
            raise CiphertextError("no FEIP public key; run setup() first")
        windows, out_shape = extract_windows(image, filter_size, stride, padding)
        if windows and len(windows[0]) != self.mpk.eta:
            raise CiphertextError(
                f"window length {len(windows[0])} != key length {self.mpk.eta}"
            )
        if self.engine is not None:
            ciphertexts = self.engine.encrypt_feip_columns(self.mpk, windows)
        else:
            ciphertexts = [self.feip.encrypt(self.mpk, w) for w in windows]
        return EncryptedWindows(out_shape=out_shape,
                                window_length=self.mpk.eta,
                                windows=ciphertexts)

    # -- authority -----------------------------------------------------------
    def derive_filter_key(self, msk: FeipMasterKey,
                          filter_matrix: np.ndarray) -> FeipFunctionKey:
        """One key per flattened filter (lines 17-20)."""
        flat = [int(v) for v in np.asarray(filter_matrix, dtype=object).ravel()]
        return self.feip.key_derive(msk, flat)

    def derive_filter_bank_keys(self, msk: FeipMasterKey,
                                filters: Sequence[np.ndarray]
                                ) -> list[FeipFunctionKey]:
        """Multi-filter case the paper notes is 'obviously applicable'."""
        return [self.derive_filter_key(msk, f) for f in filters]

    # -- server ------------------------------------------------------------
    def secure_convolve(self, encrypted: EncryptedWindows,
                        key: FeipFunctionKey, bound: int) -> np.ndarray:
        """Decrypt one inner product per output position (lines 2-8)."""
        return self.secure_convolve_bank(encrypted, [key], bound)[0]

    def secure_convolve_bank(self, encrypted: EncryptedWindows,
                             keys: Sequence[FeipFunctionKey],
                             bound: int) -> np.ndarray:
        """Apply a bank of filters; returns shape (F, out_h, out_w).

        The patch loop is batched across the filter dimension: every
        window ciphertext is decrypted against the whole bank in one
        ``decrypt_rows`` call, so the per-window base tables and the
        giant-step walk are shared by all F filters instead of being
        rebuilt filter by filter.
        """
        if self.mpk is None:
            raise CiphertextError("no FEIP public key; run setup() first")
        keys = list(keys)
        out_h, out_w = encrypted.out_shape
        solver = self.feip.solver_for(bound)
        z = np.empty((len(keys), out_h, out_w), dtype=object)
        for pos, window_ct in enumerate(encrypted.windows):
            z[:, pos // out_w, pos % out_w] = self.feip.decrypt_rows(
                self.mpk, window_ct, keys, bound, solver=solver)
        return z
