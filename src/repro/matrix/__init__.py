"""Secure matrix computation over functionally-encrypted data.

Implements the paper's Algorithm 1 (secure matrix computation scheme) and
Algorithm 3 (secure convolution scheme) plus the process-parallel variant
whose speedup the paper reports in Figures 3d, 4d and 5d.
"""

from repro.matrix.parallel import SecureComputePool, get_compute_pool
from repro.matrix.secure_conv import EncryptedWindows, SecureConvolution
from repro.matrix.secure_matrix import (
    EncryptedMatrix,
    SecureMatrixScheme,
    matrix_bound_dot,
    matrix_bound_elementwise,
)

__all__ = [
    "EncryptedMatrix",
    "EncryptedWindows",
    "SecureComputePool",
    "SecureConvolution",
    "SecureMatrixScheme",
    "get_compute_pool",
    "matrix_bound_dot",
    "matrix_bound_elementwise",
]
