"""Secure matrix computation (paper Algorithm 1).

The scheme has three roles, matching the paper's pseudo-code:

* **client** -- ``pre_process_encryption``: FEIP-encrypt every *column* of
  the plaintext matrix (for dot-products) and FEBO-encrypt every *element*
  (for element-wise operations), lines 14-21;
* **authority** -- ``derive_dot_keys`` / ``derive_elementwise_keys``:
  produce one FEIP key per row of the server matrix ``Y``, or one FEBO key
  per element (lines 22-30);
* **server** -- ``secure_dot`` / ``secure_elementwise``: run the
  decryptions that reveal only the function results (lines 2-13).

All plaintexts are *integers* -- callers are expected to fixed-point
encode floats first (:class:`repro.mathutils.encoding.FixedPointCodec`).
Matrices are NumPy object arrays of Python ints so no silent overflow can
occur.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

import numpy as np

from repro.fe.errors import CiphertextError, UnsupportedOperationError
from repro.fe.febo import Febo, FeboOp
from repro.fe.feip import Feip
from repro.fe.keys import (
    FeboCiphertext,
    FeboFunctionKey,
    FeboMasterKey,
    FeboPublicKey,
    FeipCiphertext,
    FeipFunctionKey,
    FeipMasterKey,
    FeipPublicKey,
)
from repro.mathutils.dlog import SolverCache
from repro.mathutils.group import GroupParams


def as_int_matrix(matrix: Sequence[Sequence[int]] | np.ndarray) -> np.ndarray:
    """Normalize input to a 2-D object array of Python ints."""
    arr = np.asarray(matrix, dtype=object)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got ndim={arr.ndim}")
    out = np.empty(arr.shape, dtype=object)
    if arr.size:
        out[...] = [[int(v) for v in row] for row in arr.tolist()]
    return out


def matrix_bound_dot(max_abs_x: int, max_abs_y: int, inner_length: int) -> int:
    """Dlog bound for a dot product of bounded integer vectors."""
    return int(max_abs_x) * int(max_abs_y) * int(inner_length) + 1


def matrix_bound_elementwise(op: FeboOp | str, max_abs_x: int, max_abs_y: int) -> int:
    """Dlog bound for an element-wise operation on bounded integers."""
    op = FeboOp.coerce(op)
    if op in (FeboOp.ADD, FeboOp.SUB):
        return int(max_abs_x) + int(max_abs_y) + 1
    if op is FeboOp.MUL:
        return int(max_abs_x) * int(max_abs_y) + 1
    return int(max_abs_x) + 1  # exact division shrinks magnitude


class EncryptedMatrix:
    """The client-side encryption of a matrix ``X`` (paper lines 14-21).

    Holds the FEIP encryption ``[[x]]`` of each column (used for
    dot-products) and/or the FEBO encryption ``[[X]]`` of each element
    (used for element-wise ops).  Either part may be omitted to save
    client work when only one kind of computation is planned.
    """

    def __init__(self, shape: tuple[int, int],
                 feip_columns: list[FeipCiphertext] | None,
                 febo_elements: list[list[FeboCiphertext]] | None):
        self.shape = shape
        self.feip_columns = feip_columns
        self.febo_elements = febo_elements

    @property
    def rows(self) -> int:
        return self.shape[0]

    @property
    def cols(self) -> int:
        return self.shape[1]

    def require_feip(self) -> list[FeipCiphertext]:
        if self.feip_columns is None:
            raise CiphertextError("matrix was encrypted without FEIP columns")
        return self.feip_columns

    def require_febo(self) -> list[list[FeboCiphertext]]:
        if self.febo_elements is None:
            raise CiphertextError("matrix was encrypted without FEBO elements")
        return self.febo_elements

    def commitments(self) -> list[list[int]]:
        """Per-element commitments the authority needs for FEBO keys."""
        return [[ct.cmt for ct in row] for row in self.require_febo()]


class SecureMatrixScheme:
    """Facade bundling FEIP + FEBO for matrix-level secure computation.

    The public keys ride along; master keys stay with the caller (the
    authority entity in :mod:`repro.core.entities`) and are passed
    explicitly to the key-derivation methods, mirroring the trust split.

    When a persistent :class:`~repro.matrix.parallel.SecureComputePool`
    is attached (constructor argument or :meth:`use_pool`), the
    server-side computations route their decryption loops through it;
    without one they run serially in-process.  Symmetrically, an
    attached :class:`~repro.fe.engine.EncryptionEngine`
    (:meth:`use_engine`) routes the client-side
    :meth:`pre_process_encryption` through precomputed nonce material
    and pool-parallel bulk encryption.
    """

    def __init__(self, params: GroupParams,
                 feip_mpk: FeipPublicKey | None = None,
                 febo_mpk: FeboPublicKey | None = None,
                 rng: random.Random | None = None,
                 solver_cache: SolverCache | None = None,
                 pool=None, engine=None):
        self.params = params
        self.feip = Feip(params, rng=rng, solver_cache=solver_cache)
        self.febo = Febo(params, rng=rng, solver_cache=solver_cache)
        self.feip_mpk = feip_mpk
        self.febo_mpk = febo_mpk
        self.pool = pool
        self.engine = engine

    def use_pool(self, pool) -> "SecureMatrixScheme":
        """Attach (or detach, with None) a persistent compute pool."""
        self.pool = pool
        return self

    def use_engine(self, engine) -> "SecureMatrixScheme":
        """Attach (or detach, with None) an offline/online encryption engine."""
        self.engine = engine
        return self

    # -- setup (authority) ---------------------------------------------------
    def setup(self, column_length: int) -> tuple[FeipMasterKey, FeboMasterKey]:
        """Generate both key pairs; publishes the public halves on self."""
        self.feip_mpk, feip_msk = self.feip.setup(column_length)
        self.febo_mpk, febo_msk = self.febo.setup()
        return feip_msk, febo_msk

    # -- client side -----------------------------------------------------------
    def pre_process_encryption(self, matrix: Sequence[Sequence[int]] | np.ndarray,
                               with_feip: bool = True,
                               with_febo: bool = True) -> EncryptedMatrix:
        """Encrypt ``X`` column-wise (FEIP) and element-wise (FEBO)."""
        x = as_int_matrix(matrix)
        rows, cols = x.shape
        feip_columns = None
        febo_elements = None
        if with_feip:
            if self.feip_mpk is None:
                raise CiphertextError("no FEIP public key; run setup() first")
            if self.feip_mpk.eta != rows:
                raise CiphertextError(
                    f"FEIP key supports columns of length {self.feip_mpk.eta}, "
                    f"matrix has {rows} rows"
                )
            if self.engine is not None:
                feip_columns = self.engine.encrypt_feip_columns(
                    self.feip_mpk, [list(x[:, j]) for j in range(cols)])
            else:
                feip_columns = [
                    self.feip.encrypt(self.feip_mpk, list(x[:, j]))
                    for j in range(cols)
                ]
        if with_febo:
            if self.febo_mpk is None:
                raise CiphertextError("no FEBO public key; run setup() first")
            if self.engine is not None:
                flat = self.engine.encrypt_febo_values(
                    self.febo_mpk, [x[i, j] for i in range(rows)
                                    for j in range(cols)])
                febo_elements = [flat[i * cols:(i + 1) * cols]
                                 for i in range(rows)]
            else:
                febo_elements = [
                    [self.febo.encrypt(self.febo_mpk, x[i, j])
                     for j in range(cols)]
                    for i in range(rows)
                ]
        return EncryptedMatrix((rows, cols), feip_columns, febo_elements)

    # -- authority side -----------------------------------------------------------
    def derive_dot_keys(self, msk: FeipMasterKey,
                        y: Sequence[Sequence[int]] | np.ndarray
                        ) -> list[FeipFunctionKey]:
        """One FEIP key per row of the server matrix ``Y`` (lines 25-27)."""
        y_arr = as_int_matrix(y)
        return [self.feip.key_derive(msk, list(row)) for row in y_arr]

    def derive_elementwise_keys(self, msk: FeboMasterKey, op: FeboOp | str,
                                y: Sequence[Sequence[int]] | np.ndarray,
                                commitments: list[list[int]]
                                ) -> list[list[FeboFunctionKey]]:
        """One FEBO key per element of ``Y`` (lines 28-30).

        FEBO keys are commitment-bound, so the server must forward the
        ciphertext commitments with its request.
        """
        y_arr = as_int_matrix(y)
        rows, cols = y_arr.shape
        if len(commitments) != rows or any(len(r) != cols for r in commitments):
            raise CiphertextError("commitment matrix shape mismatch")
        return [
            [
                self.febo.key_derive(msk, commitments[i][j], op, y_arr[i, j])
                for j in range(cols)
            ]
            for i in range(rows)
        ]

    # -- server side -----------------------------------------------------------
    def secure_dot(self, encrypted: EncryptedMatrix,
                   keys: Sequence[FeipFunctionKey], bound: int) -> np.ndarray:
        """Compute ``Z = Y @ X`` from encrypted ``X`` (lines 4-8).

        ``keys[i]`` must be the FEIP key for the i-th row of ``Y``; the
        result has shape ``(len(keys), X.cols)``.
        """
        if self.feip_mpk is None:
            raise CiphertextError("no FEIP public key; run setup() first")
        columns = encrypted.require_feip()
        if self.pool is not None:
            return self.pool.secure_dot(self.params, self.feip_mpk, columns,
                                        keys, bound)
        # batched per column: all rows share the ciphertext bases, so one
        # decrypt_rows call amortizes the window tables and the dlog walk
        solver = self.feip.solver_for(bound)
        z = np.empty((len(keys), len(columns)), dtype=object)
        for j, column_ct in enumerate(columns):
            z[:, j] = self.feip.decrypt_rows(self.feip_mpk, column_ct, keys,
                                             bound, solver=solver)
        return z

    def secure_elementwise(self, encrypted: EncryptedMatrix,
                           keys: list[list[FeboFunctionKey]],
                           bound: int) -> np.ndarray:
        """Compute ``Z[i][j] = X[i][j] op Y[i][j]`` (lines 9-12)."""
        if self.febo_mpk is None:
            raise CiphertextError("no FEBO public key; run setup() first")
        elements = encrypted.require_febo()
        rows, cols = encrypted.shape
        if len(keys) != rows or any(len(r) != cols for r in keys):
            raise UnsupportedOperationError("key matrix shape mismatch")
        if self.pool is not None:
            # a factory, not a list: the pool streams task tuples to the
            # workers chunk by chunk instead of materializing rows*cols
            # pickled tuples before the first dispatch
            tasks = lambda: (  # noqa: E731
                (i, j, elements[i][j], keys[i][j])
                for i in range(rows)
                for j in range(cols)
            )
            return self.pool.secure_elementwise(self.params, self.febo_mpk,
                                                tasks, (rows, cols), bound)
        # independent bases, but the bounded dlogs still batch: one
        # deduplicated giant-step walk covers the whole grid
        values = self.febo.decrypt_many(
            self.febo_mpk,
            [(keys[i][j], elements[i][j])
             for i in range(rows) for j in range(cols)],
            bound,
        )
        z = np.empty((rows, cols), dtype=object)
        if z.size:
            z[...] = [values[i * cols:(i + 1) * cols] for i in range(rows)]
        return z
