"""Configuration for CryptoNN training runs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mathutils.encoding import PAPER_SCALE
from repro.mathutils.group import PAPER_SECURITY_BITS, TOY_SECURITY_BITS


def pow2_round_up(value: int) -> int:
    """Round up to a power of two.

    Discrete-log bounds derived from live weight magnitudes change every
    iteration; rounding them up to powers of two lets the solver cache
    reuse its baby-step tables instead of rebuilding per iteration.
    """
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


@dataclass
class CryptoNNConfig:
    """Knobs shared by the CryptoNN / CryptoCNN trainers.

    Attributes:
        security_bits: Schnorr group size.  The paper's experiments use
            256; the default here is the toy size so tests and scaled
            benches run quickly (identical code path, see DESIGN.md).
        scale: fixed-point scale; the paper keeps two decimal places (100).
        max_abs_feature: clients promise features within this magnitude
            (inputs normalized to [0, 1] satisfy 1.0).
        max_abs_weight: server clips first-layer weights to this magnitude
            so the dot-product dlog bound stays valid and small.
        cache_reconstructed_features: cache the FEBO-reconstructed scaled
            features server-side after the first gradient step touching a
            sample (a rational server would; disable to re-pay the FEBO
            decryptions every iteration, matching a fully stateless server).
        key_weight_bytes: |w| in the communication formula.
        workers: process count for the parallel secure feed-forward
            (paper Figures 3d/4d/5d).  None runs serially -- the right
            choice for small batches, where pool startup dominates.
        batch_key_requests: coalesce every per-iteration key request
            (first-layer rows, per-sample loss keys, label subtractions)
            into one batched envelope per step, recorded under the
            ``*-key-batch-*`` traffic kinds.  Off by default so the
            unbatched accounting matches the paper's Section IV-B2
            formula message-for-message; the networked runtime
            (:mod:`repro.rpc`) turns it on to collapse round trips.
    """

    security_bits: int = TOY_SECURITY_BITS
    scale: int = PAPER_SCALE
    max_abs_feature: float = 1.0
    max_abs_weight: float = 2.0
    cache_reconstructed_features: bool = True
    key_weight_bytes: int = 8
    workers: int | None = None
    batch_key_requests: bool = False

    @classmethod
    def paper(cls) -> "CryptoNNConfig":
        """The paper's setting: 256-bit group, two-decimal fixed point."""
        return cls(security_bits=PAPER_SECURITY_BITS, scale=PAPER_SCALE)

    def dot_bound(self, vector_length: int) -> int:
        """Dlog bound for first-layer dot products / convolutions."""
        raw = int(
            vector_length
            * self.max_abs_feature * self.scale
            * self.max_abs_weight * self.scale
        ) + 1
        return pow2_round_up(raw)

    def product_bound(self) -> int:
        """Dlog bound for feature x delta FEBO products."""
        # deltas are gradient entries; they are far below max_abs_weight in
        # practice, so the weight cap is a safe envelope.
        raw = int(
            self.max_abs_feature * self.scale * self.max_abs_weight * self.scale
        ) + 1
        return pow2_round_up(raw)

    def label_sub_bound(self) -> int:
        """Dlog bound for (encrypted label) - (probability) subtraction."""
        return pow2_round_up(2 * self.scale + 1)

    def loss_bound(self, max_abs_log_prob: float = 40.0) -> int:
        """Dlog bound for the <y, log p> cross-entropy inner product."""
        return pow2_round_up(int(max_abs_log_prob * self.scale * self.scale) + 1)
