"""Protocol messages and traffic accounting.

The CryptoNN entities exchange four message kinds:

* ``public-params`` (authority -> everyone, once),
* ``encrypted-data`` (client -> server, once per dataset),
* ``feip-key-request`` / ``feip-key-response`` (server <-> authority, per
  iteration -- the paper's k x n x |w| up, k x |sk| down),
* ``febo-key-request`` / ``febo-key-response`` (server <-> authority).

Entities run in-process here (the paper's prototype did too), but every
logical message is recorded with its byte-accurate wire size in a
:class:`TrafficLog`, which the communication-overhead bench
(`benchmarks/bench_communication.py`) compares against the closed-form
formula of Section IV-B2.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TrafficRecord:
    """One logical message."""

    sender: str
    receiver: str
    kind: str
    n_bytes: int


@dataclass
class TrafficLog:
    """Log of protocol messages with aggregate queries.

    Unbounded by default (one :class:`TrafficRecord` per message, the
    right tool for experiments that inspect individual messages).  With
    ``max_records`` set, the log *rotates*: once the list exceeds the
    cap, the oldest records are folded into per-``(sender, receiver,
    kind)`` running totals, so a weeks-long service under real traffic
    holds a bounded record list while ``total_bytes`` /
    ``message_count`` / ``by_kind`` keep reporting exact lifetime
    aggregates -- the accounting the Section IV-B2 checks compare
    against is preserved to the byte.
    """

    records: list[TrafficRecord] = field(default_factory=list)
    #: rotation threshold; ``None`` keeps every record forever.
    max_records: int | None = None
    #: (sender, receiver, kind) -> [message count, byte total] for
    #: records already rotated out of ``records``.
    rotated: dict[tuple[str, str, str], list[int]] = field(
        default_factory=dict)

    def record(self, sender: str, receiver: str, kind: str, n_bytes: int) -> None:
        if n_bytes < 0:
            raise ValueError("message size cannot be negative")
        self.records.append(TrafficRecord(sender, receiver, kind, n_bytes))
        if self.max_records is not None and len(self.records) > self.max_records:
            self._rotate()

    def _rotate(self) -> None:
        """Fold the oldest half of ``records`` into the running totals.

        Rotating half (rather than one) keeps rotation amortized O(1)
        per message instead of shifting the whole list every append.
        """
        keep = max(1, self.max_records // 2)
        overflow, self.records = self.records[:-keep], self.records[-keep:]
        for r in overflow:
            entry = self.rotated.setdefault((r.sender, r.receiver, r.kind),
                                            [0, 0])
            entry[0] += 1
            entry[1] += r.n_bytes

    def _rotated_matching(self, sender: str | None, receiver: str | None,
                          kind: str | None):
        for (s, rcv, k), (count, n_bytes) in self.rotated.items():
            if (sender is None or s == sender) \
                    and (receiver is None or rcv == receiver) \
                    and (kind is None or k == kind):
                yield count, n_bytes

    def total_bytes(self, sender: str | None = None,
                    receiver: str | None = None,
                    kind: str | None = None) -> int:
        """Sum of message sizes, optionally filtered on any field."""
        live = sum(
            r.n_bytes
            for r in self.records
            if (sender is None or r.sender == sender)
            and (receiver is None or r.receiver == receiver)
            and (kind is None or r.kind == kind)
        )
        return live + sum(n_bytes for _, n_bytes in
                          self._rotated_matching(sender, receiver, kind))

    def message_count(self, kind: str | None = None) -> int:
        if kind is None:
            return len(self.records) + \
                sum(count for count, _ in self.rotated.values())
        return sum(1 for r in self.records if r.kind == kind) + \
            sum(count for count, _ in
                self._rotated_matching(None, None, kind))

    def by_kind(self) -> dict[str, int]:
        """Total bytes per message kind."""
        totals: dict[str, int] = defaultdict(int)
        for r in self.records:
            totals[r.kind] += r.n_bytes
        for (_, _, kind), (_, n_bytes) in self.rotated.items():
            totals[kind] += n_bytes
        return dict(totals)

    def clear(self) -> None:
        self.records.clear()
        self.rotated.clear()


# Canonical entity names used in records.
AUTHORITY = "authority"
SERVER = "server"
CLIENT = "client"

# Message kinds.
KIND_PUBLIC_PARAMS = "public-params"
KIND_ENCRYPTED_DATA = "encrypted-data"
KIND_FEIP_KEY_REQUEST = "feip-key-request"
KIND_FEIP_KEY_RESPONSE = "feip-key-response"
KIND_FEBO_KEY_REQUEST = "febo-key-request"
KIND_FEBO_KEY_RESPONSE = "febo-key-response"

# Batched variants: many logical key requests coalesced into one framed
# envelope (paper Section IV-B2's k x n x |w| upload as a single message).
# Sizes include the envelope header, so batched totals exceed the raw
# payload by BATCH_HEADER_BYTES per message while the message *count*
# collapses to one per iteration step.
KIND_FEIP_KEY_BATCH_REQUEST = "feip-key-batch-request"
KIND_FEIP_KEY_BATCH_RESPONSE = "feip-key-batch-response"
KIND_FEBO_KEY_BATCH_REQUEST = "febo-key-batch-request"
KIND_FEBO_KEY_BATCH_RESPONSE = "febo-key-batch-response"
