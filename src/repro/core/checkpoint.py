"""Persistence for models and encrypted datasets.

Clients encrypt once and may ship the ciphertexts to the server through
any channel -- including disk.  This module round-trips the encrypted
containers (JSON, via :mod:`repro.core.serialization`) and model weights
(``.npz``), so the training side can checkpoint and resume.
"""

from __future__ import annotations

import json
import pathlib
import random

import numpy as np

from repro.core import serialization as ser
from repro.core.config import CryptoNNConfig
from repro.core.encdata import (
    EncryptedLabel,
    EncryptedSample,
    EncryptedTabularDataset,
)
from repro.core.entities import TrustedAuthority
from repro.fe.keys import FeboMasterKey, FeboPublicKey, FeipMasterKey, FeipPublicKey
from repro.nn.model import Sequential


# -- model weights -----------------------------------------------------------

def save_model_weights(model: Sequential, path: str | pathlib.Path) -> None:
    """Write all layer parameters to a compressed ``.npz`` archive."""
    arrays: dict[str, np.ndarray] = {}
    for i, layer in enumerate(model.layers):
        for name, value in layer.params.items():
            arrays[f"layer{i}.{name}"] = value
    np.savez_compressed(path, **arrays)


def load_model_weights(model: Sequential, path: str | pathlib.Path) -> None:
    """Load parameters saved by :func:`save_model_weights` into ``model``.

    The model must have the same architecture (layer count, param shapes).
    """
    with np.load(path) as archive:
        for i, layer in enumerate(model.layers):
            for name, param in layer.params.items():
                key = f"layer{i}.{name}"
                if key not in archive:
                    raise KeyError(f"checkpoint is missing {key}")
                stored = archive[key]
                if stored.shape != param.shape:
                    raise ValueError(
                        f"{key} shape {stored.shape} != model {param.shape}"
                    )
                param[...] = stored


# -- encrypted tabular datasets ------------------------------------------------

def _sample_to_dict(sample: EncryptedSample) -> dict:
    return {
        "ip": ser.feip_ciphertext_to_dict(sample.features_ip),
        "bo": [ser.febo_ciphertext_to_dict(c) for c in sample.features_bo],
    }


def _sample_from_dict(data: dict) -> EncryptedSample:
    return EncryptedSample(
        features_ip=ser.feip_ciphertext_from_dict(data["ip"]),
        features_bo=tuple(ser.febo_ciphertext_from_dict(c)
                          for c in data["bo"]),
    )


def _label_to_dict(label: EncryptedLabel) -> dict:
    return {
        "ip": ser.feip_ciphertext_to_dict(label.onehot_ip),
        "bo": [ser.febo_ciphertext_to_dict(c) for c in label.onehot_bo],
    }


def _label_from_dict(data: dict) -> EncryptedLabel:
    return EncryptedLabel(
        onehot_ip=ser.feip_ciphertext_from_dict(data["ip"]),
        onehot_bo=tuple(ser.febo_ciphertext_from_dict(c)
                        for c in data["bo"]),
    )


def save_encrypted_tabular(dataset: EncryptedTabularDataset,
                           path: str | pathlib.Path) -> None:
    """Serialize an encrypted tabular dataset to a JSON file.

    ``eval_labels`` (the harness-only ground truth) is included when
    present; a real client shipping data to an untrusted server would
    strip it first.
    """
    payload = {
        "format": "repro.encrypted-tabular.v1",
        "num_classes": dataset.num_classes,
        "n_features": dataset.n_features,
        "scale": dataset.scale,
        "samples": [_sample_to_dict(s) for s in dataset.samples],
        "labels": [_label_to_dict(l) for l in dataset.labels],
        "eval_labels": (dataset.eval_labels.tolist()
                        if dataset.eval_labels is not None else None),
    }
    pathlib.Path(path).write_text(json.dumps(payload))


def load_encrypted_tabular(path: str | pathlib.Path) -> EncryptedTabularDataset:
    """Inverse of :func:`save_encrypted_tabular`."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format") != "repro.encrypted-tabular.v1":
        raise ValueError(f"not an encrypted-tabular checkpoint: {path}")
    eval_labels = payload["eval_labels"]
    return EncryptedTabularDataset(
        samples=[_sample_from_dict(s) for s in payload["samples"]],
        labels=[_label_from_dict(l) for l in payload["labels"]],
        num_classes=int(payload["num_classes"]),
        n_features=int(payload["n_features"]),
        scale=int(payload["scale"]),
        eval_labels=(np.asarray(eval_labels, dtype=np.int64)
                     if eval_labels is not None else None),
    )


# -- authority state -------------------------------------------------------------

def save_authority(authority: TrustedAuthority,
                   path: str | pathlib.Path) -> None:
    """Persist the authority's master keys.

    SECURITY: this file *is* the master secret key material.  It exists
    so the CLI / multi-process experiments can resume a crypto context;
    treat it like a private key file.
    """
    payload = {
        "format": "repro.authority.v1",
        "security_bits": authority.config.security_bits,
        "scale": authority.config.scale,
        "max_abs_feature": authority.config.max_abs_feature,
        "max_abs_weight": authority.config.max_abs_weight,
        "febo_msk": authority._febo_pair[1].s,
        "feip_msks": {
            str(eta): list(msk.s)
            for eta, (_, msk) in authority._feip_pairs.items()
        },
    }
    pathlib.Path(path).write_text(json.dumps(payload))


def load_authority(path: str | pathlib.Path,
                   rng: random.Random | None = None) -> TrustedAuthority:
    """Rebuild a :class:`TrustedAuthority` from :func:`save_authority`."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format") != "repro.authority.v1":
        raise ValueError(f"not an authority checkpoint: {path}")
    config = CryptoNNConfig(
        security_bits=int(payload["security_bits"]),
        scale=int(payload["scale"]),
        max_abs_feature=float(payload["max_abs_feature"]),
        max_abs_weight=float(payload["max_abs_weight"]),
    )
    authority = TrustedAuthority(config, rng=rng)
    group = authority.feip.group
    febo_s = int(payload["febo_msk"])
    authority._febo_pair = (
        FeboPublicKey(params=authority.params, h=group.gexp(febo_s)),
        FeboMasterKey(s=febo_s),
    )
    for eta_str, s_list in payload["feip_msks"].items():
        s = tuple(int(v) for v in s_list)
        mpk = FeipPublicKey(params=authority.params,
                            h=tuple(group.gexp(si) for si in s))
        authority._feip_pairs[int(eta_str)] = (mpk, FeipMasterKey(s=s))
    return authority
