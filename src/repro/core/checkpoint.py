"""Persistence for models, encrypted datasets and full trainer state.

Clients encrypt once and may ship the ciphertexts to the server through
any channel -- including disk.  This module round-trips the encrypted
containers (JSON, via :mod:`repro.core.serialization`), bare model
weights (``.npz``), and -- for exact resume -- the complete trainer
state as a :class:`TrainerCheckpoint`.

A trainer checkpoint is a single ``.npz`` archive holding the model
parameters, the optimizer's ``state_dict()`` (velocity / Adam moments /
timestep), the NumPy bit-generator state driving the shuffle stream,
the in-flight epoch's permutation, epoch/batch counters and the
:class:`~repro.nn.model.TrainingHistory`, plus a JSON metadata blob
(``__meta__``) fingerprinting the run.  Every write is atomic
(tmp-then-``os.replace``), so a crash mid-write leaves the previous
checkpoint intact.

SECURITY: a trainer checkpoint contains *no key material* -- only
plaintext model state the server already holds.  The authority file
(:func:`save_authority`) is the only artifact carrying master secrets
and stays separate on purpose.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import random

import numpy as np

from repro.core import serialization as ser
from repro.core.config import CryptoNNConfig
from repro.core.encdata import (
    EncryptedLabel,
    EncryptedSample,
    EncryptedTabularDataset,
)
from repro.core.entities import TrustedAuthority
from repro.fe.keys import FeboMasterKey, FeboPublicKey, FeipMasterKey, FeipPublicKey
from repro.nn.model import Sequential, TrainingHistory
from repro.nn.optimizers import Optimizer


TRAINER_CHECKPOINT_FORMAT = "repro.trainer-checkpoint.v1"


# -- atomic writes -----------------------------------------------------------

def _atomic_write_bytes(path: str | pathlib.Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via tmp-then-rename, fsynced.

    A reader (or a process killed mid-write) either sees the previous
    complete file or the new complete file, never a torn one.
    """
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def npz_path(path: str | pathlib.Path) -> pathlib.Path:
    """``np.savez`` appends ``.npz`` to suffix-less paths; keep that
    contract so saving to ``model.json`` still produces ``model.json.npz``
    and save/load/exists all agree on the final name."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def _atomic_write_npz(path: str | pathlib.Path,
                      arrays: dict[str, np.ndarray]) -> None:
    path = npz_path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


# -- model weights -----------------------------------------------------------

def save_model_weights(model: Sequential, path: str | pathlib.Path) -> None:
    """Write all layer parameters to a compressed ``.npz`` archive."""
    arrays: dict[str, np.ndarray] = {}
    for i, layer in enumerate(model.layers):
        for name, value in layer.params.items():
            arrays[f"layer{i}.{name}"] = value
    _atomic_write_npz(path, arrays)


def load_model_weights(model: Sequential, path: str | pathlib.Path) -> None:
    """Load parameters saved by :func:`save_model_weights` into ``model``.

    The archive's key set must match the model's parameters *exactly*:
    a missing key raises ``KeyError``, an extra key (a checkpoint from a
    deeper model would otherwise load silently truncated) raises
    ``ValueError``, as does any shape mismatch.
    """
    expected = {f"layer{i}.{name}"
                for i, layer in enumerate(model.layers)
                for name in layer.params}
    with np.load(path) as archive:
        extra = set(archive.files) - expected
        if extra:
            raise ValueError(
                f"checkpoint holds parameters the model does not have: "
                f"{sorted(extra)} (wrong architecture?)")
        for i, layer in enumerate(model.layers):
            for name, param in layer.params.items():
                key = f"layer{i}.{name}"
                if key not in archive:
                    raise KeyError(f"checkpoint is missing {key}")
                stored = archive[key]
                if stored.shape != param.shape:
                    raise ValueError(
                        f"{key} shape {stored.shape} != model {param.shape}"
                    )
                param[...] = stored


# -- encrypted tabular datasets ------------------------------------------------

def _sample_to_dict(sample: EncryptedSample) -> dict:
    return {
        "ip": ser.feip_ciphertext_to_dict(sample.features_ip),
        "bo": [ser.febo_ciphertext_to_dict(c) for c in sample.features_bo],
    }


def _sample_from_dict(data: dict) -> EncryptedSample:
    return EncryptedSample(
        features_ip=ser.feip_ciphertext_from_dict(data["ip"]),
        features_bo=tuple(ser.febo_ciphertext_from_dict(c)
                          for c in data["bo"]),
    )


def _label_to_dict(label: EncryptedLabel) -> dict:
    return {
        "ip": ser.feip_ciphertext_to_dict(label.onehot_ip),
        "bo": [ser.febo_ciphertext_to_dict(c) for c in label.onehot_bo],
    }


def _label_from_dict(data: dict) -> EncryptedLabel:
    return EncryptedLabel(
        onehot_ip=ser.feip_ciphertext_from_dict(data["ip"]),
        onehot_bo=tuple(ser.febo_ciphertext_from_dict(c)
                        for c in data["bo"]),
    )


def save_encrypted_tabular(dataset: EncryptedTabularDataset,
                           path: str | pathlib.Path) -> None:
    """Serialize an encrypted tabular dataset to a JSON file.

    ``eval_labels`` (the harness-only ground truth) is included when
    present; a real client shipping data to an untrusted server would
    strip it first.
    """
    payload = {
        "format": "repro.encrypted-tabular.v1",
        "num_classes": dataset.num_classes,
        "n_features": dataset.n_features,
        "scale": dataset.scale,
        "samples": [_sample_to_dict(s) for s in dataset.samples],
        "labels": [_label_to_dict(l) for l in dataset.labels],
        "eval_labels": (dataset.eval_labels.tolist()
                        if dataset.eval_labels is not None else None),
    }
    _atomic_write_bytes(path, json.dumps(payload).encode("utf-8"))


def load_encrypted_tabular(path: str | pathlib.Path) -> EncryptedTabularDataset:
    """Inverse of :func:`save_encrypted_tabular`."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format") != "repro.encrypted-tabular.v1":
        raise ValueError(f"not an encrypted-tabular checkpoint: {path}")
    eval_labels = payload["eval_labels"]
    return EncryptedTabularDataset(
        samples=[_sample_from_dict(s) for s in payload["samples"]],
        labels=[_label_from_dict(l) for l in payload["labels"]],
        num_classes=int(payload["num_classes"]),
        n_features=int(payload["n_features"]),
        scale=int(payload["scale"]),
        eval_labels=(np.asarray(eval_labels, dtype=np.int64)
                     if eval_labels is not None else None),
    )


# -- authority state -------------------------------------------------------------

def save_authority(authority: TrustedAuthority,
                   path: str | pathlib.Path) -> None:
    """Persist the authority's master keys.

    SECURITY: this file *is* the master secret key material.  It exists
    so the CLI / multi-process experiments can resume a crypto context;
    treat it like a private key file.
    """
    payload = {
        "format": "repro.authority.v1",
        "security_bits": authority.config.security_bits,
        "scale": authority.config.scale,
        "max_abs_feature": authority.config.max_abs_feature,
        "max_abs_weight": authority.config.max_abs_weight,
        # repro: allow[key-serialization] -- the authority key file IS
        # the master-key artifact (see SECURITY note above)
        "febo_msk": authority._febo_pair[1].s,
        # repro: allow[key-serialization] -- same: this file never
        # leaves the authority
        "feip_msks": {
            str(eta): list(msk.s)
            for eta, (_, msk) in authority._feip_pairs.items()
        },
    }
    _atomic_write_bytes(path, json.dumps(payload).encode("utf-8"))


def load_authority(path: str | pathlib.Path,
                   rng: random.Random | None = None) -> TrustedAuthority:
    """Rebuild a :class:`TrustedAuthority` from :func:`save_authority`."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format") != "repro.authority.v1":
        raise ValueError(f"not an authority checkpoint: {path}")
    config = CryptoNNConfig(
        security_bits=int(payload["security_bits"]),
        scale=int(payload["scale"]),
        max_abs_feature=float(payload["max_abs_feature"]),
        max_abs_weight=float(payload["max_abs_weight"]),
    )
    authority = TrustedAuthority(config, rng=rng)
    group = authority.feip.group
    febo_s = int(payload["febo_msk"])
    authority._febo_pair = (
        FeboPublicKey(params=authority.params, h=group.gexp(febo_s)),
        FeboMasterKey(s=febo_s),
    )
    for eta_str, s_list in payload["feip_msks"].items():
        s = tuple(int(v) for v in s_list)
        mpk = FeipPublicKey(params=authority.params,
                            h=tuple(group.gexp(si) for si in s))
        authority._feip_pairs[int(eta_str)] = (mpk, FeipMasterKey(s=s))
    return authority


# -- full trainer state (exact resume) ---------------------------------------

def _jsonify(obj):
    """RNG bit-generator states mix ints with ndarrays (Philox/SFC64);
    tag ndarrays so the structure survives a JSON round trip exactly."""
    if isinstance(obj, dict):
        return {key: _jsonify(value) for key, value in obj.items()}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    return obj


def _dejsonify(obj):
    if isinstance(obj, dict):
        if "__ndarray__" in obj:
            return np.asarray(obj["__ndarray__"], dtype=obj["dtype"])
        return {key: _dejsonify(value) for key, value in obj.items()}
    return obj


def _extract_arrays(obj, arrays: dict[str, np.ndarray], prefix: str):
    """Replace ndarray leaves with references into the npz ``arrays``
    dict, returning the JSON-safe skeleton."""
    if isinstance(obj, np.ndarray):
        key = prefix
        arrays[key] = obj
        return {"__npz__": key}
    if isinstance(obj, dict):
        return {k: _extract_arrays(v, arrays, f"{prefix}/{k}")
                for k, v in obj.items()}
    return _jsonify(obj)


def _reinsert_arrays(obj, archive):
    if isinstance(obj, dict):
        if "__npz__" in obj:
            return archive[obj["__npz__"]]
        return {k: _reinsert_arrays(v, archive) for k, v in obj.items()}
    return _dejsonify(obj)


@dataclasses.dataclass
class TrainerCheckpoint:
    """Everything ``fit()`` needs to continue a run bit-exactly.

    ``epoch`` / ``batch_in_epoch`` count *completed* work: the
    checkpoint was taken after ``batch_in_epoch`` batches of epoch
    ``epoch`` (0-based) finished.  ``epoch_order`` is the in-flight
    epoch's full shuffle permutation, so a mid-epoch resume replays the
    exact remaining batch schedule; ``rng_state`` is the bit-generator
    state *at checkpoint time*, so every later epoch draws the same
    permutations the uninterrupted run would.

    Contains no key material -- see the module docstring.
    """

    model_weights: list[dict[str, np.ndarray]]
    optimizer_state: dict
    rng_state: dict | None
    epoch: int
    batch_in_epoch: int
    batch_counter: int
    history: TrainingHistory
    epoch_order: np.ndarray | None = None
    completed: bool = False
    run_meta: dict = dataclasses.field(default_factory=dict)

    # -- capture / restore ---------------------------------------------------
    @classmethod
    def capture(cls, model: Sequential, optimizer: Optimizer,
                rng: np.random.Generator | None, *, epoch: int,
                batch_in_epoch: int, batch_counter: int,
                history: TrainingHistory,
                epoch_order: np.ndarray | None = None,
                completed: bool = False,
                run_meta: dict | None = None) -> "TrainerCheckpoint":
        """Deep-copying snapshot of the live training loop."""
        return cls(
            model_weights=model.get_weights(),
            optimizer_state=optimizer.state_dict(),
            rng_state=(dict(rng.bit_generator.state)
                       if rng is not None else None),
            epoch=epoch,
            batch_in_epoch=batch_in_epoch,
            batch_counter=batch_counter,
            history=TrainingHistory.from_dict(history.to_dict()),
            epoch_order=(None if epoch_order is None
                         else np.array(epoch_order, copy=True)),
            completed=completed,
            run_meta=dict(run_meta or {}),
        )

    def restore_model(self, model: Sequential) -> None:
        """Load the checkpointed parameters into ``model``, strictly:
        layer count, per-layer key sets and shapes must all match."""
        if len(self.model_weights) != len(model.layers):
            raise ValueError(
                f"checkpoint has {len(self.model_weights)} layers, "
                f"model has {len(model.layers)}")
        for i, (layer, weights) in enumerate(
                zip(model.layers, self.model_weights)):
            if set(weights) != set(layer.params):
                raise ValueError(
                    f"layer {i} parameters {sorted(layer.params)} != "
                    f"checkpoint {sorted(weights)}")
            for name, value in weights.items():
                if layer.params[name].shape != value.shape:
                    raise ValueError(
                        f"layer {i}.{name} shape {value.shape} != "
                        f"model {layer.params[name].shape}")
                layer.params[name][...] = value

    def restore_rng(self, rng: np.random.Generator) -> None:
        rng.bit_generator.state = self.rng_state

    # -- persistence ---------------------------------------------------------
    def save(self, path: str | pathlib.Path) -> None:
        """Atomic single-file ``.npz`` write (tmp-then-rename)."""
        arrays: dict[str, np.ndarray] = {}
        layer_params: list[list[str]] = []
        for i, weights in enumerate(self.model_weights):
            layer_params.append(sorted(weights))
            for name, value in weights.items():
                arrays[f"model.layer{i}.{name}"] = value
        optimizer_skeleton = _extract_arrays(
            self.optimizer_state, arrays, "opt")
        if self.epoch_order is not None:
            arrays["epoch_order"] = np.asarray(self.epoch_order,
                                               dtype=np.int64)
        meta = {
            "format": TRAINER_CHECKPOINT_FORMAT,
            "epoch": int(self.epoch),
            "batch_in_epoch": int(self.batch_in_epoch),
            "batch_counter": int(self.batch_counter),
            "completed": bool(self.completed),
            "layer_params": layer_params,
            "optimizer": optimizer_skeleton,
            "rng_state": _jsonify(self.rng_state),
            "history": self.history.to_dict(),
            "run_meta": _jsonify(self.run_meta),
        }
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        _atomic_write_npz(path, arrays)

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "TrainerCheckpoint":
        with np.load(npz_path(path)) as archive:
            if "__meta__" not in archive:
                raise ValueError(f"not a trainer checkpoint: {path}")
            meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
            if meta.get("format") != TRAINER_CHECKPOINT_FORMAT:
                raise ValueError(
                    f"not a trainer checkpoint: {path} "
                    f"(format {meta.get('format')!r})")
            model_weights = [
                {name: archive[f"model.layer{i}.{name}"] for name in names}
                for i, names in enumerate(meta["layer_params"])
            ]
            optimizer_state = _reinsert_arrays(meta["optimizer"], archive)
            epoch_order = (archive["epoch_order"]
                           if "epoch_order" in archive else None)
        return cls(
            model_weights=model_weights,
            optimizer_state=optimizer_state,
            rng_state=_dejsonify(meta["rng_state"]),
            epoch=int(meta["epoch"]),
            batch_in_epoch=int(meta["batch_in_epoch"]),
            batch_counter=int(meta["batch_counter"]),
            history=TrainingHistory.from_dict(meta["history"]),
            epoch_order=epoch_order,
            completed=bool(meta["completed"]),
            run_meta=_dejsonify(meta.get("run_meta", {})),
        )

    @staticmethod
    def peek_meta(path: str | pathlib.Path) -> dict:
        """Counters/flags only (no arrays decompressed beyond the blob) --
        cheap enough for a status endpoint to call per poll."""
        with np.load(npz_path(path)) as archive:
            if "__meta__" not in archive:
                raise ValueError(f"not a trainer checkpoint: {path}")
            meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        return {
            "epoch": int(meta.get("epoch", 0)),
            "batch_in_epoch": int(meta.get("batch_in_epoch", 0)),
            "batch_counter": int(meta.get("batch_counter", 0)),
            "completed": bool(meta.get("completed", False)),
        }
