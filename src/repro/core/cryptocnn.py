"""CryptoCNN: the convolutional instantiation of CryptoNN (Section III-E).

Identical to :class:`~repro.core.cryptonn.CryptoNNTrainer` except the
secure feed-forward step is the secure convolution of Algorithm 3: the
first layer must be :class:`repro.nn.conv.Conv2D` and the dataset must
have been window-encrypted for the same geometry.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CryptoNNConfig
from repro.core.cryptonn import _SecureTrainerBase
from repro.core.encdata import EncryptedImageDataset
from repro.core.entities import TrustedAuthority
from repro.core.secure_layers import SecureConvInput
from repro.matrix.parallel import SecureComputePool
from repro.nn.conv import Conv2D
from repro.nn.model import Sequential


class CryptoCNNTrainer(_SecureTrainerBase):
    """Secure training for CNNs whose first layer is a convolution."""

    def __init__(self, model: Sequential, authority: TrustedAuthority,
                 config: CryptoNNConfig | None = None,
                 loss: str = "cross_entropy",
                 pool: SecureComputePool | None = None):
        super().__init__(model, authority, config, loss, pool)
        first = model.layers[0]
        if not isinstance(first, Conv2D):
            raise TypeError(
                f"CryptoCNNTrainer needs a Conv2D first layer, got {first.name}"
            )
        self.secure_input = SecureConvInput(
            first, authority, self.config, self.counters,
            pool=self.compute_pool,
        )

    def _check_geometry(self, dataset: EncryptedImageDataset) -> None:
        conv = self.secure_input.conv
        if (dataset.filter_size, dataset.stride, dataset.padding) != (
            conv.filter_size, conv.stride, conv.padding
        ):
            raise ValueError(
                "dataset was window-encrypted for geometry "
                f"(f={dataset.filter_size}, s={dataset.stride}, "
                f"p={dataset.padding}) but the model's first layer uses "
                f"(f={conv.filter_size}, s={conv.stride}, p={conv.padding})"
            )

    def _secure_forward(self, dataset: EncryptedImageDataset,
                        indices: np.ndarray, training: bool) -> np.ndarray:
        self._check_geometry(dataset)
        batch = [dataset.images[i] for i in indices]
        return self.secure_input.forward(batch, indices, training=training)

    def _secure_backward(self, grad: np.ndarray) -> None:
        self.secure_input.backward(grad)
