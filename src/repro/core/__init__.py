"""The CryptoNN framework (paper Section III).

Ties the crypto substrate, the secure matrix/convolution schemes and the
NN library together into the paper's three-entity architecture:

* :mod:`repro.core.entities` -- TrustedAuthority / Client / Server;
* :mod:`repro.core.protocol` -- typed messages and traffic accounting;
* :mod:`repro.core.secure_layers` -- secure feed-forward input layers and
  secure back-propagation/evaluation losses;
* :mod:`repro.core.cryptonn` -- Algorithm 2, the general trainer for
  fully-connected models;
* :mod:`repro.core.cryptocnn` -- the CryptoCNN instantiation (Section
  III-E) with the secure convolution first layer.
"""

from repro.core.config import CryptoNNConfig
from repro.core.cryptocnn import CryptoCNNTrainer
from repro.core.cryptonn import CryptoNNTrainer
from repro.core.entities import Client, Server, TrustedAuthority
from repro.core.protocol import TrafficLog

__all__ = [
    "Client",
    "CryptoCNNTrainer",
    "CryptoNNConfig",
    "CryptoNNTrainer",
    "Server",
    "TrafficLog",
    "TrustedAuthority",
]
