"""Secure feed-forward and secure back-propagation/evaluation steps.

These classes implement the two insertions Algorithm 2 makes into normal
neural-network training (paper Fig. 1):

* **secure feed-forward** -- the computation between the encrypted input
  and the first hidden layer: :class:`SecureLinearInput` (dot product via
  FEIP, Section III-D) and :class:`SecureConvInput` (secure convolution
  via Algorithm 3, Section III-E1);
* **secure back-propagation / evaluation** -- the computation between the
  last hidden layer and the encrypted label:
  :class:`SecureSoftmaxCrossEntropy` (loss as the inner product
  ``-<y, log p>`` plus gradient ``P - Y`` via element-wise subtraction,
  Section III-E2) and :class:`SecureMSE` (the Section III-D quadratic
  cost).

Gradient of the first layer's weights
-------------------------------------
``dE/dW1 = delta1 . X^T`` needs the encrypted features.  The paper states
every label/input-adjacent computation reduces to the permitted function
set; the element-wise product is the member that applies here.  We request
FEBO multiplication keys for the feature ciphertexts, decrypt the scaled
features once per sample, and combine them with the plaintext deltas.
This stays inside F but *is* the direct-inference capability the paper
concedes for authorized decryptors (Section III-B remark); CryptoNN's
framework-level mitigation (random label mapping) protects the labels,
not the features.  See DESIGN.md "Threat model".
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import CryptoNNConfig
from repro.core.encdata import (
    DecryptionCounters,
    EncryptedImage,
    EncryptedLabel,
    EncryptedSample,
)
from repro.core.entities import TrustedAuthority
from repro.nn.activations import log_softmax, softmax
from repro.nn.conv import Conv2D, conv_out_dims, im2col
from repro.nn.layers import Dense
from repro.matrix.parallel import SecureComputePool, resolve_pool
from repro.mathutils.dlog import GLOBAL_SOLVER_CACHE, SolverCache
from repro.mathutils.encoding import FixedPointCodec
from repro.obs.tracing import GLOBAL_TRACER


class _SecureBase:
    """Shared plumbing: codec, solver cache, counters, authority handle.

    ``pool`` is the persistent compute pool shared by a training run;
    when None and ``config.workers`` is set, the process-wide pool for
    that worker count is used, so repeated batches never respawn worker
    processes.
    """

    def __init__(self, authority: TrustedAuthority, config: CryptoNNConfig,
                 counters: DecryptionCounters | None = None,
                 solver_cache: SolverCache | None = None,
                 pool: SecureComputePool | None = None):
        self.authority = authority
        self.config = config
        self.codec = FixedPointCodec(config.scale)
        self.counters = counters or DecryptionCounters()
        self._cache = solver_cache or GLOBAL_SOLVER_CACHE
        self._feip = authority.feip
        self._febo = authority.febo
        self._pool = resolve_pool(pool, config.workers)

    def _solver(self, bound: int):
        return self._cache.get(self._feip.group, bound)

    def _request_feip_keys(self, rows):
        """Key request honoring ``config.batch_key_requests``.

        Batched requests coalesce all rows into one envelope message --
        over the RPC transport this is one round trip instead of many.
        """
        if self.config.batch_key_requests:
            return self.authority.derive_feip_keys_batch(rows)
        return self.authority.derive_feip_keys(rows)

    def _request_febo_keys(self, requests):
        if self.config.batch_key_requests:
            return self.authority.derive_febo_keys_batch(requests)
        return self.authority.derive_febo_keys(requests)


class _FeatureReconstructor(_SecureBase):
    """Recovers scaled features from FEBO ciphertexts for gradient steps.

    Issues one multiplication key + decrypt per element (the identity
    multiplier keeps the op inside F while avoiding fixed-point loss on
    tiny gradient entries).  Results are cached per sample index when the
    config allows, because every epoch revisits every sample.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._feature_cache: dict[int, np.ndarray] = {}

    def _decrypt_elements(self, ciphertexts: Sequence, bound: int) -> list[int]:
        requests = [(ct.cmt, "*", 1) for ct in ciphertexts]
        with GLOBAL_TRACER.span("key-fetch", keys=len(requests)):
            keys = self._request_febo_keys(requests)
        self.counters.febo_keys_requested += len(keys)
        bpk = self.authority.febo_public_key()
        solver = self._cache.get(self._febo.group, bound)
        with GLOBAL_TRACER.span("decrypt-dlog", n=len(keys)):
            values = self._febo.decrypt_many(
                bpk, list(zip(keys, ciphertexts)), bound, solver=solver)
        self.counters.febo_decrypts += len(values)
        return values

    def reconstruct(self, index: int, ciphertexts: Sequence,
                    shape: tuple[int, ...]) -> np.ndarray:
        """Scaled-feature array for one sample, cached by dataset index."""
        if self.config.cache_reconstructed_features and index in self._feature_cache:
            return self._feature_cache[index]
        bound = int(self.config.max_abs_feature * self.config.scale) + 1
        values = self._decrypt_elements(list(ciphertexts), bound)
        array = np.array([v / self.config.scale for v in values],
                         dtype=np.float64).reshape(shape)
        if self.config.cache_reconstructed_features:
            self._feature_cache[index] = array
        return array

    def clear_cache(self) -> None:
        self._feature_cache.clear()


class SecureLinearInput(_FeatureReconstructor):
    """Secure feed-forward + gradient for a first :class:`Dense` layer.

    Forward computes ``Z1 = X @ W + b`` where ``X`` is encrypted: one FEIP
    key per hidden unit (a column of ``W``), one decrypt per (sample,
    unit) pair -- the transfer ``a = g(skf(W) . enc(X) + b)`` of Section
    III-A.
    """

    def __init__(self, dense: Dense, authority: TrustedAuthority,
                 config: CryptoNNConfig,
                 counters: DecryptionCounters | None = None,
                 solver_cache: SolverCache | None = None,
                 pool: SecureComputePool | None = None):
        super().__init__(authority, config, counters, solver_cache, pool)
        self.dense = dense
        self._last_batch: Sequence[EncryptedSample] | None = None
        self._last_indices: Sequence[int] | None = None

    def _encoded_weight_rows(self) -> list[list[int]]:
        """Columns of W, clipped and fixed-point encoded (one per unit)."""
        w = np.clip(self.dense.params["W"], -self.config.max_abs_weight,
                    self.config.max_abs_weight)
        return [
            [self.codec.encode(v) for v in w[:, unit]]
            for unit in range(w.shape[1])
        ]

    def forward(self, batch: Sequence[EncryptedSample],
                indices: Sequence[int] | None = None,
                training: bool = True) -> np.ndarray:
        """Return pre-activations ``Z1`` of shape (N, hidden)."""
        rows = self._encoded_weight_rows()
        with GLOBAL_TRACER.span("key-fetch", keys=len(rows)):
            keys = self._request_feip_keys(rows)
        self.counters.feip_keys_requested += len(keys)
        eta = self.dense.in_features
        mpk = self.authority.feip_public_key(eta)
        bound = self.config.dot_bound(eta)
        if self._pool is not None and batch:
            # one pooled dispatch decrypts the whole (sample, unit) grid
            with GLOBAL_TRACER.span("pool-dispatch",
                                    n=len(batch) * len(keys)):
                flat = self._pool.secure_dot(
                    self.authority.params, mpk,
                    [sample.features_ip for sample in batch], keys, bound,
                )
            self.counters.feip_decrypts += len(batch) * len(keys)
            z = self.codec.decode_array(flat.T, power=2)
        else:
            # batched per sample: all hidden units share the sample's
            # ciphertext bases, so decrypt_rows builds the window tables
            # and walks the dlog stride once per sample, not per unit
            solver = self._solver(bound)
            z = np.empty((len(batch), len(keys)), dtype=np.float64)
            with GLOBAL_TRACER.span("decrypt-dlog",
                                    n=len(batch) * len(keys)):
                for n, sample in enumerate(batch):
                    values = self._feip.decrypt_rows(
                        mpk, sample.features_ip, keys, bound, solver=solver)
                    z[n] = [self.codec.decode(v, power=2) for v in values]
                    self.counters.feip_decrypts += len(keys)
        z += self.dense.params["b"]
        if training:
            self._last_batch = batch
            self._last_indices = list(indices) if indices is not None \
                else list(range(len(batch)))
        return z

    def backward(self, grad_z: np.ndarray) -> None:
        """Fill the wrapped layer's W/b gradients from ``dL/dZ1``."""
        if self._last_batch is None or self._last_indices is None:
            raise RuntimeError("backward called before forward")
        x = np.stack([
            self.reconstruct(idx, sample.features_bo, (sample.n_features,))
            for idx, sample in zip(self._last_indices, self._last_batch)
        ])
        self.dense.grads["W"] = x.T @ grad_z
        self.dense.grads["b"] = grad_z.sum(axis=0)


class SecureConvInput(_FeatureReconstructor):
    """Secure feed-forward + gradient for a first :class:`Conv2D` layer.

    Forward is Algorithm 3: one FEIP key per filter, one decrypt per
    (window, filter) pair.  Backward reconstructs the scaled image via
    FEBO (cached) and reuses the plaintext im2col gradient math.
    """

    def __init__(self, conv: Conv2D, authority: TrustedAuthority,
                 config: CryptoNNConfig,
                 counters: DecryptionCounters | None = None,
                 solver_cache: SolverCache | None = None,
                 pool: SecureComputePool | None = None):
        super().__init__(authority, config, counters, solver_cache, pool)
        self.conv = conv
        self._last_batch: Sequence[EncryptedImage] | None = None
        self._last_indices: Sequence[int] | None = None
        self._last_out_dims: tuple[int, int] | None = None

    def _encoded_filter_rows(self) -> list[list[int]]:
        w = np.clip(self.conv.params["W"], -self.config.max_abs_weight,
                    self.config.max_abs_weight)
        return [
            [self.codec.encode(v) for v in w[f].ravel()]
            for f in range(w.shape[0])
        ]

    def forward(self, batch: Sequence[EncryptedImage],
                indices: Sequence[int] | None = None,
                training: bool = True) -> np.ndarray:
        """Return pre-activations of shape (N, F, out_h, out_w)."""
        rows = self._encoded_filter_rows()
        keys = self._request_feip_keys(rows)
        self.counters.feip_keys_requested += len(keys)
        window_length = (self.conv.in_channels
                         * self.conv.filter_size * self.conv.filter_size)
        mpk = self.authority.feip_public_key(window_length)
        bound = self.config.dot_bound(window_length)
        if self._pool is not None and batch:
            out = self._forward_parallel(batch, keys, mpk, bound)
        else:
            out = self._forward_serial(batch, keys, mpk, bound)
        out += self.conv.params["b"][np.newaxis, :, np.newaxis, np.newaxis]
        if training:
            self._last_batch = batch
            self._last_indices = list(indices) if indices is not None \
                else list(range(len(batch)))
            self._last_out_dims = out.shape[2:]
        return out

    def _forward_serial(self, batch, keys, mpk, bound) -> np.ndarray:
        solver = self._solver(bound)
        outputs = []
        for image in batch:
            out_h, out_w = image.windows.out_shape
            z = np.empty((len(keys), out_h, out_w), dtype=np.float64)
            for pos, window_ct in enumerate(image.windows.windows):
                # whole filter bank against one window ciphertext: the
                # patch loop shares base tables across all filters
                values = self._feip.decrypt_rows(mpk, window_ct, keys,
                                                 bound, solver=solver)
                z[:, pos // out_w, pos % out_w] = [
                    self.codec.decode(v, power=2) for v in values
                ]
                self.counters.feip_decrypts += len(keys)
            outputs.append(z)
        return np.stack(outputs)

    def _forward_parallel(self, batch, keys, mpk, bound) -> np.ndarray:
        """Batch-wide pooled decryption (paper's 'P' curves).

        All windows of all images go through the persistent worker pool,
        so executor startup is paid once per training run rather than
        per batch (let alone per image).
        """
        out_h, out_w = batch[0].windows.out_shape
        all_windows = [w for image in batch for w in image.windows.windows]
        flat = self._pool.secure_convolve(
            self.authority.params, mpk, all_windows,
            (len(batch) * out_h, out_w), keys, bound,
        )
        self.counters.feip_decrypts += len(all_windows) * len(keys)
        flat_rows = flat.reshape(len(keys), len(batch), out_h, out_w)
        return self.codec.decode_array(flat_rows, power=2).transpose(1, 0, 2, 3)

    def backward(self, grad_out: np.ndarray) -> None:
        """Fill the wrapped conv layer's W/b gradients from dL/dZ."""
        if self._last_batch is None or self._last_indices is None:
            raise RuntimeError("backward called before forward")
        images = np.stack([
            self.reconstruct(idx, image.pixels_bo.ravel(), image.image_shape)
            for idx, image in zip(self._last_indices, self._last_batch)
        ])
        cols, _ = im2col(images, self.conv.filter_size, self.conv.stride,
                         self.conv.padding)
        grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(
            -1, self.conv.out_channels
        )
        self.conv.grads["W"] = (grad_flat.T @ cols).reshape(
            self.conv.params["W"].shape
        )
        self.conv.grads["b"] = grad_flat.sum(axis=0)


def _decrypt_label_subtractions(layer: _SecureBase, values: np.ndarray,
                                labels: Sequence[EncryptedLabel]
                                ) -> np.ndarray:
    """Decrypt ``Y - values`` element-wise against encrypted one-hot labels.

    Shared by both secure losses (cross-entropy gradient ``P - Y`` and
    the MSE residuals).  Keys are derived in one batched request, and
    the decrypt loop routes through the layer's persistent pool when it
    has one.
    """
    n, num_classes = values.shape
    bpk = layer.authority.febo_public_key()
    bound = layer.config.label_sub_bound()
    requests = [
        (labels[i].onehot_bo[c].cmt, "-", layer.codec.encode(values[i, c]))
        for i in range(n) for c in range(num_classes)
    ]
    with GLOBAL_TRACER.span("key-fetch", keys=len(requests)):
        keys = layer._request_febo_keys(requests)
    layer.counters.febo_keys_requested += len(keys)
    layer.counters.febo_decrypts += len(keys)
    if layer._pool is not None and n:
        tasks = [
            (i, c, labels[i].onehot_bo[c], keys[i * num_classes + c])
            for i in range(n) for c in range(num_classes)
        ]
        with GLOBAL_TRACER.span("pool-dispatch", n=len(tasks)):
            grid = layer._pool.secure_elementwise(
                layer.authority.params, bpk, tasks, (n, num_classes), bound)
        return layer.codec.decode_array(grid)
    solver = layer._cache.get(layer._febo.group, bound)
    with GLOBAL_TRACER.span("decrypt-dlog", n=len(keys)):
        values = layer._febo.decrypt_many(
            bpk,
            [(keys[i * num_classes + c], labels[i].onehot_bo[c])
             for i in range(n) for c in range(num_classes)],
            bound, solver=solver,
        )
    out = np.empty((n, num_classes), dtype=np.float64)
    for i in range(n):
        for c in range(num_classes):
            out[i, c] = layer.codec.decode(values[i * num_classes + c])
    return out


class SecureSoftmaxCrossEntropy(_SecureBase):
    """Secure evaluation at the output layer (paper Section III-E2).

    * loss: ``L = -<y, log p>`` -- one FEIP decrypt per sample against a
      key derived for the (encoded) log-probability vector;
    * gradient: ``dL/dA = P - Y`` -- one FEBO subtraction decrypt per
      (sample, class), negated, divided by N in plaintext.
    """

    def __init__(self, authority: TrustedAuthority, config: CryptoNNConfig,
                 counters: DecryptionCounters | None = None,
                 solver_cache: SolverCache | None = None,
                 pool: SecureComputePool | None = None):
        super().__init__(authority, config, counters, solver_cache, pool)
        self._probs: np.ndarray | None = None
        # log p is clamped so its fixed-point encoding stays within the
        # loss dlog bound (p ~ 0 would otherwise explode the search window)
        self.min_log_prob = -30.0

    def forward(self, logits: np.ndarray,
                labels: Sequence[EncryptedLabel]) -> float:
        if logits.shape[0] != len(labels):
            raise ValueError("batch size mismatch between logits and labels")
        num_classes = logits.shape[1]
        probs = softmax(logits, axis=1)
        log_p = np.maximum(log_softmax(logits, axis=1), self.min_log_prob)
        mpk = self.authority.feip_public_key(num_classes)
        bound = self.config.loss_bound(-self.min_log_prob + 1.0)
        solver = self._solver(bound)
        encoded_rows = [[self.codec.encode(v) for v in log_p[n]]
                        for n in range(logits.shape[0])]
        with GLOBAL_TRACER.span("key-fetch", keys=len(encoded_rows)):
            if self.config.batch_key_requests:
                # all per-sample log-p keys in one envelope (one round
                # trip)
                keys = self._request_feip_keys(encoded_rows)
            else:
                # one request per sample, matching the unbatched
                # accounting
                keys = [self.authority.derive_feip_keys([row])[0]
                        for row in encoded_rows]
        self.counters.feip_keys_requested += len(keys)
        # bases differ per sample (each label has its own ciphertext), so
        # only the bounded dlogs batch: one shared giant-step walk
        with GLOBAL_TRACER.span("decrypt-dlog", n=len(keys)):
            elements = [self._feip.decrypt_raw(mpk, label.onehot_ip, key)
                        for label, key in zip(labels, keys)]
            self.counters.feip_decrypts += len(elements)
            total = -sum(self.codec.decode(v, power=2)
                         for v in solver.solve_many(elements))
        self._probs = probs
        return total / logits.shape[0]

    def backward(self, labels: Sequence[EncryptedLabel]) -> np.ndarray:
        """Return ``(P - Y) / N`` recovered through FEBO subtractions."""
        if self._probs is None:
            raise RuntimeError("backward called before forward")
        probs = self._probs
        n = probs.shape[0]
        y_minus_p = _decrypt_label_subtractions(self, probs, labels)
        return -y_minus_p / n

    @property
    def probabilities(self) -> np.ndarray:
        if self._probs is None:
            raise RuntimeError("no forward pass yet")
        return self._probs


class SecureMSE(_SecureBase):
    """Secure quadratic cost (paper Section III-D).

    The server recovers the residuals ``Yhat - Y`` through FEBO
    subtraction -- exactly the "compute Yhat - Y first" step of the
    paper's walkthrough -- then forms both the loss and the gradient from
    them in plaintext.
    """

    def __init__(self, authority: TrustedAuthority, config: CryptoNNConfig,
                 counters: DecryptionCounters | None = None,
                 solver_cache: SolverCache | None = None,
                 pool: SecureComputePool | None = None):
        super().__init__(authority, config, counters, solver_cache, pool)
        self._residuals: np.ndarray | None = None

    def forward(self, predictions: np.ndarray,
                labels: Sequence[EncryptedLabel]) -> float:
        if predictions.shape[0] != len(labels):
            raise ValueError("batch size mismatch")
        n = predictions.shape[0]
        residuals = -_decrypt_label_subtractions(self, predictions, labels)
        self._residuals = residuals  # yhat - y
        return float(0.5 * np.sum(residuals ** 2) / n)

    def backward(self, labels: Sequence[EncryptedLabel]) -> np.ndarray:
        if self._residuals is None:
            raise RuntimeError("backward called before forward")
        return self._residuals / self._residuals.shape[0]
