"""The paper's Table I: comparison of privacy-preserving ML approaches.

A static taxonomy, regenerated programmatically so the benchmark harness
covers *every* table in the paper (see DESIGN.md experiment index).
"""

from __future__ import annotations

from dataclasses import dataclass

FULL = "full"        # filled circle: strong crypto guarantee
PARTIAL = "partial"  # half circle: secure-protocol based
MILD = "mild"        # open circle: e.g. differential privacy

SUPPORTED = "yes"      # filled bullet
UNSUPPORTED = "no"     # open bullet


@dataclass(frozen=True)
class ApproachRow:
    """One row of Table I."""

    name: str
    training: str
    prediction: str
    privacy: str
    ml_model: str
    approach: str


TABLE_I: tuple[ApproachRow, ...] = (
    ApproachRow("CryptoML [4]", SUPPORTED, SUPPORTED, MILD, "General",
                "Delegation"),
    ApproachRow("Shokri-Shmatikov [7]", SUPPORTED, UNSUPPORTED, MILD,
                "Deep Learning", "Distributed"),
    ApproachRow("Abadi et al. [8]", SUPPORTED, UNSUPPORTED, MILD,
                "Deep Learning", "Differential Privacy"),
    ApproachRow("SecureML [6]", SUPPORTED, SUPPORTED, PARTIAL, "General",
                "Secure Protocol (SMC)"),
    ApproachRow("DeepSecure [5]", SUPPORTED, SUPPORTED, PARTIAL,
                "Deep Learning", "Secure Protocol (Garbled Circuits)"),
    ApproachRow("CryptoNets [3] et al.", UNSUPPORTED, SUPPORTED, FULL,
                "Covers All", "Homomorphic Encryption (HE)"),
    ApproachRow("Bost et al. [2]", SUPPORTED, SUPPORTED, FULL, "Limited ML",
                "HE + Secure Protocol"),
    ApproachRow("CryptoNN (this work)", SUPPORTED, SUPPORTED, FULL,
                "Neural Networks", "Functional Encryption"),
)


def format_table_i() -> str:
    """Render Table I as aligned plain text."""
    headers = ("Proposed Work", "Training", "Prediction", "Privacy",
               "ML Model", "Approach")
    rows = [
        (r.name, r.training, r.prediction, r.privacy, r.ml_model, r.approach)
        for r in TABLE_I
    ]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in rows))
        for c in range(len(headers))
    ]
    def fmt(cells: tuple[str, ...]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    lines = [fmt(headers), fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def cryptonn_claims() -> ApproachRow:
    """The row the paper adds; asserted against in the tests."""
    return TABLE_I[-1]
