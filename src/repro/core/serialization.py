"""Wire serialization for keys and ciphertexts.

Three purposes:

* persistence / transport of crypto objects as JSON-able dicts;
* **byte-accurate traffic accounting** for the communication-overhead
  experiment (paper Section IV-B2): group elements are serialized as
  fixed-width big-endian integers sized by the group modulus, exponents by
  the subgroup order, so message sizes match what a real deployment would
  send;
* **binary packing** for the networked runtime (:mod:`repro.rpc`): the
  ``pack_* / unpack_*`` codecs produce exactly the bytes the wire-size
  functions account for, so per-connection traffic logs and the Section
  IV-B2 formula agree with what actually crosses the socket.

Batched key-request/response *envelopes* coalesce the per-iteration
k x n x |w| key requests into one framed message (an 8-byte count/eta
header plus the concatenated per-request payloads).  The same envelopes
are used by the in-process batching path, the RPC services, and any
on-disk captures, so all three account identically.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.fe.keys import (
    FeboCiphertext,
    FeboFunctionKey,
    FeboPublicKey,
    FeipCiphertext,
    FeipFunctionKey,
    FeipPublicKey,
)
from repro.mathutils.group import GroupParams
from repro.mathutils.modarith import jacobi_symbol

#: Fixed overhead of a batched key-request/response envelope: a 4-byte
#: item count plus a 4-byte vector-length / flags field.
BATCH_HEADER_BYTES = 8


def validate_subgroup_element(value: int, params: GroupParams) -> None:
    """Reject a wire integer that is not a member of the QR subgroup.

    For a safe prime ``p = 2q + 1`` the order-``q`` subgroup is exactly
    the set of quadratic residues, so membership reduces to a Jacobi
    symbol -- O(log^2) instead of the O(log^3) ``pow(x, q, p)`` test --
    cheap enough to run on every element of an untrusted ciphertext
    upload.  An element outside the subgroup would make discrete-log
    recovery fail (or, worse, silently decode garbage into the training
    loop), so ingestion rejects it at the unpack boundary.

    Raises:
        ValueError: when ``value`` is out of range or a non-residue.
    """
    if not 0 < value < params.p:
        raise ValueError(
            f"group element {value} outside (0, p) for modulus of "
            f"{params.p.bit_length()} bits")
    if jacobi_symbol(value, params.p) != 1:
        raise ValueError(
            "group element is not in the prime-order subgroup "
            "(quadratic non-residue)")


def element_size_bytes(params: GroupParams) -> int:
    """Bytes needed for one group element (member of Z_p)."""
    return (params.p.bit_length() + 7) // 8


def exponent_size_bytes(params: GroupParams) -> int:
    """Bytes needed for one exponent (member of Z_q)."""
    return (params.q.bit_length() + 7) // 8


# -- structural (de)serialization ------------------------------------------------

def feip_ciphertext_to_dict(ct: FeipCiphertext) -> dict[str, Any]:
    return {"ct0": ct.ct0, "ct": list(ct.ct)}


def feip_ciphertext_from_dict(data: dict[str, Any]) -> FeipCiphertext:
    return FeipCiphertext(ct0=int(data["ct0"]),
                          ct=tuple(int(v) for v in data["ct"]))


def feip_key_to_dict(key: FeipFunctionKey) -> dict[str, Any]:
    # repro: allow[key-serialization] -- derived function key: sk here
    # is the per-query key the authority hands out, not master material
    return {"y": list(key.y), "sk": key.sk}


def feip_key_from_dict(data: dict[str, Any]) -> FeipFunctionKey:
    return FeipFunctionKey(y=tuple(int(v) for v in data["y"]),
                           sk=int(data["sk"]))


def febo_ciphertext_to_dict(ct: FeboCiphertext) -> dict[str, Any]:
    return {"cmt": ct.cmt, "ct": ct.ct}


def febo_ciphertext_from_dict(data: dict[str, Any]) -> FeboCiphertext:
    return FeboCiphertext(cmt=int(data["cmt"]), ct=int(data["ct"]))


def febo_key_to_dict(key: FeboFunctionKey) -> dict[str, Any]:
    # repro: allow[key-serialization] -- derived function key payload
    return {"op": key.op, "y": key.y, "sk": key.sk, "cmt": key.cmt}


def febo_key_from_dict(data: dict[str, Any]) -> FeboFunctionKey:
    return FeboFunctionKey(op=str(data["op"]), y=int(data["y"]),
                           sk=int(data["sk"]), cmt=int(data.get("cmt", 0)))


def to_json(obj: dict[str, Any]) -> str:
    """Canonical JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# -- wire-size accounting -------------------------------------------------------

def feip_ciphertext_wire_size(ct: FeipCiphertext, params: GroupParams) -> int:
    """ct0 plus eta elements."""
    return (1 + ct.eta) * element_size_bytes(params)


def feip_key_wire_size(key: FeipFunctionKey, params: GroupParams,
                       weight_bytes: int = 8) -> int:
    """One exponent (sk) plus the weight vector it binds.

    ``weight_bytes`` is |w| in the paper's k x n x |w| formula -- the
    fixed-point weights are small integers, 8 bytes is generous.
    """
    return exponent_size_bytes(params) + len(key.y) * weight_bytes


def feip_key_request_wire_size(vector_length: int, params: GroupParams,
                               weight_bytes: int = 8) -> int:
    """Server -> authority: one weight vector of length n (n x |w|)."""
    return vector_length * weight_bytes


def febo_ciphertext_wire_size(params: GroupParams) -> int:
    """Commitment plus ciphertext element."""
    return 2 * element_size_bytes(params)


def febo_key_wire_size(params: GroupParams, weight_bytes: int = 8) -> int:
    """One group element (sk) plus op tag plus operand."""
    return element_size_bytes(params) + 1 + weight_bytes


def febo_key_request_wire_size(params: GroupParams,
                               weight_bytes: int = 8) -> int:
    """Server -> authority: commitment + op + operand."""
    return element_size_bytes(params) + 1 + weight_bytes


def feip_key_batch_request_wire_size(n_rows: int, vector_length: int,
                                     params: GroupParams,
                                     weight_bytes: int = 8) -> int:
    """One framed envelope carrying ``n_rows`` weight rows."""
    return BATCH_HEADER_BYTES + n_rows * feip_key_request_wire_size(
        vector_length, params, weight_bytes)


def feip_key_batch_response_wire_size(n_keys: int, vector_length: int,
                                      params: GroupParams,
                                      weight_bytes: int = 8) -> int:
    """One framed envelope carrying ``n_keys`` function keys."""
    return BATCH_HEADER_BYTES + n_keys * (
        exponent_size_bytes(params) + vector_length * weight_bytes)


def febo_key_batch_request_wire_size(n_requests: int, params: GroupParams,
                                     weight_bytes: int = 8) -> int:
    return BATCH_HEADER_BYTES + n_requests * febo_key_request_wire_size(
        params, weight_bytes)


def febo_key_batch_response_wire_size(n_keys: int, params: GroupParams,
                                      weight_bytes: int = 8) -> int:
    return BATCH_HEADER_BYTES + n_keys * febo_key_wire_size(
        params, weight_bytes)


def encrypted_sample_wire_size(n_features: int, params: GroupParams) -> int:
    """One tabular sample: FEIP vector ct plus per-feature FEBO cts."""
    return ((1 + n_features) * element_size_bytes(params)
            + n_features * febo_ciphertext_wire_size(params))


def encrypted_label_wire_size(num_classes: int, params: GroupParams) -> int:
    """One one-hot label: FEIP vector ct plus per-class FEBO cts."""
    return ((1 + num_classes) * element_size_bytes(params)
            + num_classes * febo_ciphertext_wire_size(params))


def encrypted_tabular_wire_size(n_samples: int, n_features: int,
                                num_classes: int,
                                params: GroupParams) -> int:
    """Full client upload (paper: the one-time encrypted-data transfer)."""
    return n_samples * (encrypted_sample_wire_size(n_features, params)
                        + encrypted_label_wire_size(num_classes, params))


# -- group params / public keys -------------------------------------------------

def group_params_to_dict(params: GroupParams) -> dict[str, Any]:
    return {"p": params.p, "q": params.q, "g": params.g}


def group_params_from_dict(data: dict[str, Any]) -> GroupParams:
    return GroupParams(p=int(data["p"]), q=int(data["q"]), g=int(data["g"]))


def feip_public_key_to_dict(mpk: FeipPublicKey) -> dict[str, Any]:
    return {"params": group_params_to_dict(mpk.params), "h": list(mpk.h)}


def feip_public_key_from_dict(data: dict[str, Any]) -> FeipPublicKey:
    return FeipPublicKey(params=group_params_from_dict(data["params"]),
                         h=tuple(int(v) for v in data["h"]))


def febo_public_key_to_dict(mpk: FeboPublicKey) -> dict[str, Any]:
    return {"params": group_params_to_dict(mpk.params), "h": mpk.h}


def febo_public_key_from_dict(data: dict[str, Any]) -> FeboPublicKey:
    return FeboPublicKey(params=group_params_from_dict(data["params"]),
                         h=int(data["h"]))


# -- binary primitives ----------------------------------------------------------

def pack_uint(value: int, width: int) -> bytes:
    """Fixed-width unsigned big-endian integer (raises on overflow)."""
    return int(value).to_bytes(width, "big")


def unpack_uint(data: bytes) -> int:
    return int.from_bytes(data, "big")


def pack_sint(value: int, width: int) -> bytes:
    """Fixed-width signed (two's complement) big-endian integer."""
    return int(value).to_bytes(width, "big", signed=True)


def unpack_sint(data: bytes) -> int:
    return int.from_bytes(data, "big", signed=True)


def pack_element(value: int, params: GroupParams) -> bytes:
    return pack_uint(value, element_size_bytes(params))


def pack_exponent(value: int, params: GroupParams) -> bytes:
    return pack_uint(value, exponent_size_bytes(params))


def _chunks(data: bytes, width: int) -> list[bytes]:
    if width <= 0 or len(data) % width:
        raise ValueError(
            f"payload of {len(data)} bytes is not a multiple of {width}")
    return [data[i:i + width] for i in range(0, len(data), width)]


# -- binary public keys / ciphertexts -------------------------------------------

def pack_feip_public_key(mpk: FeipPublicKey) -> bytes:
    """``mpk = (g, h_1..h_eta)`` as ``(1 + eta)`` fixed-width elements."""
    params = mpk.params
    return pack_element(params.g, params) + b"".join(
        pack_element(h, params) for h in mpk.h)


def unpack_feip_public_key(data: bytes, params: GroupParams) -> FeipPublicKey:
    elements = [unpack_uint(c) for c in _chunks(data, element_size_bytes(params))]
    if not elements:
        raise ValueError("empty FEIP public key payload")
    return FeipPublicKey(params=params, h=tuple(elements[1:]))


def pack_febo_public_key(mpk: FeboPublicKey) -> bytes:
    """``mpk = (g, h)`` as two fixed-width elements."""
    return pack_element(mpk.params.g, mpk.params) + pack_element(mpk.h, mpk.params)


def unpack_febo_public_key(data: bytes, params: GroupParams) -> FeboPublicKey:
    elements = [unpack_uint(c) for c in _chunks(data, element_size_bytes(params))]
    if len(elements) != 2:
        raise ValueError("FEBO public key payload must hold exactly 2 elements")
    return FeboPublicKey(params=params, h=elements[1])


def pack_feip_ciphertext(ct: FeipCiphertext, params: GroupParams) -> bytes:
    """Exactly :func:`feip_ciphertext_wire_size` bytes."""
    return pack_element(ct.ct0, params) + b"".join(
        pack_element(c, params) for c in ct.ct)


def unpack_feip_ciphertext(data: bytes, params: GroupParams, *,
                           validate: bool = False) -> FeipCiphertext:
    elements = [unpack_uint(c) for c in _chunks(data, element_size_bytes(params))]
    if not elements:
        raise ValueError("empty FEIP ciphertext payload")
    if validate:
        for element in elements:
            validate_subgroup_element(element, params)
    return FeipCiphertext(ct0=elements[0], ct=tuple(elements[1:]))


def pack_febo_ciphertext(ct: FeboCiphertext, params: GroupParams) -> bytes:
    """Exactly :func:`febo_ciphertext_wire_size` bytes."""
    return pack_element(ct.cmt, params) + pack_element(ct.ct, params)


def unpack_febo_ciphertext(data: bytes, params: GroupParams, *,
                           validate: bool = False) -> FeboCiphertext:
    elements = [unpack_uint(c) for c in _chunks(data, element_size_bytes(params))]
    if len(elements) != 2:
        raise ValueError("FEBO ciphertext payload must hold exactly 2 elements")
    if validate:
        for element in elements:
            validate_subgroup_element(element, params)
    return FeboCiphertext(cmt=elements[0], ct=elements[1])


# -- batched key-request/response envelopes -------------------------------------

def pack_batch_header(count: int, vector_length: int = 0) -> bytes:
    return pack_uint(count, 4) + pack_uint(vector_length, 4)


def unpack_batch_header(data: bytes) -> tuple[int, int]:
    if len(data) < BATCH_HEADER_BYTES:
        raise ValueError("batch envelope shorter than its header")
    return unpack_uint(data[:4]), unpack_uint(data[4:8])


def pack_feip_key_rows(rows: Sequence[Sequence[int]],
                       weight_bytes: int = 8) -> bytes:
    """Concatenated signed weight rows (``n_rows * eta * |w|`` bytes)."""
    return b"".join(pack_sint(v, weight_bytes) for row in rows for v in row)


def unpack_feip_key_rows(data: bytes, count: int, eta: int,
                         weight_bytes: int = 8) -> list[list[int]]:
    values = [unpack_sint(c) for c in _chunks(data, weight_bytes)]
    if len(values) != count * eta:
        raise ValueError(
            f"expected {count}x{eta} weights, payload holds {len(values)}")
    return [values[i * eta:(i + 1) * eta] for i in range(count)]


def pack_feip_key_batch_request(rows: Sequence[Sequence[int]],
                                weight_bytes: int = 8) -> bytes:
    eta = len(rows[0]) if rows else 0
    return pack_batch_header(len(rows), eta) + pack_feip_key_rows(
        rows, weight_bytes)


def unpack_feip_key_batch_request(data: bytes,
                                  weight_bytes: int = 8) -> list[list[int]]:
    count, eta = unpack_batch_header(data)
    return unpack_feip_key_rows(data[BATCH_HEADER_BYTES:], count, eta,
                                weight_bytes)


def pack_feip_keys(keys: Sequence[FeipFunctionKey], params: GroupParams,
                   weight_bytes: int = 8) -> bytes:
    """Per key: the exponent ``sk`` plus the bound weight vector ``y``."""
    return b"".join(
        # repro: allow[key-serialization] -- derived function keys are
        # the key-response wire payload (paper Sec. III protocol)
        pack_exponent(key.sk, params)
        + b"".join(pack_sint(v, weight_bytes) for v in key.y)
        for key in keys
    )


def unpack_feip_keys(data: bytes, count: int, eta: int, params: GroupParams,
                     weight_bytes: int = 8) -> list[FeipFunctionKey]:
    stride = exponent_size_bytes(params) + eta * weight_bytes
    keys = []
    for chunk in _chunks(data, stride):
        sk = unpack_uint(chunk[:exponent_size_bytes(params)])
        y = tuple(unpack_sint(c)
                  for c in _chunks(chunk[exponent_size_bytes(params):],
                                   weight_bytes))
        keys.append(FeipFunctionKey(y=y, sk=sk))
    if len(keys) != count:
        raise ValueError(f"expected {count} FEIP keys, payload holds {len(keys)}")
    return keys


def pack_feip_key_batch_response(keys: Sequence[FeipFunctionKey],
                                 params: GroupParams,
                                 weight_bytes: int = 8) -> bytes:
    eta = len(keys[0].y) if keys else 0
    return pack_batch_header(len(keys), eta) + pack_feip_keys(
        keys, params, weight_bytes)


def unpack_feip_key_batch_response(data: bytes, params: GroupParams,
                                   weight_bytes: int = 8
                                   ) -> list[FeipFunctionKey]:
    count, eta = unpack_batch_header(data)
    return unpack_feip_keys(data[BATCH_HEADER_BYTES:], count, eta, params,
                            weight_bytes)


def _pack_op(op: str) -> bytes:
    encoded = op.encode("ascii")
    if len(encoded) != 1:
        raise ValueError(f"operation tag must be one byte, got {op!r}")
    return encoded


def pack_febo_requests(requests: Sequence[tuple[int, str, int]],
                       params: GroupParams, weight_bytes: int = 8) -> bytes:
    """Per request: commitment element + 1-byte op tag + signed operand."""
    return b"".join(
        pack_element(cmt, params) + _pack_op(op) + pack_sint(y, weight_bytes)
        for cmt, op, y in requests
    )


def unpack_febo_requests(data: bytes, count: int, params: GroupParams,
                         weight_bytes: int = 8) -> list[tuple[int, str, int]]:
    stride = febo_key_request_wire_size(params, weight_bytes)
    elem = element_size_bytes(params)
    requests = []
    for chunk in _chunks(data, stride):
        requests.append((
            unpack_uint(chunk[:elem]),
            chunk[elem:elem + 1].decode("ascii"),
            unpack_sint(chunk[elem + 1:]),
        ))
    if len(requests) != count:
        raise ValueError(
            f"expected {count} FEBO requests, payload holds {len(requests)}")
    return requests


def pack_febo_key_batch_request(requests: Sequence[tuple[int, str, int]],
                                params: GroupParams,
                                weight_bytes: int = 8) -> bytes:
    return pack_batch_header(len(requests)) + pack_febo_requests(
        requests, params, weight_bytes)


def unpack_febo_key_batch_request(data: bytes, params: GroupParams,
                                  weight_bytes: int = 8
                                  ) -> list[tuple[int, str, int]]:
    count, _ = unpack_batch_header(data)
    return unpack_febo_requests(data[BATCH_HEADER_BYTES:], count, params,
                                weight_bytes)


def pack_febo_keys(keys: Sequence[FeboFunctionKey], params: GroupParams,
                   weight_bytes: int = 8) -> bytes:
    """Per key: ``sk`` element + 1-byte op tag + signed operand.

    The per-ciphertext commitment is *not* shipped back -- the requester
    already knows which commitment each key answers (responses preserve
    request order) and re-attaches it locally.
    """
    return b"".join(
        # repro: allow[key-serialization] -- derived function keys are
        # the key-response wire payload (paper Sec. III protocol)
        pack_element(key.sk, params) + _pack_op(key.op)
        + pack_sint(key.y, weight_bytes)
        for key in keys
    )


def unpack_febo_keys(data: bytes, count: int, params: GroupParams,
                     weight_bytes: int = 8) -> list[FeboFunctionKey]:
    stride = febo_key_wire_size(params, weight_bytes)
    elem = element_size_bytes(params)
    keys = []
    for chunk in _chunks(data, stride):
        keys.append(FeboFunctionKey(
            op=chunk[elem:elem + 1].decode("ascii"),
            y=unpack_sint(chunk[elem + 1:]),
            sk=unpack_uint(chunk[:elem]),
        ))
    if len(keys) != count:
        raise ValueError(f"expected {count} FEBO keys, payload holds {len(keys)}")
    return keys


def pack_febo_key_batch_response(keys: Sequence[FeboFunctionKey],
                                 params: GroupParams,
                                 weight_bytes: int = 8) -> bytes:
    return pack_batch_header(len(keys)) + pack_febo_keys(
        keys, params, weight_bytes)


def unpack_febo_key_batch_response(data: bytes, params: GroupParams,
                                   weight_bytes: int = 8
                                   ) -> list[FeboFunctionKey]:
    count, _ = unpack_batch_header(data)
    return unpack_febo_keys(data[BATCH_HEADER_BYTES:], count, params,
                            weight_bytes)
