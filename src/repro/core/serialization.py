"""Wire serialization for keys and ciphertexts.

Two purposes:

* persistence / transport of crypto objects as JSON-able dicts;
* **byte-accurate traffic accounting** for the communication-overhead
  experiment (paper Section IV-B2): group elements are serialized as
  fixed-width big-endian integers sized by the group modulus, exponents by
  the subgroup order, so message sizes match what a real deployment would
  send.
"""

from __future__ import annotations

import json
from typing import Any

from repro.fe.keys import (
    FeboCiphertext,
    FeboFunctionKey,
    FeipCiphertext,
    FeipFunctionKey,
)
from repro.mathutils.group import GroupParams


def element_size_bytes(params: GroupParams) -> int:
    """Bytes needed for one group element (member of Z_p)."""
    return (params.p.bit_length() + 7) // 8


def exponent_size_bytes(params: GroupParams) -> int:
    """Bytes needed for one exponent (member of Z_q)."""
    return (params.q.bit_length() + 7) // 8


# -- structural (de)serialization ------------------------------------------------

def feip_ciphertext_to_dict(ct: FeipCiphertext) -> dict[str, Any]:
    return {"ct0": ct.ct0, "ct": list(ct.ct)}


def feip_ciphertext_from_dict(data: dict[str, Any]) -> FeipCiphertext:
    return FeipCiphertext(ct0=int(data["ct0"]),
                          ct=tuple(int(v) for v in data["ct"]))


def feip_key_to_dict(key: FeipFunctionKey) -> dict[str, Any]:
    return {"y": list(key.y), "sk": key.sk}


def feip_key_from_dict(data: dict[str, Any]) -> FeipFunctionKey:
    return FeipFunctionKey(y=tuple(int(v) for v in data["y"]),
                           sk=int(data["sk"]))


def febo_ciphertext_to_dict(ct: FeboCiphertext) -> dict[str, Any]:
    return {"cmt": ct.cmt, "ct": ct.ct}


def febo_ciphertext_from_dict(data: dict[str, Any]) -> FeboCiphertext:
    return FeboCiphertext(cmt=int(data["cmt"]), ct=int(data["ct"]))


def febo_key_to_dict(key: FeboFunctionKey) -> dict[str, Any]:
    return {"op": key.op, "y": key.y, "sk": key.sk, "cmt": key.cmt}


def febo_key_from_dict(data: dict[str, Any]) -> FeboFunctionKey:
    return FeboFunctionKey(op=str(data["op"]), y=int(data["y"]),
                           sk=int(data["sk"]), cmt=int(data.get("cmt", 0)))


def to_json(obj: dict[str, Any]) -> str:
    """Canonical JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# -- wire-size accounting -------------------------------------------------------

def feip_ciphertext_wire_size(ct: FeipCiphertext, params: GroupParams) -> int:
    """ct0 plus eta elements."""
    return (1 + ct.eta) * element_size_bytes(params)


def feip_key_wire_size(key: FeipFunctionKey, params: GroupParams,
                       weight_bytes: int = 8) -> int:
    """One exponent (sk) plus the weight vector it binds.

    ``weight_bytes`` is |w| in the paper's k x n x |w| formula -- the
    fixed-point weights are small integers, 8 bytes is generous.
    """
    return exponent_size_bytes(params) + len(key.y) * weight_bytes


def feip_key_request_wire_size(vector_length: int, params: GroupParams,
                               weight_bytes: int = 8) -> int:
    """Server -> authority: one weight vector of length n (n x |w|)."""
    return vector_length * weight_bytes


def febo_ciphertext_wire_size(params: GroupParams) -> int:
    """Commitment plus ciphertext element."""
    return 2 * element_size_bytes(params)


def febo_key_wire_size(params: GroupParams, weight_bytes: int = 8) -> int:
    """One group element (sk) plus op tag plus operand."""
    return element_size_bytes(params) + 1 + weight_bytes


def febo_key_request_wire_size(params: GroupParams,
                               weight_bytes: int = 8) -> int:
    """Server -> authority: commitment + op + operand."""
    return element_size_bytes(params) + 1 + weight_bytes
