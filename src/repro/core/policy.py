"""Authority-side key-release policy.

The paper's security analysis assumes the server is "not an active
attacker" (Section IV-A) -- but the authority is the natural place to
*enforce* pieces of that assumption, because every function key passes
through it.  Known attacks on FE-based pipelines (Ligier et al. 2017;
Carpov et al. 2018, both cited by the paper) work by accumulating many
carefully-chosen inner-product keys, so the policy layer lets a
deployment:

* reject degenerate weight vectors (unit vectors / near-unit vectors
  that decrypt single coordinates outright);
* cap the number of distinct FEIP key vectors released per public key
  (each linearly-independent vector reveals one dimension of the
  plaintext subspace -- after ``eta`` of them the plaintext is fully
  determined);
* restrict FEBO operations to a whitelist;
* keep an audit log of everything it released.

These controls are conservative: the default CryptoNN training loop
passes them, an adversarial extraction loop trips them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class PolicyViolation(Exception):
    """The authority refused to derive a key."""


@dataclass(frozen=True)
class AuditEntry:
    """One key release (or refusal)."""

    kind: str            # "feip" or "febo"
    requester: str
    detail: str
    granted: bool


@dataclass
class KeyReleasePolicy:
    """Configurable checks applied before key derivation.

    Attributes:
        forbid_unit_vectors: reject FEIP vectors whose mass concentrates
            on one coordinate (would decrypt that feature directly).
        unit_mass_threshold: fraction of total L1 mass one coordinate may
            carry before the vector counts as "unit-like".  1.0 disables.
        max_distinct_vectors: cap on distinct FEIP vectors per vector
            length; None disables.  Set to ``eta - 1`` to provably keep
            the plaintext under-determined.
        allowed_febo_ops: permitted FEBO operation symbols.
    """

    forbid_unit_vectors: bool = False
    unit_mass_threshold: float = 0.99
    max_distinct_vectors: int | None = None
    allowed_febo_ops: frozenset[str] = frozenset("+-*/")
    audit_log: list[AuditEntry] = field(default_factory=list)
    _seen_vectors: dict[int, set[tuple[int, ...]]] = field(default_factory=dict)

    # -- FEIP ---------------------------------------------------------------
    def check_feip_request(self, rows: list[list[int]],
                           requester: str = "server") -> None:
        """Raise :class:`PolicyViolation` if any row is disallowed."""
        for row in rows:
            vector = tuple(int(v) for v in row)
            try:
                self._check_one_feip_vector(vector)
            except PolicyViolation as violation:
                self.audit_log.append(AuditEntry(
                    "feip", requester, str(violation), granted=False))
                raise
            self.audit_log.append(AuditEntry(
                "feip", requester, f"vector len={len(vector)}", granted=True))

    def _check_one_feip_vector(self, vector: tuple[int, ...]) -> None:
        if self.forbid_unit_vectors and len(vector) > 1:
            magnitudes = np.abs(np.array(vector, dtype=np.float64))
            total = magnitudes.sum()
            if total > 0 and magnitudes.max() / total >= self.unit_mass_threshold:
                raise PolicyViolation(
                    "weight vector concentrates on a single coordinate; "
                    "releasing its key would decrypt that feature directly"
                )
        if self.max_distinct_vectors is not None:
            seen = self._seen_vectors.setdefault(len(vector), set())
            if vector not in seen:
                if len(seen) >= self.max_distinct_vectors:
                    raise PolicyViolation(
                        f"distinct-vector budget ({self.max_distinct_vectors}) "
                        f"for length-{len(vector)} keys exhausted"
                    )
                seen.add(vector)

    # -- FEBO ---------------------------------------------------------------
    def check_febo_request(self, op: str, requester: str = "server") -> None:
        if op not in self.allowed_febo_ops:
            self.audit_log.append(AuditEntry(
                "febo", requester, f"op {op!r} not allowed", granted=False))
            raise PolicyViolation(f"FEBO operation {op!r} is not permitted")
        self.audit_log.append(AuditEntry(
            "febo", requester, f"op {op!r}", granted=True))

    # -- reporting --------------------------------------------------------------
    def refusals(self) -> list[AuditEntry]:
        return [e for e in self.audit_log if not e.granted]

    def grants(self) -> list[AuditEntry]:
        return [e for e in self.audit_log if e.granted]
