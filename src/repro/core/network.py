"""Simulated network channel with latency and failure injection.

The paper's prototype (like this reproduction) runs all three entities
in one process, but its pitch against SMC-based systems is precisely
about *communication*: CryptoNN needs only key-request round trips, not
multi-round secure protocols.  This module provides a deterministic
discrete-event channel so experiments can attach realistic latency and
loss to every logical message, measure their effect on wall-clock
training-time estimates, and exercise retry logic.

Nothing here transports real bytes -- it wraps the in-process calls the
entities already make and advances a simulated clock.

The channel speaks the same retry vocabulary as the real-socket runtime
(:mod:`repro.rpc.retry`): pass a :class:`~repro.rpc.retry.RetryPolicy`
to govern attempts and to charge its (deterministic or jittered) backoff
to the simulated clock, and read :attr:`SimulatedChannel.stats` in the
shared ``attempts/retries/drops/giveups`` counter names -- so simulated
what-if numbers and chaos-proxy numbers compose into one report via
:func:`~repro.rpc.retry.merge_stats`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.rpc.retry import STAT_KEYS, RetryPolicy

T = TypeVar("T")


class ChannelError(Exception):
    """A simulated message loss that exhausted its retries."""


@dataclass
class LatencyModel:
    """Per-message latency: ``base + uniform(0, jitter)`` seconds.

    ``bandwidth_bytes_per_s`` adds a size-proportional term, so shipping
    a 10 MB encrypted dataset costs more simulated time than a 100-byte
    key request.
    """

    base_s: float = 0.001
    jitter_s: float = 0.0
    bandwidth_bytes_per_s: float | None = None

    def sample(self, rng: random.Random, n_bytes: int) -> float:
        latency = self.base_s
        if self.jitter_s > 0:
            latency += rng.uniform(0.0, self.jitter_s)
        if self.bandwidth_bytes_per_s:
            latency += n_bytes / self.bandwidth_bytes_per_s
        return latency


@dataclass
class SimulatedChannel:
    """A lossy, slow link between two entities.

    Args:
        latency: latency model applied per attempt.
        drop_probability: chance each attempt is lost.
        max_retries: resend attempts before :class:`ChannelError`
            (ignored when ``policy`` is set).
        rng: deterministic randomness source.
        policy: optional :class:`~repro.rpc.retry.RetryPolicy`; when
            set, it bounds the attempts (``max_attempts``) and its
            backoff schedule is charged to the simulated clock between
            attempts -- the same policy object an
            :class:`~repro.rpc.client.RpcEndpoint` would use against a
            real socket.
    """

    latency: LatencyModel = field(default_factory=LatencyModel)
    drop_probability: float = 0.0
    max_retries: int = 3
    rng: random.Random = field(default_factory=random.Random)
    policy: RetryPolicy | None = None

    clock_s: float = 0.0
    messages_sent: int = 0
    messages_dropped: int = 0
    retries: int = 0
    giveups: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if self.policy is not None:
            self.max_retries = self.policy.max_attempts - 1

    @property
    def stats(self) -> dict[str, int]:
        """Counters in the runtime's shared retry vocabulary
        (:data:`~repro.rpc.retry.STAT_KEYS`) -- composable with real
        endpoint stats via :func:`~repro.rpc.retry.merge_stats`."""
        values = {
            "attempts": self.messages_sent,
            "retries": self.retries,
            "drops": self.messages_dropped,
            "timeouts": 0,
            "reconnects": 0,
            "giveups": self.giveups,
        }
        return {key: values[key] for key in STAT_KEYS}

    def send(self, n_bytes: int, deliver: Callable[[], T]) -> T:
        """Deliver a message of ``n_bytes``, retrying on simulated loss.

        ``deliver`` is the in-process call standing in for the receiver's
        handler; it runs exactly once, after a successful attempt.  With
        a ``policy`` set, each resend also advances the simulated clock
        by the policy's backoff -- so what-if latency estimates include
        the time a real endpoint would have spent backing off.
        """
        for attempt in range(self.max_retries + 1):
            if attempt > 0:
                self.retries += 1
                if self.policy is not None:
                    self.clock_s += self.policy.backoff(attempt, self.rng)
            self.messages_sent += 1
            self.clock_s += self.latency.sample(self.rng, n_bytes)
            if self.rng.random() >= self.drop_probability:
                return deliver()
            self.messages_dropped += 1
        self.giveups += 1
        raise ChannelError(
            f"message lost {self.max_retries + 1} times "
            f"(drop_probability={self.drop_probability})"
        )

    def round_trip(self, request_bytes: int, response_bytes: int,
                   deliver: Callable[[], T]) -> T:
        """A request/response exchange: two directional sends."""
        result = self.send(request_bytes, deliver)
        self.send(response_bytes, lambda: None)
        return result


@dataclass
class NetworkedAuthority:
    """Wraps a :class:`~repro.core.entities.TrustedAuthority` behind a
    simulated channel, so key requests cost (simulated) time and may
    need retries -- the deployment shape the paper's architecture implies.
    """

    authority: object
    channel: SimulatedChannel

    def derive_feip_keys(self, rows, requester: str = "server"):
        from repro.core import serialization as ser
        eta = len(rows[0]) if rows else 0
        request_bytes = len(rows) * ser.feip_key_request_wire_size(
            eta, self.authority.params, self.authority.config.key_weight_bytes)
        keys = self.channel.round_trip(
            request_bytes, request_bytes,
            lambda: self.authority.derive_feip_keys(rows, requester),
        )
        return keys

    def derive_febo_keys(self, requests, requester: str = "server"):
        from repro.core import serialization as ser
        per = ser.febo_key_request_wire_size(
            self.authority.params, self.authority.config.key_weight_bytes)
        return self.channel.round_trip(
            len(requests) * per, len(requests) * per,
            lambda: self.authority.derive_febo_keys(requests, requester),
        )

    @property
    def simulated_seconds(self) -> float:
        return self.channel.clock_s
