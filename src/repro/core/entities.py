"""The three CryptoNN entities (paper Fig. 1).

* :class:`TrustedAuthority` -- owns every master secret key, hands out
  public keys, and answers function-key requests.  Assumed honest and
  non-colluding (Section IV-A).
* :class:`Client` -- a data owner: pre-processes (fixed-point encoding,
  one-hot + random label mapping) and encrypts its shard.
* :class:`Server` -- bookkeeping facade for the training side; the actual
  training logic lives in the trainers (:mod:`repro.core.cryptonn`,
  :mod:`repro.core.cryptocnn`), which act on the server's behalf.

All in-process calls that stand for network messages are recorded in a
shared :class:`~repro.core.protocol.TrafficLog` with byte-accurate sizes.
"""

from __future__ import annotations

import random

import numpy as np

from repro.core import protocol, serialization
from repro.core.config import CryptoNNConfig
from repro.core.encdata import (
    EncryptedImage,
    EncryptedImageDataset,
    EncryptedLabel,
    EncryptedSample,
    EncryptedTabularDataset,
)
from repro.core.protocol import TrafficLog
from repro.data.preprocess import LabelMapper, one_hot
from repro.fe.errors import UnsupportedOperationError
from repro.fe.febo import Febo, FeboOp
from repro.fe.feip import Feip
from repro.fe.keys import (
    FeboFunctionKey,
    FeboMasterKey,
    FeboPublicKey,
    FeipFunctionKey,
    FeipMasterKey,
    FeipPublicKey,
)
from repro.fe.engine import resolve_engine
from repro.matrix.parallel import resolve_pool
from repro.matrix.secure_conv import (
    SecureConvolution,
    conv_output_shape,
    extract_windows,
)
from repro.mathutils.encoding import FixedPointCodec
from repro.mathutils.group import GroupParams


class TrustedAuthority:
    """Holds master keys; derives function keys on request.

    FEIP master keys are per vector length (a key pair supports one
    ``eta``); FEBO uses a single key pair.  The ``permitted_ops``
    whitelist models the paper's "permitted function set F".
    """

    def __init__(self, config: CryptoNNConfig | None = None,
                 rng: random.Random | None = None,
                 traffic: TrafficLog | None = None,
                 permitted_ops: frozenset[str] = frozenset("+-*/"),
                 policy=None):
        self.config = config or CryptoNNConfig()
        self.params = GroupParams.predefined(self.config.security_bits)
        self.traffic = traffic if traffic is not None else TrafficLog()
        self.permitted_ops = permitted_ops
        #: optional :class:`repro.core.policy.KeyReleasePolicy`
        self.policy = policy
        self._rng = rng or random.Random()
        self.feip = Feip(self.params, rng=self._rng)
        self.febo = Febo(self.params, rng=self._rng)
        self._feip_pairs: dict[int, tuple[FeipPublicKey, FeipMasterKey]] = {}
        self._febo_pair: tuple[FeboPublicKey, FeboMasterKey] = self.febo.setup()
        self.feip_keys_issued = 0
        self.febo_keys_issued = 0

    # -- public keys -----------------------------------------------------------
    def feip_public_key(self, eta: int) -> FeipPublicKey:
        """Public key for vectors of length ``eta`` (setup on demand)."""
        if eta not in self._feip_pairs:
            self._feip_pairs[eta] = self.feip.setup(eta)
        mpk = self._feip_pairs[eta][0]
        self.traffic.record(
            protocol.AUTHORITY, "broadcast", protocol.KIND_PUBLIC_PARAMS,
            (1 + eta) * serialization.element_size_bytes(self.params),
        )
        return mpk

    def febo_public_key(self) -> FeboPublicKey:
        self.traffic.record(
            protocol.AUTHORITY, "broadcast", protocol.KIND_PUBLIC_PARAMS,
            2 * serialization.element_size_bytes(self.params),
        )
        return self._febo_pair[0]

    # -- function keys -----------------------------------------------------------
    def _record_exchange(self, requester: str, request_kind: str,
                         request_bytes: int, response_kind: str,
                         response_bytes: int) -> None:
        """One request/response round trip in the traffic log."""
        self.traffic.record(requester, protocol.AUTHORITY, request_kind,
                            request_bytes)
        self.traffic.record(protocol.AUTHORITY, requester, response_kind,
                            response_bytes)

    def _derive_feip(self, rows: list[list[int]],
                     requester: str) -> list[FeipFunctionKey]:
        """Policy-checked derivation shared by both traffic accountings."""
        eta = len(rows[0])
        if any(len(r) != eta for r in rows):
            raise ValueError("all requested weight rows must share a length")
        if self.policy is not None:
            self.policy.check_feip_request(rows, requester)
        if eta not in self._feip_pairs:
            self._feip_pairs[eta] = self.feip.setup(eta)
        _, msk = self._feip_pairs[eta]
        keys = [self.feip.key_derive(msk, row) for row in rows]
        self.feip_keys_issued += len(keys)
        return keys

    def derive_feip_keys(self, rows: list[list[int]],
                         requester: str = protocol.SERVER
                         ) -> list[FeipFunctionKey]:
        """Derive one inner-product key per weight row.

        This is the per-iteration exchange whose cost Section IV-B2
        analyses: the requester uploads ``k`` vectors of length ``n``
        (k x n x |w| bytes) and downloads ``k`` keys (k x |sk| bytes).
        """
        if not rows:
            return []
        keys = self._derive_feip(rows, requester)
        eta = len(rows[0])
        wb = self.config.key_weight_bytes
        self._record_exchange(
            requester,
            protocol.KIND_FEIP_KEY_REQUEST,
            len(rows) * serialization.feip_key_request_wire_size(
                eta, self.params, wb),
            protocol.KIND_FEIP_KEY_RESPONSE,
            sum(serialization.feip_key_wire_size(k, self.params, wb)
                for k in keys),
        )
        return keys

    def derive_feip_keys_batch(self, rows: list[list[int]],
                               requester: str = protocol.SERVER
                               ) -> list[FeipFunctionKey]:
        """Same derivation as :meth:`derive_feip_keys`, accounted as ONE
        batched envelope in each direction (paper Section IV-B2's
        k x n x |w| upload coalesced into a single framed message)."""
        if not rows:
            return []
        keys = self._derive_feip(rows, requester)
        eta = len(rows[0])
        wb = self.config.key_weight_bytes
        self._record_exchange(
            requester,
            protocol.KIND_FEIP_KEY_BATCH_REQUEST,
            serialization.feip_key_batch_request_wire_size(
                len(rows), eta, self.params, wb),
            protocol.KIND_FEIP_KEY_BATCH_RESPONSE,
            serialization.feip_key_batch_response_wire_size(
                len(keys), eta, self.params, wb),
        )
        return keys

    def _derive_febo(self, requests: list[tuple[int, str, int]],
                     requester: str) -> list[FeboFunctionKey]:
        for _, op, _ in requests:
            if op not in self.permitted_ops:
                raise UnsupportedOperationError(
                    f"operation {op!r} is outside the permitted set"
                )
            if self.policy is not None:
                self.policy.check_febo_request(op, requester)
        _, msk = self._febo_pair
        keys = [
            self.febo.key_derive(msk, cmt, FeboOp.coerce(op), y)
            for cmt, op, y in requests
        ]
        self.febo_keys_issued += len(keys)
        return keys

    def derive_febo_keys(self, requests: list[tuple[int, str, int]],
                         requester: str = protocol.SERVER
                         ) -> list[FeboFunctionKey]:
        """Derive per-ciphertext basic-operation keys.

        Args:
            requests: list of ``(commitment, op_symbol, operand)``.
        """
        keys = self._derive_febo(requests, requester)
        wb = self.config.key_weight_bytes
        self._record_exchange(
            requester,
            protocol.KIND_FEBO_KEY_REQUEST,
            len(requests) * serialization.febo_key_request_wire_size(
                self.params, wb),
            protocol.KIND_FEBO_KEY_RESPONSE,
            len(keys) * serialization.febo_key_wire_size(self.params, wb),
        )
        return keys

    def derive_febo_keys_batch(self, requests: list[tuple[int, str, int]],
                               requester: str = protocol.SERVER
                               ) -> list[FeboFunctionKey]:
        """Batched-envelope accounting variant of :meth:`derive_febo_keys`."""
        if not requests:
            return []
        keys = self._derive_febo(requests, requester)
        wb = self.config.key_weight_bytes
        self._record_exchange(
            requester,
            protocol.KIND_FEBO_KEY_BATCH_REQUEST,
            serialization.febo_key_batch_request_wire_size(
                len(requests), self.params, wb),
            protocol.KIND_FEBO_KEY_BATCH_RESPONSE,
            serialization.febo_key_batch_response_wire_size(
                len(keys), self.params, wb),
        )
        return keys


class Client:
    """A data owner: encodes, encrypts and ships its shard.

    Multiple clients may share one authority (and therefore one public
    key), which is the paper's only requirement for multi-source
    training ("the training data should be encrypted using the same
    public key").

    An :class:`~repro.fe.engine.EncryptionEngine` (passed explicitly or
    resolved from ``workers``) switches encryption to the
    offline/online split: before each dataset loop the client banks the
    exact number of nonce tuples the loop will consume -- pool-parallel
    when the engine has workers -- and the per-sample loops then run
    online-only.  Without an engine the serial seed path is unchanged.
    """

    def __init__(self, authority: TrustedAuthority,
                 label_mapper: LabelMapper | None = None,
                 name: str = protocol.CLIENT,
                 engine=None, workers: int | None = None):
        self.authority = authority
        self.config = authority.config
        self.codec = FixedPointCodec(self.config.scale)
        self.label_mapper = label_mapper
        self.name = name
        self._feip = authority.feip
        self._febo = authority.febo
        self.engine = resolve_engine(engine, authority.params,
                                     workers=workers)

    # -- encryption routing ---------------------------------------------------
    def _encrypt_feip(self, mpk, values):
        if self.engine is not None:
            return self.engine.encrypt_feip(mpk, values)
        return self._feip.encrypt(mpk, values)

    def _encrypt_febo(self, bpk, value):
        if self.engine is not None:
            return self.engine.encrypt_febo(bpk, value)
        return self._febo.encrypt(bpk, value)

    def _bank_material(self, feip_counts: list[tuple[object, int]],
                       febo_mpk, febo_count: int) -> None:
        """Offline phase: bank exactly what the coming loop consumes.

        Only called when the engine can produce material in parallel; a
        serial engine simply encrypts on demand (same total cost) or
        consumes whatever the caller prefilled.
        """
        for mpk, count in feip_counts:
            self.engine.prefill_feip(mpk, count)
        self.engine.prefill_febo(febo_mpk, febo_count)

    # -- labels --------------------------------------------------------------
    def _map_labels(self, labels: np.ndarray) -> np.ndarray:
        """Apply the anti-inference random label mapping (Section IV-A)."""
        labels = np.asarray(labels, dtype=np.int64)
        if self.label_mapper is not None:
            return self.label_mapper.map_labels(labels)
        return labels

    def _encrypt_label(self, label: int, num_classes: int) -> EncryptedLabel:
        """Encrypt one already-mapped label as a one-hot vector."""
        onehot = one_hot(np.array([label]), num_classes)[0]
        encoded = [self.codec.encode(v) for v in onehot]
        mpk = self.authority.feip_public_key(num_classes)
        bpk = self.authority.febo_public_key()
        return EncryptedLabel(
            onehot_ip=self._encrypt_feip(mpk, encoded),
            onehot_bo=tuple(self._encrypt_febo(bpk, v) for v in encoded),
        )

    # -- tabular data ------------------------------------------------------------
    def encrypt_tabular(self, features: np.ndarray, labels: np.ndarray,
                        num_classes: int) -> EncryptedTabularDataset:
        """Encrypt an (N, F) float matrix plus integer labels."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"expected (N, F) features, got {features.shape}")
        if np.abs(features).max(initial=0.0) > self.config.max_abs_feature:
            raise ValueError(
                "features exceed config.max_abs_feature; normalize first"
            )
        n, f = features.shape
        mapped = self._map_labels(labels)
        mpk = self.authority.feip_public_key(f)
        bpk = self.authority.febo_public_key()
        if self.engine is not None and self.engine.pool is not None:
            # offline phase: bank exactly what the loop below consumes
            self._bank_material(
                [(mpk, n), (self.authority.feip_public_key(num_classes), n)],
                bpk, n * (f + num_classes))
        samples: list[EncryptedSample] = []
        enc_labels: list[EncryptedLabel] = []
        for i in range(n):
            encoded = [self.codec.encode(v) for v in features[i]]
            samples.append(EncryptedSample(
                features_ip=self._encrypt_feip(mpk, encoded),
                features_bo=tuple(self._encrypt_febo(bpk, v)
                                  for v in encoded),
            ))
            enc_labels.append(self._encrypt_label(int(mapped[i]), num_classes))
        self._record_upload(serialization.encrypted_tabular_wire_size(
            n, f, num_classes, self.authority.params))
        return EncryptedTabularDataset(
            samples=samples, labels=enc_labels, num_classes=num_classes,
            n_features=f, scale=self.config.scale,
            # wire-label space so harness accuracy matches server outputs
            eval_labels=mapped,
        )

    # -- image data ------------------------------------------------------------
    def encrypt_images(self, images: np.ndarray, labels: np.ndarray,
                       num_classes: int, filter_size: int, stride: int = 1,
                       padding: int = 0) -> EncryptedImageDataset:
        """Encrypt (N, C, H, W) images for a known conv geometry.

        The client learns the first layer's filter size / stride / padding
        from the server (paper Section III-E1) and window-encrypts
        accordingly; raw pixels are additionally FEBO-encrypted for the
        secure gradient step.
        """
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) images, got {images.shape}")
        if images.min(initial=0.0) < -self.config.max_abs_feature or \
           images.max(initial=0.0) > self.config.max_abs_feature:
            raise ValueError("pixels exceed config.max_abs_feature")
        n, c, h, w = images.shape
        mapped = self._map_labels(labels)
        window_length = c * filter_size * filter_size
        mpk = self.authority.feip_public_key(window_length)
        bpk = self.authority.febo_public_key()
        if self.engine is not None and self.engine.pool is not None:
            out_h, out_w = conv_output_shape(h, w, filter_size, stride,
                                             padding)
            self._bank_material(
                [(mpk, n * out_h * out_w),
                 (self.authority.feip_public_key(num_classes), n)],
                bpk, n * (c * h * w + num_classes))
        conv = SecureConvolution(self._feip, mpk, engine=self.engine)
        enc_images: list[EncryptedImage] = []
        enc_labels: list[EncryptedLabel] = []
        for i in range(n):
            encoded_img = self.codec.encode_array(images[i])
            enc_windows = conv.pre_process_encryption(
                encoded_img, filter_size, stride, padding
            )
            pixels = np.empty((c, h, w), dtype=object)
            for idx, value in np.ndenumerate(encoded_img):
                pixels[idx] = self._encrypt_febo(bpk, int(value))
            enc_images.append(EncryptedImage(
                windows=enc_windows, pixels_bo=pixels, image_shape=(c, h, w),
            ))
            enc_labels.append(self._encrypt_label(int(mapped[i]), num_classes))
        per_image = (
            len(enc_images[0].windows.windows)
            * (1 + window_length) * serialization.element_size_bytes(self.authority.params)
            + c * h * w * serialization.febo_ciphertext_wire_size(self.authority.params)
        ) if enc_images else 0
        self._record_upload(n * per_image)
        return EncryptedImageDataset(
            images=enc_images, labels=enc_labels, num_classes=num_classes,
            filter_size=filter_size, stride=stride, padding=padding,
            scale=self.config.scale,
            eval_labels=mapped,
        )

    def _record_upload(self, n_bytes: int) -> None:
        self.authority.traffic.record(
            self.name, protocol.SERVER, protocol.KIND_ENCRYPTED_DATA, n_bytes
        )


class Server:
    """Bookkeeping facade for the training side.

    The trainers do the actual work; this object groups the model, the
    authority handle and the operation counters for examples and benches.
    It also holds the persistent compute pool for the run.  When the
    worker count comes from ``config.workers`` (the default), this is
    the *same* process-wide pool trainers resolve on their own, so a
    trainer constructed without an explicit ``pool`` argument shares
    these workers and :meth:`close` tears down what the run actually
    used.  An explicit ``workers`` override that differs from
    ``config.workers`` selects a different pool, which trainers only
    use if handed ``pool=server.compute_pool``.  Closing is safe at any
    time: a shared pool transparently restarts (paying worker spawn and
    dlog-table warmup again) if something else still uses it.
    """

    def __init__(self, authority: TrustedAuthority,
                 workers: int | None = None):
        self.authority = authority
        self.config = authority.config
        self.trainer = None  # attached by the trainers
        workers = workers if workers is not None else self.config.workers
        self.compute_pool = resolve_pool(None, workers)

    def attach(self, trainer) -> None:
        self.trainer = trainer

    def close(self) -> None:
        """Shut down the compute pool (idempotent)."""
        if self.compute_pool is not None:
            self.compute_pool.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def counters(self):
        if self.trainer is None:
            raise RuntimeError("no trainer attached")
        return self.trainer.counters
