"""Containers for client-encrypted training data.

The client encrypts its dataset once and ships it to the server (paper
Section III-A); these dataclasses are exactly what travels.  Features are
encrypted twice, mirroring Algorithm 1's pre-processing:

* per-sample FEIP ciphertext of the whole feature vector -- consumed by
  the secure feed-forward dot product / convolution;
* per-element FEBO ciphertexts -- consumed by the secure gradient step.

Labels are encrypted as one-hot vectors the same way (FEIP vector for the
cross-entropy inner product, FEBO elements for the P - Y subtraction).

``eval_labels`` rides along *for experiment harnesses only*: Figure 6
plots batch accuracy, which requires ground truth the server never sees
in a real deployment.  Nothing in the training path reads it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fe.keys import FeboCiphertext, FeipCiphertext
from repro.matrix.secure_conv import EncryptedWindows


@dataclass
class EncryptedSample:
    """One tabular sample: FEIP vector + FEBO per-feature elements."""

    features_ip: FeipCiphertext
    features_bo: tuple[FeboCiphertext, ...]

    @property
    def n_features(self) -> int:
        return len(self.features_bo)


@dataclass
class EncryptedLabel:
    """One one-hot label: FEIP vector + FEBO per-class elements."""

    onehot_ip: FeipCiphertext
    onehot_bo: tuple[FeboCiphertext, ...]

    @property
    def num_classes(self) -> int:
        return len(self.onehot_bo)


@dataclass
class EncryptedImage:
    """One image pre-processed for the secure convolution (Algorithm 3).

    ``windows`` hold the FEIP-encrypted flattened sliding windows for the
    server's convolution geometry; ``pixels_bo`` holds per-pixel FEBO
    ciphertexts of the *unpadded* image, shape (C, H, W) object array.
    """

    windows: EncryptedWindows
    pixels_bo: np.ndarray
    image_shape: tuple[int, int, int]


@dataclass
class EncryptedTabularDataset:
    """A full encrypted tabular dataset as received by the server."""

    samples: list[EncryptedSample]
    labels: list[EncryptedLabel]
    num_classes: int
    n_features: int
    scale: int
    #: ground truth for harness-side evaluation only (never used to train)
    eval_labels: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.samples)


@dataclass
class EncryptedImageDataset:
    """A full encrypted image dataset plus the conv geometry it was cut for."""

    images: list[EncryptedImage]
    labels: list[EncryptedLabel]
    num_classes: int
    filter_size: int
    stride: int
    padding: int
    scale: int
    eval_labels: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.images)


def merge_encrypted_tabular(parts: list[EncryptedTabularDataset]
                            ) -> EncryptedTabularDataset:
    """Server-side merge of shards uploaded by different clients.

    The paper's only multi-source requirement is that every shard was
    encrypted under the same public key; shapes and scale must agree.
    """
    if not parts:
        raise ValueError("cannot merge zero encrypted shards")
    first = parts[0]
    for p in parts[1:]:
        if (p.n_features, p.num_classes, p.scale) != \
                (first.n_features, first.num_classes, first.scale):
            raise ValueError("encrypted shards disagree on shape or scale")
    eval_labels = None
    if all(p.eval_labels is not None for p in parts):
        eval_labels = np.concatenate([p.eval_labels for p in parts])
    return EncryptedTabularDataset(
        samples=[s for p in parts for s in p.samples],
        labels=[label for p in parts for label in p.labels],
        num_classes=first.num_classes,
        n_features=first.n_features,
        scale=first.scale,
        eval_labels=eval_labels,
    )


def shuffled_order(n: int, rng: np.random.Generator | None = None,
                   shuffle: bool = True) -> np.ndarray:
    """One epoch's sample permutation.

    This is the ONLY place the training shuffle consumes the RNG stream
    -- ``fit()`` checkpoints that stream for exact resume, so any other
    consumer would silently break resume determinism.
    """
    order = np.arange(n)
    if shuffle:
        if rng is None:
            rng = np.random.default_rng()
        rng.shuffle(order)
    return order


def batch_indices(n: int, batch_size: int,
                  rng: np.random.Generator | None = None,
                  shuffle: bool = True) -> list[np.ndarray]:
    """Index batches over an encrypted dataset (server picks the order)."""
    order = shuffled_order(n, rng, shuffle)
    return [order[s:s + batch_size] for s in range(0, n, batch_size)]


@dataclass
class DecryptionCounters:
    """Server-side operation counters (feed the performance benches)."""

    feip_decrypts: int = 0
    febo_decrypts: int = 0
    feip_keys_requested: int = 0
    febo_keys_requested: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "feip_decrypts": self.feip_decrypts,
            "febo_decrypts": self.febo_decrypts,
            "feip_keys_requested": self.feip_keys_requested,
            "febo_keys_requested": self.febo_keys_requested,
        }
