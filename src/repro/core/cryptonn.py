"""The CryptoNN framework trainer (paper Algorithm 2).

For each iteration the trainer

1. derives function keys for the first layer's current weights
   (``pre-process-key-derive``),
2. runs the secure feed-forward step over the encrypted batch
   (``secure-computation``),
3. continues the normal feed-forward through the plaintext hidden layers,
4. derives keys for the current output activations and runs the secure
   back-propagation / evaluation step against the encrypted labels,
5. finishes normal back-propagation and updates parameters.

The model is an ordinary :class:`repro.nn.model.Sequential` whose *first*
layer is wrapped by a secure input layer and whose loss is replaced by a
secure loss -- everything in between runs unchanged, which is the
framework's central design point.
"""

from __future__ import annotations

import contextlib
import pathlib
from typing import Callable

import numpy as np

from repro.core.checkpoint import TrainerCheckpoint, npz_path
from repro.core.config import CryptoNNConfig
from repro.core.encdata import (
    DecryptionCounters,
    EncryptedTabularDataset,
    shuffled_order,
)
from repro.core.entities import TrustedAuthority
from repro.core.secure_layers import (
    SecureLinearInput,
    SecureMSE,
    SecureSoftmaxCrossEntropy,
)
from repro.matrix.parallel import SecureComputePool, resolve_pool
from repro.obs.tracing import GLOBAL_TRACER
from repro.nn.activations import softmax
from repro.nn.layers import Dense
from repro.nn.metrics import accuracy
from repro.nn.model import Sequential, TrainingHistory
from repro.nn.optimizers import Optimizer


class _SecureTrainerBase:
    """Shared fit/evaluate loop for CryptoNN and CryptoCNN.

    The trainer owns one persistent compute pool for the whole run:
    passed in explicitly (e.g. ``Server.compute_pool``), or resolved
    from ``config.workers``, or None for fully serial execution.  All
    secure layers route their decryption loops through it, so worker
    processes and their dlog tables survive across batches and epochs.
    """

    def __init__(self, model: Sequential, authority: TrustedAuthority,
                 config: CryptoNNConfig | None = None,
                 loss: str = "cross_entropy",
                 pool: SecureComputePool | None = None):
        self.model = model
        self.authority = authority
        self.config = config or authority.config
        self.counters = DecryptionCounters()
        self.compute_pool = resolve_pool(pool, self.config.workers)
        if loss == "cross_entropy":
            self.secure_loss = SecureSoftmaxCrossEntropy(
                authority, self.config, self.counters, pool=self.compute_pool
            )
        elif loss == "mse":
            self.secure_loss = SecureMSE(authority, self.config,
                                         self.counters,
                                         pool=self.compute_pool)
        else:
            raise ValueError(f"unknown loss {loss!r}")
        self.loss_name = loss

    # subclasses provide these two hooks -----------------------------------
    def _secure_forward(self, dataset, indices: np.ndarray,
                        training: bool) -> np.ndarray:
        raise NotImplementedError

    def _secure_backward(self, grad: np.ndarray) -> None:
        raise NotImplementedError

    # -- shared loop ---------------------------------------------------------
    def _plain_tail_forward(self, z: np.ndarray, training: bool) -> np.ndarray:
        out = z
        for layer in self.model.layers[1:]:
            out = layer.forward(out, training=training)
        return out

    def train_batch(self, dataset, indices: np.ndarray,
                    optimizer: Optimizer) -> tuple[float, np.ndarray]:
        """One secure training iteration; returns (loss, output scores).

        Each phase runs under a tracer span so an enabled tracer yields
        the paper's Figure 3-5 cost decomposition per iteration; the
        secure phases open nested key-fetch / pool-dispatch /
        decrypt-dlog sub-spans inside the secure layers.
        """
        tracer = GLOBAL_TRACER
        with tracer.span("iteration", batch=len(indices)):
            labels = [dataset.labels[i] for i in indices]
            with tracer.span("secure-forward"):
                z = self._secure_forward(dataset, indices, training=True)
            with tracer.span("plain-forward"):
                out = self._plain_tail_forward(z, training=True)
            with tracer.span("loss-forward"):
                loss_value = self.secure_loss.forward(out, labels)
            with tracer.span("loss-backward"):
                grad = self.secure_loss.backward(labels)
            with tracer.span("plain-backward"):
                for layer in reversed(self.model.layers[1:]):
                    grad = layer.backward(grad)
            with tracer.span("secure-backward"):
                self._secure_backward(grad)
            with tracer.span("optimizer-step"):
                optimizer.step(self.model.layers)
        return loss_value, out

    def fit(self, dataset, optimizer: Optimizer, epochs: int = 1,
            batch_size: int = 64, rng: np.random.Generator | None = None,
            shuffle: bool = True, max_batches: int | None = None,
            on_batch: Callable[[int, float, float], None] | None = None,
            checkpoint_every: int | None = None,
            checkpoint_path: str | pathlib.Path | None = None,
            resume: bool = False,
            checkpoint_trigger: Callable[[], bool] | None = None,
            on_checkpoint: Callable[[TrainerCheckpoint], None] | None = None,
            ) -> TrainingHistory:
        """Mini-batch training over an encrypted dataset.

        ``max_batches`` caps the *total* number of iterations (useful for
        the scaled Figure 6 experiment); when the cap lands mid-epoch the
        partial epoch records no epoch mean and the shuffle stream is
        left exactly where the cap hit it.  Batch accuracy is computed
        against the harness-only ``eval_labels`` when present, else NaN.

        Checkpoint/resume: with ``checkpoint_path`` set, a durable
        :class:`~repro.core.checkpoint.TrainerCheckpoint` is written
        atomically every ``checkpoint_every`` batches (and once more,
        marked completed, when the run finishes); ``checkpoint_trigger``
        is polled after every batch for on-demand snapshots and
        ``on_checkpoint`` observes each write.  With ``resume=True`` the
        run continues from the checkpoint at ``checkpoint_path`` --
        model parameters, optimizer slots, the shuffle bit-generator
        stream, the in-flight epoch's permutation, counters and history
        are all restored, so an interrupted-then-resumed run reproduces
        the uninterrupted run's weights, loss curve and batch schedule
        byte-for-byte.  A missing checkpoint file under ``resume=True``
        simply starts fresh (the crash may have predated the first
        write).
        """
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        needs_path = (checkpoint_every is not None or resume
                      or checkpoint_trigger is not None)
        if needs_path and checkpoint_path is None:
            raise ValueError(
                "checkpoint_every/checkpoint_trigger/resume require "
                "checkpoint_path")
        if checkpoint_path is not None:
            checkpoint_path = npz_path(checkpoint_path)
        if shuffle and rng is None:
            # own the generator so its state can be checkpointed:
            # resume stays byte-exact even from an entropy-seeded
            # start, because checkpoints carry the bit-generator state
            # repro: allow[determinism] -- entropy only seeds the run
            rng = np.random.default_rng()

        run_meta = {
            "n_samples": len(dataset),
            "batch_size": int(batch_size),
            "epochs": int(epochs),
            "shuffle": bool(shuffle),
            "max_batches": max_batches,
            "loss": self.loss_name,
            "optimizer": type(optimizer).__name__,
        }

        history = TrainingHistory()
        batch_counter = 0
        start_epoch = 0
        resume_order: np.ndarray | None = None
        resume_batch = 0
        if resume and checkpoint_path.exists():
            ckpt = TrainerCheckpoint.load(checkpoint_path)
            for key, value in run_meta.items():
                if ckpt.run_meta.get(key) != value:
                    raise ValueError(
                        f"checkpoint was written by a different run: "
                        f"{key}={ckpt.run_meta.get(key)!r}, this run has "
                        f"{key}={value!r}")
            ckpt.restore_model(self.model)
            optimizer.load_state_dict(ckpt.optimizer_state)
            if ckpt.rng_state is not None:
                ckpt.restore_rng(rng)
            history = ckpt.history
            if ckpt.completed:
                return history
            batch_counter = ckpt.batch_counter
            start_epoch = ckpt.epoch
            resume_order = ckpt.epoch_order
            resume_batch = ckpt.batch_in_epoch

        def write_checkpoint(epoch: int, batch_in_epoch: int,
                             order: np.ndarray | None,
                             completed: bool = False) -> None:
            ckpt = TrainerCheckpoint.capture(
                self.model, optimizer, rng if shuffle else None,
                epoch=epoch, batch_in_epoch=batch_in_epoch,
                batch_counter=batch_counter, history=history,
                epoch_order=order, completed=completed, run_meta=run_meta)
            ckpt.save(checkpoint_path)
            if on_checkpoint is not None:
                on_checkpoint(ckpt)

        capped = False
        # these three name the trainer's position for the failure
        # snapshot below; train_batch mutates parameters only in its
        # final statement (optimizer.step), so at any exception the
        # model/optimizer state is exactly the last completed batch
        # boundary
        epoch = start_epoch
        batch_in_epoch = resume_batch
        order = resume_order
        try:
            for epoch in range(start_epoch, epochs):
                if max_batches is not None and batch_counter >= max_batches:
                    # cap already reached: do NOT draw this epoch's
                    # shuffle (it would silently perturb the
                    # resume-critical stream)
                    break
                if resume_order is not None:
                    # mid-epoch resume: replay the checkpointed
                    # permutation
                    order = resume_order
                    batch_in_epoch = resume_batch
                    # the partial epoch's running stats are the tail of
                    # the restored history, so the eventual epoch mean
                    # is exact
                    epoch_losses = list(
                        history.batch_loss[len(history.batch_loss)
                                           - resume_batch:])
                    epoch_accs = list(
                        history.batch_accuracy[len(history.batch_accuracy)
                                               - resume_batch:])
                    resume_order = None
                    resume_batch = 0
                else:
                    order = shuffled_order(len(dataset), rng, shuffle)
                    batch_in_epoch = 0
                    epoch_losses = []
                    epoch_accs = []
                for start in range(batch_in_epoch * batch_size, len(order),
                                   batch_size):
                    if max_batches is not None \
                            and batch_counter >= max_batches:
                        capped = True
                        break
                    indices = order[start:start + batch_size]
                    loss_value, out = self.train_batch(dataset, indices,
                                                       optimizer)
                    if dataset.eval_labels is not None:
                        batch_acc = accuracy(out,
                                             dataset.eval_labels[indices])
                    else:
                        batch_acc = float("nan")
                    history.batch_loss.append(loss_value)
                    history.batch_accuracy.append(batch_acc)
                    epoch_losses.append(loss_value)
                    epoch_accs.append(batch_acc)
                    # commit the counters before invoking the callback:
                    # the weights already include this batch's update, so
                    # a checkpoint written from a callback (or from the
                    # crash handler below, if the callback raises) must
                    # point at the *next* batch or resume double-applies
                    # this one
                    batch_counter += 1
                    batch_in_epoch += 1
                    if on_batch is not None:
                        on_batch(batch_counter - 1, loss_value, batch_acc)
                    if checkpoint_path is not None and (
                            (checkpoint_every is not None
                             and batch_counter % checkpoint_every == 0)
                            or (checkpoint_trigger is not None
                                and checkpoint_trigger())):
                        write_checkpoint(epoch, batch_in_epoch, order)
                if capped:
                    # partial epoch: no epoch mean, no residual epochs
                    break
                if epoch_losses:
                    history.epoch_loss.append(float(np.mean(epoch_losses)))
                    history.epoch_accuracy.append(float(np.mean(epoch_accs)))
        except BaseException:
            # best-effort checkpoint-on-failure: a transport outage, a
            # dead pool or a kill signal mid-run leaves a resumable
            # snapshot of the last completed batch instead of only
            # whatever the periodic cadence last wrote -- and must never
            # mask the original error
            if checkpoint_path is not None:
                with contextlib.suppress(Exception):
                    write_checkpoint(epoch, batch_in_epoch, order)
            raise
        if checkpoint_path is not None:
            write_checkpoint(epochs, 0, None, completed=True)
        return history

    def predict(self, dataset, indices: np.ndarray | None = None) -> np.ndarray:
        """FE-based prediction (paper Section III-D "Prediction").

        Secure feed-forward + plaintext tail; returns class scores
        (softmax probabilities for cross-entropy models, raw outputs for
        MSE models).  The server learns the scores -- the paper's stated
        difference from HE-based prediction.
        """
        if indices is None:
            indices = np.arange(len(dataset))
        z = self._secure_forward(dataset, indices, training=False)
        out = self._plain_tail_forward(z, training=False)
        if self.loss_name == "cross_entropy":
            return softmax(out, axis=1)
        return out

    def evaluate(self, dataset, indices: np.ndarray | None = None,
                 batch_size: int = 64) -> float:
        """Accuracy against the harness-only labels."""
        if dataset.eval_labels is None:
            raise ValueError("dataset carries no evaluation labels")
        if indices is None:
            indices = np.arange(len(dataset))
        if len(indices) == 0:
            raise ValueError(
                "evaluate() needs at least one sample index")
        correct = 0
        for start in range(0, len(indices), batch_size):
            chunk = indices[start:start + batch_size]
            scores = self.predict(dataset, chunk)
            correct += int(
                (scores.argmax(axis=1) == dataset.eval_labels[chunk]).sum()
            )
        return correct / len(indices)


class CryptoNNTrainer(_SecureTrainerBase):
    """Algorithm 2 for fully-connected models over encrypted tabular data.

    The model's first layer must be :class:`repro.nn.layers.Dense`; its
    input dimension must match the encrypted feature length.
    """

    def __init__(self, model: Sequential, authority: TrustedAuthority,
                 config: CryptoNNConfig | None = None,
                 loss: str = "cross_entropy",
                 pool: SecureComputePool | None = None):
        super().__init__(model, authority, config, loss, pool)
        first = model.layers[0]
        if not isinstance(first, Dense):
            raise TypeError(
                f"CryptoNNTrainer needs a Dense first layer, got {first.name}"
            )
        self.secure_input = SecureLinearInput(
            first, authority, self.config, self.counters,
            pool=self.compute_pool,
        )

    def _secure_forward(self, dataset: EncryptedTabularDataset,
                        indices: np.ndarray, training: bool) -> np.ndarray:
        batch = [dataset.samples[i] for i in indices]
        return self.secure_input.forward(batch, indices, training=training)

    def _secure_backward(self, grad: np.ndarray) -> None:
        self.secure_input.backward(grad)
