"""The CryptoNN framework trainer (paper Algorithm 2).

For each iteration the trainer

1. derives function keys for the first layer's current weights
   (``pre-process-key-derive``),
2. runs the secure feed-forward step over the encrypted batch
   (``secure-computation``),
3. continues the normal feed-forward through the plaintext hidden layers,
4. derives keys for the current output activations and runs the secure
   back-propagation / evaluation step against the encrypted labels,
5. finishes normal back-propagation and updates parameters.

The model is an ordinary :class:`repro.nn.model.Sequential` whose *first*
layer is wrapped by a secure input layer and whose loss is replaced by a
secure loss -- everything in between runs unchanged, which is the
framework's central design point.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.config import CryptoNNConfig
from repro.core.encdata import (
    DecryptionCounters,
    EncryptedTabularDataset,
    batch_indices,
)
from repro.core.entities import TrustedAuthority
from repro.core.secure_layers import (
    SecureLinearInput,
    SecureMSE,
    SecureSoftmaxCrossEntropy,
)
from repro.matrix.parallel import SecureComputePool, resolve_pool
from repro.nn.activations import softmax
from repro.nn.layers import Dense
from repro.nn.metrics import accuracy
from repro.nn.model import Sequential, TrainingHistory
from repro.nn.optimizers import Optimizer


class _SecureTrainerBase:
    """Shared fit/evaluate loop for CryptoNN and CryptoCNN.

    The trainer owns one persistent compute pool for the whole run:
    passed in explicitly (e.g. ``Server.compute_pool``), or resolved
    from ``config.workers``, or None for fully serial execution.  All
    secure layers route their decryption loops through it, so worker
    processes and their dlog tables survive across batches and epochs.
    """

    def __init__(self, model: Sequential, authority: TrustedAuthority,
                 config: CryptoNNConfig | None = None,
                 loss: str = "cross_entropy",
                 pool: SecureComputePool | None = None):
        self.model = model
        self.authority = authority
        self.config = config or authority.config
        self.counters = DecryptionCounters()
        self.compute_pool = resolve_pool(pool, self.config.workers)
        if loss == "cross_entropy":
            self.secure_loss = SecureSoftmaxCrossEntropy(
                authority, self.config, self.counters, pool=self.compute_pool
            )
        elif loss == "mse":
            self.secure_loss = SecureMSE(authority, self.config,
                                         self.counters,
                                         pool=self.compute_pool)
        else:
            raise ValueError(f"unknown loss {loss!r}")
        self.loss_name = loss

    # subclasses provide these two hooks -----------------------------------
    def _secure_forward(self, dataset, indices: np.ndarray,
                        training: bool) -> np.ndarray:
        raise NotImplementedError

    def _secure_backward(self, grad: np.ndarray) -> None:
        raise NotImplementedError

    # -- shared loop ---------------------------------------------------------
    def _plain_tail_forward(self, z: np.ndarray, training: bool) -> np.ndarray:
        out = z
        for layer in self.model.layers[1:]:
            out = layer.forward(out, training=training)
        return out

    def train_batch(self, dataset, indices: np.ndarray,
                    optimizer: Optimizer) -> tuple[float, np.ndarray]:
        """One secure training iteration; returns (loss, output scores)."""
        labels = [dataset.labels[i] for i in indices]
        z = self._secure_forward(dataset, indices, training=True)
        out = self._plain_tail_forward(z, training=True)
        loss_value = self.secure_loss.forward(out, labels)
        grad = self.secure_loss.backward(labels)
        for layer in reversed(self.model.layers[1:]):
            grad = layer.backward(grad)
        self._secure_backward(grad)
        optimizer.step(self.model.layers)
        return loss_value, out

    def fit(self, dataset, optimizer: Optimizer, epochs: int = 1,
            batch_size: int = 64, rng: np.random.Generator | None = None,
            shuffle: bool = True, max_batches: int | None = None,
            on_batch: Callable[[int, float, float], None] | None = None
            ) -> TrainingHistory:
        """Mini-batch training over an encrypted dataset.

        ``max_batches`` caps the *total* number of iterations (useful for
        the scaled Figure 6 experiment).  Batch accuracy is computed
        against the harness-only ``eval_labels`` when present, else NaN.
        """
        history = TrainingHistory()
        batch_counter = 0
        for _ in range(epochs):
            epoch_losses: list[float] = []
            epoch_accs: list[float] = []
            for indices in batch_indices(len(dataset), batch_size, rng, shuffle):
                if max_batches is not None and batch_counter >= max_batches:
                    break
                loss_value, out = self.train_batch(dataset, indices, optimizer)
                if dataset.eval_labels is not None:
                    batch_acc = accuracy(out, dataset.eval_labels[indices])
                else:
                    batch_acc = float("nan")
                history.batch_loss.append(loss_value)
                history.batch_accuracy.append(batch_acc)
                epoch_losses.append(loss_value)
                epoch_accs.append(batch_acc)
                if on_batch is not None:
                    on_batch(batch_counter, loss_value, batch_acc)
                batch_counter += 1
            if epoch_losses:
                history.epoch_loss.append(float(np.mean(epoch_losses)))
                history.epoch_accuracy.append(float(np.mean(epoch_accs)))
        return history

    def predict(self, dataset, indices: np.ndarray | None = None) -> np.ndarray:
        """FE-based prediction (paper Section III-D "Prediction").

        Secure feed-forward + plaintext tail; returns class scores
        (softmax probabilities for cross-entropy models, raw outputs for
        MSE models).  The server learns the scores -- the paper's stated
        difference from HE-based prediction.
        """
        if indices is None:
            indices = np.arange(len(dataset))
        z = self._secure_forward(dataset, indices, training=False)
        out = self._plain_tail_forward(z, training=False)
        if self.loss_name == "cross_entropy":
            return softmax(out, axis=1)
        return out

    def evaluate(self, dataset, indices: np.ndarray | None = None,
                 batch_size: int = 64) -> float:
        """Accuracy against the harness-only labels."""
        if dataset.eval_labels is None:
            raise ValueError("dataset carries no evaluation labels")
        if indices is None:
            indices = np.arange(len(dataset))
        correct = 0
        for start in range(0, len(indices), batch_size):
            chunk = indices[start:start + batch_size]
            scores = self.predict(dataset, chunk)
            correct += int(
                (scores.argmax(axis=1) == dataset.eval_labels[chunk]).sum()
            )
        return correct / len(indices)


class CryptoNNTrainer(_SecureTrainerBase):
    """Algorithm 2 for fully-connected models over encrypted tabular data.

    The model's first layer must be :class:`repro.nn.layers.Dense`; its
    input dimension must match the encrypted feature length.
    """

    def __init__(self, model: Sequential, authority: TrustedAuthority,
                 config: CryptoNNConfig | None = None,
                 loss: str = "cross_entropy",
                 pool: SecureComputePool | None = None):
        super().__init__(model, authority, config, loss, pool)
        first = model.layers[0]
        if not isinstance(first, Dense):
            raise TypeError(
                f"CryptoNNTrainer needs a Dense first layer, got {first.name}"
            )
        self.secure_input = SecureLinearInput(
            first, authority, self.config, self.counters,
            pool=self.compute_pool,
        )

    def _secure_forward(self, dataset: EncryptedTabularDataset,
                        indices: np.ndarray, training: bool) -> np.ndarray:
        batch = [dataset.samples[i] for i in indices]
        return self.secure_input.forward(batch, indices, training=training)

    def _secure_backward(self, grad: np.ndarray) -> None:
        self.secure_input.backward(grad)
