"""repro -- a from-scratch reproduction of CryptoNN (ICDCS 2019).

CryptoNN trains neural networks over functionally-encrypted data.  The
package is layered bottom-up:

* :mod:`repro.mathutils` -- groups, primes, discrete logs, fixed point.
* :mod:`repro.fe` -- the FEIP and FEBO functional-encryption schemes.
* :mod:`repro.matrix` -- secure matrix computation and secure convolution.
* :mod:`repro.nn` -- a plain NumPy neural-network library (the baseline).
* :mod:`repro.data` -- synthetic datasets and pre-processing.
* :mod:`repro.core` -- the CryptoNN framework: authority / client / server
  entities, secure layers, and the CryptoNN / CryptoCNN trainers.

Quickstart::

    from repro.fe import Feip
    from repro.mathutils import GroupParams

    scheme = Feip(GroupParams.predefined(256))
    mpk, msk = scheme.setup(eta=3)
    ct = scheme.encrypt(mpk, [1, 2, 3])
    sk = scheme.key_derive(msk, [10, 20, 30])
    assert scheme.decrypt(mpk, ct, sk, bound=1000) == 140
"""

__version__ = "1.0.0"
