"""Number-theoretic substrate for the CryptoNN reproduction.

This package replaces the Charm/GMP layer used by the paper's prototype
with pure-Python implementations:

* :mod:`repro.mathutils.primes` -- probabilistic primality testing and
  (safe-)prime generation.
* :mod:`repro.mathutils.modarith` -- modular arithmetic helpers.
* :mod:`repro.mathutils.group` -- prime-order Schnorr groups where the
  DDH assumption is believed to hold, with precomputed parameters.
* :mod:`repro.mathutils.dlog` -- bounded discrete-logarithm recovery via
  baby-step giant-step, the decryption workhorse of both FE schemes.
* :mod:`repro.mathutils.fastexp` -- fixed-base comb tables and
  simultaneous multi-exponentiation for the modular-exponentiation hot
  path (see ROADMAP.md "Performance architecture").
* :mod:`repro.mathutils.encoding` -- the signed fixed-point codec used to
  map floats into group exponents (the paper keeps "two decimal places").
"""

from repro.mathutils.dlog import DiscreteLogError, DlogSolver
from repro.mathutils.encoding import FixedPointCodec
from repro.mathutils.fastexp import FixedBaseExp, multiexp
from repro.mathutils.group import GroupParams, SchnorrGroup
from repro.mathutils.modarith import mod_inverse
from repro.mathutils.primes import gen_prime, gen_safe_prime, is_probable_prime

__all__ = [
    "DiscreteLogError",
    "DlogSolver",
    "FixedBaseExp",
    "FixedPointCodec",
    "GroupParams",
    "SchnorrGroup",
    "multiexp",
    "gen_prime",
    "gen_safe_prime",
    "is_probable_prime",
    "mod_inverse",
]
