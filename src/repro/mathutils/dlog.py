"""Bounded discrete-logarithm recovery.

Decryption in both FEIP and FEBO yields ``g ** m mod p`` and must recover
the exponent ``m``.  This is feasible exactly because the plaintext result
of the permitted function is small and bounded -- the paper points at the
baby-step giant-step (BSGS) algorithm [26].  We implement BSGS over a
*signed* interval ``[-bound, bound]`` with a reusable baby-step table so
that the (dominant) table construction is amortized across the thousands
of decryptions a single training iteration performs.
"""

from __future__ import annotations

import math

from repro.mathutils.group import SchnorrGroup


class DiscreteLogError(ValueError):
    """Raised when no exponent within the search bound matches.

    In practice this signals either a plaintext that overflowed the
    declared bound (fixed-point scale too large) or a tampered/corrupt
    ciphertext, so it doubles as an integrity check.
    """


#: Default ceiling on the baby-step table.  The classic ``sqrt(window)``
#: table balances build time against a *single* query, but the solver
#: cache amortizes one build over thousands of queries, so a denser
#: table (fewer giant steps per query, O(1) solve once the whole window
#: fits) is the right trade until memory becomes the constraint.
DENSE_TABLE_CAP = 1 << 15


class DlogSolver:
    """Baby-step giant-step solver for ``g ** m = h (mod p)``, ``|m| <= bound``.

    The solver precomputes ``table_size`` baby steps ``g^j`` once and reuses
    them for every query; a query then costs at most
    ``ceil(window / table_size)`` giant-step multiplications plus hash
    lookups.  ``table_size`` defaults to the full window when that fits
    under :data:`DENSE_TABLE_CAP` (making queries O(1)), else to the
    larger of the cap and the classic ``ceil(sqrt(window))`` balance.
    """

    def __init__(self, group: SchnorrGroup, bound: int,
                 table_size: int | None = None):
        if bound < 0:
            raise ValueError("bound must be non-negative")
        if 2 * bound + 1 >= group.q:
            raise ValueError("search window exceeds the group order")
        self.group = group
        self.bound = bound
        window = 2 * bound + 1
        if table_size is None:
            classic = math.isqrt(window - 1) + 1
            table_size = min(window, max(classic, DENSE_TABLE_CAP))
        self.table_size = max(1, table_size)
        self._baby_steps = self._build_table()
        # giant step multiplies by g^{-table_size}
        self._giant_step = group.exp(group.g, -self.table_size)
        self._max_giant_steps = (window + self.table_size - 1) // self.table_size
        # window-shift element g^bound, reused by every solve() query
        self._shift = group.gexp(self.bound)

    def _build_table(self) -> dict[int, int]:
        table: dict[int, int] = {}
        element = 1
        g, p = self.group.g, self.group.p
        for j in range(self.table_size):
            table.setdefault(element, j)
            element = element * g % p
        return table

    def solve(self, h: int) -> int:
        """Return the signed exponent ``m`` with ``g^m == h``.

        Raises:
            DiscreteLogError: when no exponent in ``[-bound, bound]`` works.
        """
        # Shift the window to [0, 2*bound]: search m' with g^{m'} = h * g^{bound}.
        gamma = self.group.mul(h, self._shift)
        p = self.group.p
        for i in range(self._max_giant_steps + 1):
            j = self._baby_steps.get(gamma)
            if j is not None:
                shifted = i * self.table_size + j
                candidate = shifted - self.bound
                if -self.bound <= candidate <= self.bound:
                    return candidate
            gamma = gamma * self._giant_step % p
        raise DiscreteLogError(
            f"no discrete log within [-{self.bound}, {self.bound}]"
        )

    def solve_nonneg(self, h: int) -> int:
        """Like :meth:`solve` but requires the result to be non-negative."""
        value = self.solve(h)
        if value < 0:
            raise DiscreteLogError(f"expected non-negative exponent, got {value}")
        return value


def discrete_log_linear(group: SchnorrGroup, h: int, bound: int) -> int:
    """Exhaustive-scan fallback used to cross-check BSGS in tests.

    Linear in ``bound``; only use for tiny windows.
    """
    if h == 1:
        return 0
    acc_pos = 1
    acc_neg = 1
    g_inv = group.inv(group.g)
    for m in range(1, bound + 1):
        acc_pos = group.mul(acc_pos, group.g)
        if acc_pos == h:
            return m
        acc_neg = group.mul(acc_neg, g_inv)
        if acc_neg == h:
            return -m
    raise DiscreteLogError(f"no discrete log within [-{bound}, {bound}]")


class SolverCache:
    """Per-(group, bound) cache of :class:`DlogSolver` instances.

    Building the baby-step table is the expensive part of decryption;
    training touches the same handful of bounds over and over, so the
    secure-computation layer routes all dlog queries through one of these.
    """

    def __init__(self) -> None:
        self._solvers: dict[tuple[int, int, int], DlogSolver] = {}

    def get(self, group: SchnorrGroup, bound: int) -> DlogSolver:
        key = (group.p, group.g, bound)
        solver = self._solvers.get(key)
        if solver is None:
            solver = DlogSolver(group, bound)
            self._solvers[key] = solver
        return solver

    def clear(self) -> None:
        self._solvers.clear()

    def __len__(self) -> int:
        return len(self._solvers)


#: Process-wide default cache.  Library code accepts an explicit cache for
#: isolation (tests) but falls back to this shared one.
GLOBAL_SOLVER_CACHE = SolverCache()
