"""Bounded discrete-logarithm recovery.

Decryption in both FEIP and FEBO yields ``g ** m mod p`` and must recover
the exponent ``m``.  This is feasible exactly because the plaintext result
of the permitted function is small and bounded -- the paper points at the
baby-step giant-step (BSGS) algorithm [26].  We implement BSGS over a
*signed* interval ``[-bound, bound]`` with a reusable baby-step table so
that the (dominant) table construction is amortized across the thousands
of decryptions a single training iteration performs.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from collections.abc import Sequence

from repro.mathutils.group import SchnorrGroup
from repro.obs.metrics import GLOBAL_REGISTRY


class DiscreteLogError(ValueError):
    """Raised when no exponent within the search bound matches.

    In practice this signals either a plaintext that overflowed the
    declared bound (fixed-point scale too large) or a tampered/corrupt
    ciphertext, so it doubles as an integrity check.
    """


#: Default ceiling on the baby-step table.  The classic ``sqrt(window)``
#: table balances build time against a *single* query, but the solver
#: cache amortizes one build over thousands of queries, so a denser
#: table (fewer giant steps per query, O(1) solve once the whole window
#: fits) is the right trade until memory becomes the constraint.
DENSE_TABLE_CAP = 1 << 15


class DlogSolver:
    """Baby-step giant-step solver for ``g ** m = h (mod p)``, ``|m| <= bound``.

    The solver precomputes ``table_size`` baby steps ``g^j`` once and reuses
    them for every query; a query then costs at most
    ``ceil(window / table_size)`` giant-step multiplications plus hash
    lookups.  ``table_size`` defaults to the full window when that fits
    under :data:`DENSE_TABLE_CAP` (making queries O(1)), else to the
    larger of the cap and the classic ``ceil(sqrt(window))`` balance.
    """

    def __init__(self, group: SchnorrGroup, bound: int,
                 table_size: int | None = None):
        if bound < 0:
            raise ValueError("bound must be non-negative")
        if 2 * bound + 1 >= group.q:
            raise ValueError("search window exceeds the group order")
        self.group = group
        self.bound = bound
        window = 2 * bound + 1
        if table_size is None:
            classic = math.isqrt(window - 1) + 1
            table_size = min(window, max(classic, DENSE_TABLE_CAP))
        self.table_size = max(1, table_size)
        self._baby_steps = self._build_table()
        # giant step multiplies by g^{-table_size}
        self._giant_step = group.exp(group.g, -self.table_size)
        self._max_giant_steps = (window + self.table_size - 1) // self.table_size
        # window-shift element g^bound, reused by every solve() query
        self._shift = group.gexp(self.bound)

    def _build_table(self) -> dict[int, int]:
        table: dict[int, int] = {}
        element = 1
        g, p = self.group.g, self.group.p
        for j in range(self.table_size):
            table.setdefault(element, j)
            element = element * g % p
        return table

    def solve(self, h: int) -> int:
        """Return the signed exponent ``m`` with ``g^m == h``.

        Raises:
            DiscreteLogError: when no exponent in ``[-bound, bound]`` works.
        """
        # Shift the window to [0, 2*bound]: search m' with g^{m'} = h * g^{bound}.
        gamma = self.group.mul(h, self._shift)
        p = self.group.p
        for i in range(self._max_giant_steps + 1):
            j = self._baby_steps.get(gamma)
            if j is not None:
                shifted = i * self.table_size + j
                candidate = shifted - self.bound
                if -self.bound <= candidate <= self.bound:
                    return candidate
            gamma = gamma * self._giant_step % p
        raise DiscreteLogError(
            f"no discrete log within [-{self.bound}, {self.bound}]"
        )

    def solve_nonneg(self, h: int) -> int:
        """Like :meth:`solve` but requires the result to be non-negative."""
        value = self.solve(h)
        if value < 0:
            raise DiscreteLogError(f"expected non-negative exponent, got {value}")
        return value

    def solve_many(self, elements: Sequence[int]) -> list[int]:
        """Solve a whole batch of targets, sharing one giant-step walk.

        Targets are deduplicated first (a decryption matrix repeats
        values whenever two rows agree), then all still-unsolved gammas
        advance through the giant-step stride together, dropping out as
        they hit the baby-step table -- one shared walk loop for the m
        dlogs of a column instead of m restarts.  Under the dense-table
        fast path (the whole window fits in the table, so every query is
        one lookup) batching buys nothing and each element goes through
        :meth:`solve` directly.

        Raises:
            DiscreteLogError: when any element has no exponent in
                ``[-bound, bound]`` -- same contract as :meth:`solve`.
        """
        elements = [int(h) for h in elements]
        if not elements:
            return []
        window = 2 * self.bound + 1
        if self.table_size >= window:
            return [self.solve(h) for h in elements]
        # dedup: equal targets share one walk and one result
        solved: dict[int, int] = {}
        p = self.group.p
        shift = self._shift
        pending: dict[int, int] = {}  # target h -> current gamma
        for h in elements:
            if h not in pending:
                pending[h] = h * shift % p
        baby = self._baby_steps
        giant = self._giant_step
        table_size, bound = self.table_size, self.bound
        for i in range(self._max_giant_steps + 1):
            if not pending:
                break
            base_shift = i * table_size - bound
            still: dict[int, int] = {}
            for h, gamma in pending.items():
                j = baby.get(gamma)
                if j is not None:
                    candidate = base_shift + j
                    if -bound <= candidate <= bound:
                        solved[h] = candidate
                        continue
                still[h] = gamma * giant % p
            pending = still
        if pending:
            raise DiscreteLogError(
                f"{len(pending)} of {len(elements)} targets have no "
                f"discrete log within [-{self.bound}, {self.bound}]"
            )
        return [solved[h] for h in elements]


def discrete_log_linear(group: SchnorrGroup, h: int, bound: int) -> int:
    """Exhaustive-scan fallback used to cross-check BSGS in tests.

    Linear in ``bound``; only use for tiny windows.
    """
    if h == 1:
        return 0
    acc_pos = 1
    acc_neg = 1
    g_inv = group.inv(group.g)
    for m in range(1, bound + 1):
        acc_pos = group.mul(acc_pos, group.g)
        if acc_pos == h:
            return m
        acc_neg = group.mul(acc_neg, g_inv)
        if acc_neg == h:
            return -m
    raise DiscreteLogError(f"no discrete log within [-{bound}, {bound}]")


#: Entry cap of the process-wide :data:`GLOBAL_SOLVER_CACHE`.  Each dense
#: solver can pin up to :data:`DENSE_TABLE_CAP` group elements, so a
#: long-lived service meeting many distinct bounds (every new tenant or
#: layer shape introduces one) would otherwise grow without limit --
#: the same reason ``FIXED_BASE_CACHE_ENTRIES`` bounds the comb tables.
#: Unlike the comb budget (which stops building), stale *solvers* are
#: safe to LRU-evict: a rebuilt baby-step table is slow, not wrong.
GLOBAL_SOLVER_CACHE_ENTRIES = 64


class SolverCache:
    """Per-(group, bound) cache of :class:`DlogSolver` instances.

    Building the baby-step table is the expensive part of decryption;
    training touches the same handful of bounds over and over, so the
    secure-computation layer routes all dlog queries through one of these.

    ``max_entries`` bounds the cache with least-recently-used eviction;
    the default (None) keeps it unbounded, which is what in-process
    experiments with a handful of bounds want.

    The map and the ``hits``/``builds``/``evictions`` counters are
    guarded by one lock: :data:`GLOBAL_SOLVER_CACHE` is shared
    process-wide (every decrypting thread routes through it) and the
    metrics registry scrapes the counters from an arbitrary thread, so
    both the LRU bookkeeping and the scrape need a consistent view --
    the same treatment ``pool.stats`` and the engine stats got in PR 7.
    Table *construction* happens under the lock too, which also stops
    two threads racing to build the same expensive baby-step table.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.max_entries = max_entries
        self.hits = 0
        self.builds = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._solvers: OrderedDict[tuple[int, int, int], DlogSolver] = \
            OrderedDict()

    def get(self, group: SchnorrGroup, bound: int) -> DlogSolver:
        key = (group.p, group.g, bound)
        with self._lock:
            solver = self._solvers.get(key)
            if solver is None:
                self.builds += 1
                solver = DlogSolver(group, bound)
                self._solvers[key] = solver
                if self.max_entries is not None:
                    while len(self._solvers) > self.max_entries:
                        self._solvers.popitem(last=False)
                        self.evictions += 1
            else:
                self.hits += 1
                self._solvers.move_to_end(key)
            return solver

    def clear(self) -> None:
        with self._lock:
            self._solvers.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._solvers)

    def stats(self) -> dict[str, int]:
        """Consistent counter snapshot (one lock acquisition)."""
        with self._lock:
            return {
                "entries": len(self._solvers),
                "hits": self.hits,
                "builds": self.builds,
                "evictions": self.evictions,
            }


#: Process-wide default cache.  Library code accepts an explicit cache for
#: isolation (tests) but falls back to this shared one; it is bounded so
#: long-lived services cannot accumulate dlog tables indefinitely.
GLOBAL_SOLVER_CACHE = SolverCache(max_entries=GLOBAL_SOLVER_CACHE_ENTRIES)


def _collect_global_solver_cache() -> dict[str, int]:
    stats = GLOBAL_SOLVER_CACHE.stats()
    return {
        "repro_dlog_solver_cache_entries": stats["entries"],
        "repro_dlog_solver_cache_hits_total": stats["hits"],
        "repro_dlog_solver_cache_builds_total": stats["builds"],
        "repro_dlog_solver_cache_evictions_total": stats["evictions"],
    }


GLOBAL_REGISTRY.register_collector(
    "dlog.global_solver_cache", _collect_global_solver_cache)
