"""Fast modular exponentiation for the CryptoNN hot path.

Every expensive step of both FE schemes is a modular exponentiation:
``g^r`` / ``h_i^r`` during encryption, ``prod_i ct_i^{y_i}`` during
decryption, ``g^{s_i}`` during setup.  Two classical structures exploit
the reuse patterns of those exponentiations:

* :class:`FixedBaseExp` -- a fixed-base windowed table ("comb") for a
  base that is exponentiated thousands of times (``g``, the public
  ``h_i``).  After a one-time precomputation of ``ceil(bits/w) * 2^w``
  group elements, each exponentiation costs at most ``ceil(bits/w)``
  modular multiplications instead of a full square-and-multiply chain.
* :func:`multiexp` -- simultaneous multi-exponentiation (interleaved
  fixed windows, a generalization of Shamir's trick) for products
  ``prod_i b_i^{e_i}`` over *fresh* bases, sharing one squaring chain
  across all terms.  Signed exponents are handled by splitting the
  product by sign and paying a single modular inversion, which keeps
  small negative exponents small instead of reducing them to full-width
  residues mod the group order.

Both are pure Python over ``int``; they beat CPython's C ``pow`` only
because they do asymptotically less work, so the window parameters are
chosen from measured crossover points (see
``benchmarks/bench_ablation_fastexp.py``).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.mathutils.modarith import mod_inverse

#: Exponent bit-width at or below which a plain ``pow`` loop beats the
#: interleaved multi-exponentiation (C pow on a tiny exponent costs less
#: than the Python-level bookkeeping of a shared window walk).
NAIVE_MULTIEXP_BITS = 16


def _comb_window(bits: int) -> int:
    """Default comb window width for an exponent of ``bits`` bits.

    Wider windows cost exponentially more precomputation but only
    linearly fewer multiplications per call; these break-evens were
    measured on 256-bit operands.
    """
    if bits >= 192:
        return 8
    if bits >= 96:
        return 7
    return 5


class FixedBaseExp:
    """Precomputed fixed-base exponentiation ``base ** e mod modulus``.

    The table stores ``base ** (d * 2^(i*w))`` for every window index
    ``i`` and digit ``d``; an exponentiation is then one table lookup
    plus one multiplication per non-zero window digit.  Exponents are
    reduced into ``[0, order)`` first, so callers may pass negative or
    oversized exponents exactly as with :meth:`SchnorrGroup.exp`.
    """

    def __init__(self, base: int, modulus: int, order: int,
                 window: int | None = None):
        if modulus <= 1:
            raise ValueError("modulus must be > 1")
        if order <= 0:
            raise ValueError("order must be positive")
        self.base = base % modulus
        self.modulus = modulus
        self.order = order
        bits = order.bit_length()
        self.window = _comb_window(bits) if window is None else window
        if self.window < 1:
            raise ValueError("window must be >= 1")
        self._mask = (1 << self.window) - 1
        self.num_windows = (bits + self.window - 1) // self.window
        self._tables = self._build_tables()

    def _build_tables(self) -> list[list[int]]:
        modulus = self.modulus
        per_window = 1 << self.window
        tables: list[list[int]] = []
        step = self.base
        for _ in range(self.num_windows):
            row = [1] * per_window
            acc = 1
            for d in range(1, per_window):
                acc = acc * step % modulus
                row[d] = acc
            tables.append(row)
            step = acc * step % modulus  # step ** 2^window
        return tables

    def pow(self, exponent: int) -> int:
        """Return ``base ** exponent mod modulus`` (exponent in Z_order)."""
        e = exponent % self.order
        result = 1
        modulus = self.modulus
        window, mask = self.window, self._mask
        i = 0
        while e:
            d = e & mask
            if d:
                result = result * self._tables[i][d] % modulus
            e >>= window
            i += 1
        return result

    __call__ = pow

    @property
    def table_entries(self) -> int:
        """Total precomputed group elements (memory footprint proxy)."""
        return self.num_windows * (1 << self.window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FixedBaseExp(bits={self.order.bit_length()}, "
                f"window={self.window}, entries={self.table_entries})")


def _multiexp_window(max_bits: int, n_bases: int) -> int:
    """Pick the interleaved window width minimizing total multiplications.

    Cost model per base: ``2^w - 1`` precomputed powers plus one
    multiplication per non-zero window digit (``~ceil(max_bits/w)``),
    against a shared chain of ``max_bits`` squarings that does not
    depend on ``w``.
    """
    best_w, best_cost = 1, None
    for w in range(1, 9):
        cost = n_bases * ((1 << w) - 1 + (max_bits + w - 1) // w)
        if best_cost is None or cost < best_cost:
            best_w, best_cost = w, cost
    return best_w


def _multiexp_nonneg(pairs: list[tuple[int, int]], modulus: int) -> int:
    """``prod b^e mod modulus`` for non-negative exponents (interleaved)."""
    if not pairs:
        return 1
    max_bits = max(e.bit_length() for _, e in pairs)
    if max_bits == 0:
        return 1
    if max_bits <= NAIVE_MULTIEXP_BITS and len(pairs) < 32:
        result = 1
        for base, e in pairs:
            result = result * pow(base, e, modulus) % modulus
        return result
    w = _multiexp_window(max_bits, len(pairs))
    mask = (1 << w) - 1
    num_windows = (max_bits + w - 1) // w
    # odd/even powers 1..2^w-1 of every base
    tables = []
    for base, _ in pairs:
        row = [1] * (1 << w)
        acc = 1
        for d in range(1, 1 << w):
            acc = acc * base % modulus
            row[d] = acc
        tables.append(row)
    exponents = [e for _, e in pairs]
    acc = 1
    for k in range(num_windows - 1, -1, -1):
        if k != num_windows - 1:
            for _ in range(w):
                acc = acc * acc % modulus
        shift = k * w
        for row, e in zip(tables, exponents):
            d = (e >> shift) & mask
            if d:
                acc = acc * row[d] % modulus
    return acc


def multiexp(bases: Sequence[int], exponents: Sequence[int], modulus: int,
             order: int | None = None) -> int:
    """Return ``prod_i bases[i] ** exponents[i] mod modulus``.

    Exponents may be negative or exceed ``order``; when ``order`` is
    given they are first reduced to the *balanced* representation in
    ``(-order/2, order/2]``, which is only valid when every base lies in
    a subgroup whose order divides ``order`` (always true for Schnorr
    subgroup elements).  The negative-exponent part is accumulated as a
    positive product and folded in with one modular inversion, so small
    signed exponents -- the typical encoded-weight case -- never pay
    full-width exponentiations.
    """
    if len(bases) != len(exponents):
        raise ValueError("bases and exponents must have equal length")
    positive: list[tuple[int, int]] = []
    negative: list[tuple[int, int]] = []
    for base, e in zip(bases, exponents):
        e = int(e)
        if order is not None:
            e %= order
            if e > order // 2:
                e -= order
        if e == 0 or base == 1:
            continue
        if e > 0:
            positive.append((base % modulus, e))
        else:
            negative.append((base % modulus, -e))
    result = _multiexp_nonneg(positive, modulus)
    if negative:
        denom = _multiexp_nonneg(negative, modulus)
        result = result * mod_inverse(denom, modulus) % modulus
    return result
