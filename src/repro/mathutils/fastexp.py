"""Fast modular exponentiation for the CryptoNN hot path.

Every expensive step of both FE schemes is a modular exponentiation:
``g^r`` / ``h_i^r`` during encryption, ``prod_i ct_i^{y_i}`` during
decryption, ``g^{s_i}`` during setup.  Two classical structures exploit
the reuse patterns of those exponentiations:

* :class:`FixedBaseExp` -- a fixed-base windowed table ("comb") for a
  base that is exponentiated thousands of times (``g``, the public
  ``h_i``).  After a one-time precomputation of ``ceil(bits/w) * 2^w``
  group elements, each exponentiation costs at most ``ceil(bits/w)``
  modular multiplications instead of a full square-and-multiply chain.
* :func:`multiexp` -- simultaneous multi-exponentiation (interleaved
  fixed windows, a generalization of Shamir's trick) for products
  ``prod_i b_i^{e_i}`` over *fresh* bases, sharing one squaring chain
  across all terms.  Signed exponents are handled by splitting the
  product by sign and paying a single modular inversion, which keeps
  small negative exponents small instead of reducing them to full-width
  residues mod the group order.
* :class:`SharedBaseMultiExp` -- the batched form of the same product
  when *many* exponent vectors hit the *same* base tuple, which is
  exactly the shape of FEIP matrix decryption: every row key of ``W x``
  evaluates against the one column ciphertext ``(ct_0, ct_1..ct_eta)``.
  The context builds per-base odd-power window tables once (signed
  digits, with inverse tables batch-inverted on first use) plus an
  amortized fixed-base comb for ``ct_0``, then
  :meth:`~SharedBaseMultiExp.eval_many` walks one recoding/squaring
  chain per row against the shared tables -- m rows pay one table
  build instead of m.

Both are pure Python over ``int``; they beat CPython's C ``pow`` only
because they do asymptotically less work, so the window parameters are
chosen from measured crossover points (see
``benchmarks/bench_ablation_fastexp.py``).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.mathutils.modarith import batch_inverse, mod_inverse

#: Exponent bit-width at or below which a plain ``pow`` loop beats the
#: interleaved multi-exponentiation (C pow on a tiny exponent costs less
#: than the Python-level bookkeeping of a shared window walk).
NAIVE_MULTIEXP_BITS = 16

#: Below this modulus size C ``pow`` beats any Python-level table walk,
#: so :class:`SharedBaseMultiExp` evaluates rows through per-row
#: :func:`multiexp` instead of building shared tables (same policy as
#: ``FIXED_BASE_MIN_BITS`` on :class:`SchnorrGroup`).
SHARED_TABLE_MIN_BITS = 64

#: Exponent bit-width at or below which the shared window walk stops
#: paying for its recoding overhead and per-row :func:`multiexp` (which
#: bottoms out in tiny C ``pow`` calls) wins.
SHARED_NAIVE_BITS = 4

#: Minimum row count before the per-context fixed-base comb (the
#: ``ct_0`` table) amortizes its build cost over the batch; below it a
#: plain full-width ``pow`` per row is cheaper.
SHARED_FIXED_BASE_MIN_ROWS = 8


def _comb_window(bits: int) -> int:
    """Default comb window width for an exponent of ``bits`` bits.

    Wider windows cost exponentially more precomputation but only
    linearly fewer multiplications per call; these break-evens were
    measured on 256-bit operands.
    """
    if bits >= 192:
        return 8
    if bits >= 96:
        return 7
    return 5


class FixedBaseExp:
    """Precomputed fixed-base exponentiation ``base ** e mod modulus``.

    The table stores ``base ** (d * 2^(i*w))`` for every window index
    ``i`` and digit ``d``; an exponentiation is then one table lookup
    plus one multiplication per non-zero window digit.  Exponents are
    reduced into ``[0, order)`` first, so callers may pass negative or
    oversized exponents exactly as with :meth:`SchnorrGroup.exp`.
    """

    def __init__(self, base: int, modulus: int, order: int,
                 window: int | None = None):
        if modulus <= 1:
            raise ValueError("modulus must be > 1")
        if order <= 0:
            raise ValueError("order must be positive")
        self.base = base % modulus
        self.modulus = modulus
        self.order = order
        bits = order.bit_length()
        self.window = _comb_window(bits) if window is None else window
        if self.window < 1:
            raise ValueError("window must be >= 1")
        self._mask = (1 << self.window) - 1
        self.num_windows = (bits + self.window - 1) // self.window
        self._tables = self._build_tables()

    def _build_tables(self) -> list[list[int]]:
        modulus = self.modulus
        per_window = 1 << self.window
        tables: list[list[int]] = []
        step = self.base
        for _ in range(self.num_windows):
            row = [1] * per_window
            acc = 1
            for d in range(1, per_window):
                acc = acc * step % modulus
                row[d] = acc
            tables.append(row)
            step = acc * step % modulus  # step ** 2^window
        return tables

    def pow(self, exponent: int) -> int:
        """Return ``base ** exponent mod modulus`` (exponent in Z_order)."""
        e = exponent % self.order
        result = 1
        modulus = self.modulus
        window, mask = self.window, self._mask
        i = 0
        while e:
            d = e & mask
            if d:
                result = result * self._tables[i][d] % modulus
            e >>= window
            i += 1
        return result

    __call__ = pow

    @property
    def table_entries(self) -> int:
        """Total precomputed group elements (memory footprint proxy)."""
        return self.num_windows * (1 << self.window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FixedBaseExp(bits={self.order.bit_length()}, "
                f"window={self.window}, entries={self.table_entries})")


def _multiexp_window(max_bits: int, n_bases: int) -> int:
    """Pick the interleaved window width minimizing total multiplications.

    Cost model per base: ``2^w - 1`` precomputed powers plus one
    multiplication per non-zero window digit (``~ceil(max_bits/w)``),
    against a shared chain of ``max_bits`` squarings that does not
    depend on ``w``.
    """
    best_w, best_cost = 1, None
    for w in range(1, 9):
        cost = n_bases * ((1 << w) - 1 + (max_bits + w - 1) // w)
        if best_cost is None or cost < best_cost:
            best_w, best_cost = w, cost
    return best_w


def _multiexp_nonneg(pairs: list[tuple[int, int]], modulus: int) -> int:
    """``prod b^e mod modulus`` for non-negative exponents (interleaved)."""
    if not pairs:
        return 1
    max_bits = max(e.bit_length() for _, e in pairs)
    if max_bits == 0:
        return 1
    if max_bits <= NAIVE_MULTIEXP_BITS and len(pairs) < 32:
        result = 1
        for base, e in pairs:
            result = result * pow(base, e, modulus) % modulus
        return result
    w = _multiexp_window(max_bits, len(pairs))
    mask = (1 << w) - 1
    num_windows = (max_bits + w - 1) // w
    # odd/even powers 1..2^w-1 of every base
    tables = []
    for base, _ in pairs:
        row = [1] * (1 << w)
        acc = 1
        for d in range(1, 1 << w):
            acc = acc * base % modulus
            row[d] = acc
        tables.append(row)
    exponents = [e for _, e in pairs]
    acc = 1
    for k in range(num_windows - 1, -1, -1):
        if k != num_windows - 1:
            for _ in range(w):
                acc = acc * acc % modulus
        shift = k * w
        for row, e in zip(tables, exponents):
            d = (e >> shift) & mask
            if d:
                acc = acc * row[d] % modulus
    return acc


def multiexp(bases: Sequence[int], exponents: Sequence[int], modulus: int,
             order: int | None = None) -> int:
    """Return ``prod_i bases[i] ** exponents[i] mod modulus``.

    Exponents may be negative or exceed ``order``; when ``order`` is
    given they are first reduced to the *balanced* representation in
    ``(-order/2, order/2]``, which is only valid when every base lies in
    a subgroup whose order divides ``order`` (always true for Schnorr
    subgroup elements).  The negative-exponent part is accumulated as a
    positive product and folded in with one modular inversion, so small
    signed exponents -- the typical encoded-weight case -- never pay
    full-width exponentiations.
    """
    if len(bases) != len(exponents):
        raise ValueError("bases and exponents must have equal length")
    positive: list[tuple[int, int]] = []
    negative: list[tuple[int, int]] = []
    for base, e in zip(bases, exponents):
        e = int(e)
        if order is not None:
            e %= order
            if e > order // 2:
                e -= order
        if e == 0 or base == 1:
            continue
        if e > 0:
            positive.append((base % modulus, e))
        else:
            negative.append((base % modulus, -e))
    result = _multiexp_nonneg(positive, modulus)
    if negative:
        denom = _multiexp_nonneg(negative, modulus)
        result = result * mod_inverse(denom, modulus) % modulus
    return result


def amortized_comb_window(bits: int, uses: int) -> int:
    """Comb window minimizing build + ``uses`` evaluations.

    :func:`_comb_window` optimizes for a base reused thousands of times
    (``g``, the ``h_i``); a per-column ``ct_0`` table is only reused by
    the m rows of one decryption batch, so the build cost must be
    weighed against the batch size -- small batches want narrow windows.
    """
    best_w, best_cost = 1, None
    for w in range(1, 11):
        num_windows = (bits + w - 1) // w
        cost = num_windows * ((1 << w) - 1 + uses)
        if best_cost is None or cost < best_cost:
            best_w, best_cost = w, cost
    return best_w


def _shared_window(max_bits: int, n_bases: int, rows: int) -> int:
    """Odd-power window width for a shared-base batch.

    Cost model: ``2^(w-1)`` precomputed odd powers per base amortized
    over the batch, against roughly ``max_bits / (w + 1)`` non-zero
    sliding-window digits per base per row.
    """
    rows = max(rows, 1)
    best_w, best_cost = 1, None
    for w in range(1, 9):
        build = n_bases * (1 << (w - 1))
        per_row = n_bases * (max_bits / (w + 1) + 1)
        cost = build + rows * per_row
        if best_cost is None or cost < best_cost:
            best_w, best_cost = w, cost
    return best_w


class SharedBaseMultiExp:
    """Batched multi-exponentiation over one shared tuple of bases.

    Built for the decryption matrix of a secure dot product: a column
    ciphertext fixes the bases ``(ct_1..ct_eta)`` (plus ``ct_0``), and
    every row key contributes one signed exponent vector.  Per base the
    context stores the odd powers ``b, b^3, .., b^(2^w - 1)`` once;
    :meth:`eval_many` then recodes each row into sliding odd-digit
    windows and walks one squaring chain per row, so the per-base table
    builds -- the part :func:`multiexp` repays on every call -- are paid
    once per column instead of once per row.  Negative digits read from
    inverse tables produced lazily by one Montgomery batch inversion.

    The optional ``fixed_base`` (FEIP's ``ct_0``) gets a
    :class:`FixedBaseExp` comb sized by :func:`amortized_comb_window`
    for the expected batch, because its exponents (``-sk_f``) are
    full-width scalars for which the shared small-digit walk is wrong.

    Toy moduli (< :data:`SHARED_TABLE_MIN_BITS` bits) and tiny exponent
    batches fall back to per-row :func:`multiexp`, which bottoms out in
    C ``pow`` -- the same crossover policy the rest of the engine uses.
    Results are exact integers either way; only the schedule changes.
    """

    def __init__(self, bases: Sequence[int], modulus: int,
                 order: int | None = None, fixed_base: int | None = None,
                 rows_hint: int | None = None, window: int | None = None):
        if modulus <= 1:
            raise ValueError("modulus must be > 1")
        if window is not None and window < 1:
            raise ValueError("window must be >= 1")
        self.bases = [b % modulus for b in bases]
        self.modulus = modulus
        self.order = order
        self.rows_hint = rows_hint
        self.fixed_base = fixed_base % modulus if fixed_base is not None \
            else None
        self._forced_window = window
        self.window: int | None = None
        self._tables: list[list[int]] | None = None
        self._inv_tables: list[list[int]] | None = None
        self._fixed_table: FixedBaseExp | None = None
        self._fixed_decided = False

    # -- table management -----------------------------------------------------
    def _use_tables(self, max_bits: int) -> bool:
        if self._forced_window is not None:
            return True
        return (self.modulus.bit_length() >= SHARED_TABLE_MIN_BITS
                and max_bits > SHARED_NAIVE_BITS
                and bool(self.bases))

    def _ensure_tables(self, max_bits: int, n_rows: int) -> None:
        if self._tables is not None:
            return
        w = self._forced_window or _shared_window(
            max_bits, len(self.bases), self.rows_hint or n_rows)
        self.window = w
        modulus = self.modulus
        tables: list[list[int]] = []
        for base in self.bases:
            sq = base * base % modulus
            row = [base]
            acc = base
            for _ in range((1 << (w - 1)) - 1):
                acc = acc * sq % modulus
                row.append(acc)
            tables.append(row)  # row[k] == base ** (2k + 1)
        self._tables = tables

    def _ensure_inverse_tables(self) -> list[list[int]]:
        if self._inv_tables is None:
            # one gcd for every entry of every table (Montgomery trick)
            flat = [entry for row in self._tables for entry in row]
            inv_flat = batch_inverse(flat, self.modulus)
            per = len(self._tables[0]) if self._tables else 0
            self._inv_tables = [inv_flat[i * per:(i + 1) * per]
                                for i in range(len(self._tables))]
        return self._inv_tables

    def _fixed_pow(self, exponent: int, n_rows: int) -> int:
        if not self._fixed_decided:
            self._fixed_decided = True
            uses = self.rows_hint or n_rows
            if (self.order is not None
                    and self.modulus.bit_length() >= SHARED_TABLE_MIN_BITS
                    and uses >= SHARED_FIXED_BASE_MIN_ROWS):
                self._fixed_table = FixedBaseExp(
                    self.fixed_base, self.modulus, self.order,
                    window=amortized_comb_window(self.order.bit_length(),
                                                 uses))
        if self._fixed_table is not None:
            return self._fixed_table.pow(exponent)
        if self.order is not None:
            exponent %= self.order
        return pow(self.fixed_base, exponent, self.modulus)

    # -- evaluation -----------------------------------------------------------
    def _reduce(self, e: int) -> int:
        e = int(e)
        if self.order is not None:
            e %= self.order
            if e > self.order // 2:
                e -= self.order
        return e

    def _eval_row(self, exponents: list[int]) -> int:
        """One signed row against the shared tables (sliding odd digits)."""
        w = self.window
        mask = (1 << w) - 1
        modulus = self.modulus
        events: dict[int, list[int]] = {}
        top = -1
        inv_tables = None
        for idx, e in enumerate(exponents):
            if e == 0:
                continue
            if e > 0:
                table = self._tables[idx]
            else:
                if inv_tables is None:
                    inv_tables = self._ensure_inverse_tables()
                table = inv_tables[idx]
                e = -e
            pos = 0
            while e:
                tz = (e & -e).bit_length() - 1
                e >>= tz
                pos += tz
                digit = e & mask  # odd, < 2^w
                events.setdefault(pos, []).append(table[digit >> 1])
                e >>= w
                pos += w
            if pos - 1 > top:
                top = pos - 1
        if top < 0:
            return 1
        acc = 1
        for k in range(top, -1, -1):
            if k != top:
                acc = acc * acc % modulus
            hits = events.get(k)
            if hits:
                for element in hits:
                    acc = acc * element % modulus
        return acc

    def eval_many(self, rows: Sequence[Sequence[int]],
                  fixed_exponents: Sequence[int] | None = None) -> list[int]:
        """Return ``[prod_j bases[j] ** rows[i][j] mod modulus]`` per row.

        With ``fixed_exponents`` given (one scalar per row), each result
        is additionally multiplied by ``fixed_base ** fixed_exponents[i]``
        through the amortized comb -- the ``ct_0^{-sk}`` half of FEIP
        decryption.  Exponents may be signed or exceed ``order`` exactly
        as with :func:`multiexp`.
        """
        rows = [list(row) for row in rows]
        for row in rows:
            if len(row) != len(self.bases):
                raise ValueError(
                    f"row length {len(row)} != base count {len(self.bases)}")
        if fixed_exponents is not None:
            if self.fixed_base is None:
                raise ValueError("fixed_exponents given without a fixed_base")
            if len(fixed_exponents) != len(rows):
                raise ValueError(
                    "fixed_exponents must supply one exponent per row")
        reduced = [[self._reduce(e) for e in row] for row in rows]
        max_bits = max((abs(e).bit_length() for row in reduced for e in row),
                       default=0)
        if max_bits and self._use_tables(max_bits):
            self._ensure_tables(max_bits, len(rows))
            results = [self._eval_row(row) for row in reduced]
        else:
            results = [multiexp(self.bases, row, self.modulus,
                                order=self.order) for row in reduced]
        if fixed_exponents is not None:
            modulus = self.modulus
            results = [
                value * self._fixed_pow(int(fe), len(rows)) % modulus
                for value, fe in zip(results, fixed_exponents)
            ]
        return results

    def eval(self, exponents: Sequence[int],
             fixed_exponent: int | None = None) -> int:
        """Single-row convenience wrapper over :meth:`eval_many`."""
        fixed = None if fixed_exponent is None else [fixed_exponent]
        return self.eval_many([exponents], fixed_exponents=fixed)[0]
