"""Modular-arithmetic helpers shared by the crypto substrate."""

from __future__ import annotations


def extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    """Return ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def mod_inverse(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``.

    Raises:
        ValueError: if ``gcd(a, m) != 1`` (no inverse exists).
    """
    g, x, _ = extended_gcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


def batch_inverse(values: list[int], m: int) -> list[int]:
    """Invert many residues modulo ``m`` with a single extended gcd.

    Montgomery's trick: one :func:`mod_inverse` of the running product
    plus three multiplications per element, instead of one gcd each --
    the gcd is ~85x the cost of a multiplication at 256 bits, so this is
    what makes signed-digit tables affordable in
    :class:`repro.mathutils.fastexp.SharedBaseMultiExp`.

    Raises:
        ValueError: if any value shares a factor with ``m``.
    """
    if not values:
        return []
    prefix = []
    acc = 1
    for v in values:
        acc = acc * v % m
        prefix.append(acc)
    inv = mod_inverse(acc, m)
    out: list[int] = [0] * len(values)
    for i in range(len(values) - 1, 0, -1):
        out[i] = prefix[i - 1] * inv % m
        inv = inv * (values[i] % m) % m
    out[0] = inv
    return out


def jacobi_symbol(a: int, n: int) -> int:
    """Return the Jacobi symbol ``(a/n)`` for odd ``n > 0``.

    For prime ``n`` this is the Legendre symbol: 1 when ``a`` is a
    quadratic residue mod ``n``, -1 when it is not, 0 when ``n``
    divides ``a``.  Binary quadratic-reciprocity algorithm -- O(log^2)
    bit operations, two orders of magnitude cheaper than the
    ``pow(a, q, p)`` subgroup test at 256 bits, which is what makes
    per-element ciphertext validation affordable on the ingestion path.

    Raises:
        ValueError: if ``n`` is even or not positive.
    """
    if n <= 0 or n % 2 == 0:
        raise ValueError("Jacobi symbol requires an odd positive modulus")
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def mod_sub(a: int, b: int, m: int) -> int:
    """Return ``(a - b) mod m`` with a non-negative result."""
    return (a - b) % m


def int_to_signed(value: int, modulus: int) -> int:
    """Map a residue in ``[0, modulus)`` to the signed window.

    Residues below ``modulus // 2`` are returned as-is; larger residues are
    interpreted as negative (``value - modulus``).  This is the standard
    balanced representation used by the fixed-point codec.
    """
    value %= modulus
    if value > modulus // 2:
        return value - modulus
    return value


def signed_to_int(value: int, modulus: int) -> int:
    """Inverse of :func:`int_to_signed`: map a signed value into Z_m."""
    return value % modulus
