"""Primality testing and prime generation.

The CryptoNN prototype relied on GMP through the Charm toolkit; here the
same functionality is provided in pure Python.  The Miller-Rabin test with
40 rounds gives an error probability below 2^-80, which matches common
cryptographic practice.
"""

from __future__ import annotations

import random

# Small primes used as a cheap trial-division filter before Miller-Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)

DEFAULT_MILLER_RABIN_ROUNDS = 40


def is_probable_prime(n: int, rounds: int = DEFAULT_MILLER_RABIN_ROUNDS,
                      rng: random.Random | None = None) -> bool:
    """Return True if ``n`` passes trial division and Miller-Rabin.

    Args:
        n: candidate integer.
        rounds: number of Miller-Rabin witnesses to try.
        rng: optional random source (useful for reproducible tests).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    rng = rng or random
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def gen_prime(bits: int, rng: random.Random | None = None) -> int:
    """Generate a random prime of exactly ``bits`` bits."""
    if bits < 2:
        raise ValueError("a prime needs at least 2 bits")
    rng = rng or random
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def gen_safe_prime(bits: int, rng: random.Random | None = None) -> tuple[int, int]:
    """Generate a safe prime ``p = 2q + 1`` of ``bits`` bits.

    Returns:
        ``(p, q)`` where both are prime and ``p`` has ``bits`` bits.

    Safe primes give a prime-order subgroup of Z_p^* of index 2 -- the
    standard setting in which the DDH assumption underlying both FEIP and
    FEBO is believed to hold.
    """
    if bits < 4:
        raise ValueError("safe primes need at least 4 bits")
    rng = rng or random
    while True:
        q = rng.getrandbits(bits - 1) | (1 << (bits - 2)) | 1
        if not is_probable_prime(q, rng=rng):
            continue
        p = 2 * q + 1
        if is_probable_prime(p, rng=rng):
            return p, q
