"""Signed fixed-point encoding of floats into group exponents.

The underlying functional encryption works on integers in Z_q, while the
neural network works on floats.  Following Section IV-B3 of the paper
("we only keep two-decimal places approximately and then transfer the
floating point number to the integer"), floats are scaled by a fixed
factor (default 100) and rounded.  Negative values use the balanced
representation of Z_q (residues above q/2 are negative).

Two scales interact during secure computation:

* element-wise FEBO ops combine two scale-``s`` operands into a scale-``s``
  result (addition/subtraction) or a scale-``s**2`` result (multiplication);
* a FEIP dot-product of two scale-``s`` vectors yields a scale-``s**2``
  result.

:class:`FixedPointCodec` tracks this explicitly so callers decode with the
correct effective scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mathutils.modarith import int_to_signed, signed_to_int

#: Scale matching the paper's "two decimal places".
PAPER_SCALE = 100


@dataclass(frozen=True)
class FixedPointCodec:
    """Encode/decode floats as scaled signed integers.

    Attributes:
        scale: multiplicative factor applied before rounding.
    """

    scale: int = PAPER_SCALE

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ValueError("scale must be >= 1")

    # -- scalar API --------------------------------------------------------------
    def encode(self, value: float) -> int:
        """Round ``value * scale`` to the nearest integer."""
        return int(round(float(value) * self.scale))

    def decode(self, value: int, power: int = 1) -> float:
        """Decode an integer produced at ``scale ** power``.

        ``power=1`` for raw encodings and additive results; ``power=2`` for
        products / dot-products of two encoded operands.
        """
        return value / float(self.scale ** power)

    # -- array API ---------------------------------------------------------------
    def encode_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`encode`; returns an object array of Python ints.

        Object dtype keeps exact arbitrary-precision integers -- int64 would
        silently overflow for large scales.
        """
        rounded = np.rint(np.asarray(values, dtype=np.float64) * self.scale)
        return np.array([int(v) for v in rounded.ravel()],
                        dtype=object).reshape(rounded.shape)

    def decode_array(self, values: np.ndarray, power: int = 1) -> np.ndarray:
        divisor = float(self.scale ** power)
        flat = [int(v) / divisor for v in np.asarray(values, dtype=object).ravel()]
        return np.array(flat, dtype=np.float64).reshape(np.shape(values))

    # -- residue mapping ----------------------------------------------------------
    def to_residue(self, value: float, modulus: int) -> int:
        """Encode and map into Z_modulus (balanced representation)."""
        return signed_to_int(self.encode(value), modulus)

    def from_residue(self, residue: int, modulus: int, power: int = 1) -> float:
        """Map a residue back to a signed integer and decode it."""
        return self.decode(int_to_signed(residue, modulus), power=power)

    # -- bound bookkeeping ----------------------------------------------------------
    def bound_for(self, max_abs_value: float, power: int = 1) -> int:
        """Smallest dlog search bound covering ``|value| <= max_abs_value``.

        ``power`` follows the same convention as :meth:`decode`.
        """
        return int(abs(max_abs_value) * (self.scale ** power)) + 1
