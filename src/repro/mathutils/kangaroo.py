"""Pollard's kangaroo (lambda) algorithm for bounded discrete logs.

An alternative to baby-step giant-step with O(sqrt(width)) *time* but
O(log width) *memory* -- attractive when the search window is large and
no table can be amortized (the one-shot decryptions of the FE-based
prediction phase, for example).  BSGS (:mod:`repro.mathutils.dlog`)
remains the default for training, where its table is reused thousands of
times; the trade-off is quantified in
``benchmarks/bench_ablation_kangaroo.py``.

The walk is deterministic given a seed; on the (rare) unlucky walk that
misses the trap, the solver retries with a reseeded jump function.
"""

from __future__ import annotations

import math

from repro.mathutils.dlog import DiscreteLogError
from repro.mathutils.group import SchnorrGroup


class KangarooSolver:
    """Solve ``g^m = h`` for signed ``m`` in ``[-bound, bound]``.

    Args:
        group: the Schnorr group.
        bound: half-width of the symmetric search interval.
        max_retries: reseeded attempts before giving up.  A miss is a
            probabilistic event (~constant probability per attempt), so a
            handful of retries makes failure negligible for honest inputs.
    """

    def __init__(self, group: SchnorrGroup, bound: int, max_retries: int = 12):
        if bound < 0:
            raise ValueError("bound must be non-negative")
        if 2 * bound + 1 >= group.q:
            raise ValueError("search window exceeds the group order")
        self.group = group
        self.bound = bound
        self.max_retries = max_retries
        width = 2 * bound + 1
        # jump set {2^0 .. 2^(k-1)} with mean ~ sqrt(width)/2
        mean_target = max(1.0, math.sqrt(width) / 2)
        k = 1
        while (2 ** k - 1) / k < mean_target and k < 64:
            k += 1
        self._jumps = [2 ** i for i in range(k)]
        # expected walk length; the tame kangaroo walks ~4x the mean-jump
        # count to build a wide enough trap region
        self._tame_steps = max(8, int(4 * math.sqrt(width)))

    def _jump_index(self, element: int, seed: int) -> int:
        return (element ^ seed) % len(self._jumps)

    def _attempt(self, h: int, seed: int) -> int | None:
        group = self.group
        lo, hi = -self.bound, self.bound
        # tame kangaroo starts at g^hi
        tame_pos = group.gexp(hi)
        tame_dist = 0
        for _ in range(self._tame_steps):
            step = self._jumps[self._jump_index(tame_pos, seed)]
            tame_pos = group.mul(tame_pos, group.gexp(step))
            tame_dist += step
        trap = tame_pos
        # wild kangaroo starts at h = g^m
        wild_pos = h
        wild_dist = 0
        limit = (hi - lo) + tame_dist
        while wild_dist <= limit:
            if wild_pos == trap:
                return hi + tame_dist - wild_dist
            step = self._jumps[self._jump_index(wild_pos, seed)]
            wild_pos = group.mul(wild_pos, group.gexp(step))
            wild_dist += step
        return None

    def solve(self, h: int) -> int:
        """Return the signed exponent, or raise :class:`DiscreteLogError`.

        Unlike BSGS, a failed attempt is ambiguous between "out of bounds"
        and "unlucky walk"; retries with independent jump functions drive
        the latter's probability to ~0 before we declare the former.
        """
        for retry in range(self.max_retries):
            seed = 0x9E3779B9 * (retry + 1)
            result = self._attempt(h, seed)
            if result is not None:
                if abs(result) <= self.bound and self.group.gexp(result) == h:
                    return result
        raise DiscreteLogError(
            f"no discrete log within [-{self.bound}, {self.bound}] "
            f"after {self.max_retries} kangaroo walks"
        )
