"""Deterministic randomness plumbing.

Crypto code uses :mod:`random.Random` instances (arbitrary-precision ints),
the NN substrate uses :class:`numpy.random.Generator`.  Keeping every
source seeded and explicit makes experiments and tests reproducible --
Figure 6 requires the plaintext and encrypted pipelines to see identical
initial weights and batch order.
"""

from __future__ import annotations

import random

import numpy as np


def make_rng(seed: int | None) -> random.Random:
    """Return a seeded :class:`random.Random` (fresh entropy when None)."""
    return random.Random(seed)


def make_np_rng(seed: int | None) -> np.random.Generator:
    """Return a seeded numpy Generator."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[random.Random]:
    """Derive ``count`` independent streams from one master seed."""
    master = random.Random(seed)
    return [random.Random(master.getrandbits(64)) for _ in range(count)]
