"""Cross-cutting utilities: logging, timing, deterministic RNG helpers."""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timer import Stopwatch, time_call

__all__ = ["Stopwatch", "make_rng", "spawn_rngs", "time_call"]
