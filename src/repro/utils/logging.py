"""Library logging configuration.

The library never configures the root logger; applications opt in via
:func:`enable_console_logging`.
"""

from __future__ import annotations

import logging

LIBRARY_LOGGER_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a child logger under the library namespace."""
    if name.startswith(LIBRARY_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{LIBRARY_LOGGER_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a simple stderr handler to the library logger."""
    logger = logging.getLogger(LIBRARY_LOGGER_NAME)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
