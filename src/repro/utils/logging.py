"""Library logging configuration.

The library never configures the root logger; applications opt in via
:func:`enable_console_logging`.  Two formats are offered: the classic
single-line text format, and an opt-in JSON-lines format
(``fmt="json"``) whose records carry the service name and, when a
log call passes ``extra={"peer": ...}``, the remote peer -- so logs
from several co-hosted services can be split apart after the fact.
"""

from __future__ import annotations

import json
import logging

LIBRARY_LOGGER_NAME = "repro"

# logging.LogRecord attributes that are bookkeeping, not payload --
# anything NOT in this set was passed via ``extra=`` and is forwarded
# into the JSON record verbatim
_RESERVED_RECORD_FIELDS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


def get_logger(name: str) -> logging.Logger:
    """Return a child logger under the library namespace."""
    if name.startswith(LIBRARY_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{LIBRARY_LOGGER_NAME}.{name}")


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts/level/logger/msg plus extras.

    ``service`` (the hosting entity's name, e.g. ``"authority"``) is
    stamped on every record; fields passed through ``extra=`` on the
    log call -- most usefully ``peer`` -- are merged in as-is when
    they are JSON-serializable (non-serializable values are repr'd
    rather than dropped, so a bad extra never loses the log line).
    """

    def __init__(self, service: str | None = None) -> None:
        super().__init__()
        self.service = service

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S%z"),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if self.service is not None:
            payload["service"] = self.service
        for key, value in record.__dict__.items():
            if key in _RESERVED_RECORD_FIELDS or key in payload:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def enable_console_logging(level: int = logging.INFO, *,
                           fmt: str = "text",
                           service: str | None = None) -> None:
    """Attach a stderr handler to the library logger.

    ``fmt="text"`` keeps the classic one-line format; ``fmt="json"``
    emits one JSON object per line (see :class:`JsonFormatter`),
    stamping ``service`` on every record.  Calling again replaces the
    formatter on the existing handler, so switching formats or the
    stamped service name mid-process is safe.
    """
    if fmt not in ("text", "json"):
        raise ValueError(f"unknown log format {fmt!r}; use 'text' or 'json'")
    logger = logging.getLogger(LIBRARY_LOGGER_NAME)
    if fmt == "json":
        formatter: logging.Formatter = JsonFormatter(service=service)
    else:
        formatter = logging.Formatter(
            "%(asctime)s %(name)s %(levelname)s %(message)s")
    if not logger.handlers:
        logger.addHandler(logging.StreamHandler())
    logger.handlers[0].setFormatter(formatter)
    logger.setLevel(level)
