"""Small timing helpers used by the benchmark harness."""

from __future__ import annotations

import time
from typing import Any, Callable


class Stopwatch:
    """Accumulating stopwatch; usable as a context manager.

    Example:
        sw = Stopwatch()
        with sw:
            do_work()
        print(sw.elapsed)
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def time_call(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> tuple[float, Any]:
    """Run ``fn`` once and return ``(seconds, result)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result
