"""Unified observability layer: metrics registry + span tracer.

Every long-running process in the repro (authority, training server,
client agents, benchmarks) shares one :data:`GLOBAL_REGISTRY` and one
:data:`GLOBAL_TRACER`.  Signal sources register pull-time collectors
rather than pushing on the hot path; see the metric naming scheme in
ROADMAP.md ("Ops surface").
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    GLOBAL_REGISTRY,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import GLOBAL_TRACER, SpanTracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "GLOBAL_REGISTRY",
    "GLOBAL_TRACER",
    "Histogram",
    "MetricsRegistry",
    "SpanTracer",
]
