"""Lightweight span tracer for per-iteration cost decomposition.

Spans wrap the phases of one secure training step (key fetch, encrypt,
pool dispatch, decrypt/dlog, plain forward/backward) so a running
service can report the same cost breakdown the paper presents in
Figures 3-5 (modexp-dominated encryption vs bounded-dlog decryption).

The tracer is **off by default** and must cost nearly nothing when
disabled: ``span()`` is then a single attribute check returning a
shared no-op context manager, so instrumented hot loops stay at their
benchmarked speed (guarded by ``tests/test_perf_smoke.py``).

When enabled it records completed spans as plain dicts in a bounded
ring buffer (``collections.deque(maxlen=...)``), optionally appends
one JSONL line per span to a trace file, and -- when handed a
:class:`~repro.obs.metrics.MetricsRegistry` -- folds durations into
``repro_phase_seconds{phase="..."}`` histograms so the wire-scraped
ops surface includes phase timings without shipping raw spans.

Stdlib-only, like :mod:`repro.obs.metrics`, for the same layering
reason.
"""

from __future__ import annotations

import collections
import json
import threading
import time
from typing import Any, TextIO

__all__ = ["SpanTracer", "GLOBAL_TRACER"]


class _NullSpan:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_tracer", "name", "attrs", "_start", "_depth")

    def __init__(self, tracer: "SpanTracer", name: str,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._depth = 0

    def __enter__(self) -> "_Span":
        self._depth = self._tracer._push()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        duration = time.perf_counter() - self._start
        self._tracer._pop()
        self._tracer._finish(self, duration)
        return False


class SpanTracer:
    """Nestable spans with ``perf_counter`` timings in a ring buffer."""

    def __init__(self, capacity: int = 4096) -> None:
        self.enabled = False
        self._capacity = capacity
        self._records: collections.deque[dict[str, Any]] = \
            collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._file: TextIO | None = None
        self._registry = None

    # -- lifecycle ---------------------------------------------------------

    def enable(self, trace_file: str | None = None,
               registry: Any = None) -> None:
        """Turn tracing on, optionally streaming JSONL spans to a file.

        Idempotent with respect to the file handle: re-enabling with a
        different path closes the previous file first.
        """
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None
            if trace_file:
                self._file = open(trace_file, "a", encoding="utf-8")
            self._registry = registry
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None
            self._registry = None

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    # -- span entry point --------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Context manager timing one named phase.

        The disabled path is the hot path: one attribute check, no
        allocation.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    # -- internals ---------------------------------------------------------

    def _push(self) -> int:
        stack = getattr(self._local, "depth", 0)
        self._local.depth = stack + 1
        return stack

    def _pop(self) -> None:
        self._local.depth = max(0, getattr(self._local, "depth", 1) - 1)

    def _finish(self, span: _Span, duration: float) -> None:
        record = {
            "name": span.name,
            "ts": time.time(),
            "dur_s": duration,
            "depth": span._depth,
            "thread": threading.current_thread().name,
        }
        if span.attrs:
            record.update(span.attrs)
        registry = self._registry
        with self._lock:
            self._records.append(record)
            if self._file is not None:
                try:
                    self._file.write(json.dumps(record) + "\n")
                    self._file.flush()
                except OSError:
                    pass
        if registry is not None:
            registry.histogram(
                f'repro_phase_seconds{{phase="{span.name}"}}'
            ).observe(duration)

    # -- inspection --------------------------------------------------------

    def spans(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._records)

    def phase_totals(self) -> dict[str, dict[str, float]]:
        """Aggregate the ring buffer: ``{phase: {count, total_s}}``."""
        totals: dict[str, dict[str, float]] = {}
        for record in self.spans():
            entry = totals.setdefault(
                record["name"], {"count": 0, "total_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += record["dur_s"]
        return totals


GLOBAL_TRACER = SpanTracer()
