"""Process-wide metrics registry: counters, gauges, histograms.

Deliberately stdlib-only (``threading`` + ``weakref``) so the lowest
layers of the codebase -- ``mathutils.group``, ``mathutils.dlog``,
``matrix.parallel``, ``fe.engine`` -- can import it without creating
cycles, mirroring the same rule ``rpc.retry`` follows.

Design constraints:

* **Near-zero cost when nothing scrapes.**  Hot paths never touch the
  registry directly; instead, instances that already keep counters
  (the compute pool, the encryption engine, RPC endpoints, services)
  register a *collector* -- a bound method the registry calls only at
  ``snapshot()`` time.  The only direct-write call sites are rare
  events (comb-table builds, span completions).
* **Thread-safe and loss-free.**  Counter/gauge/histogram mutation is
  a single locked update; collectors are held through
  :class:`weakref.WeakMethod` so dead instances silently drop out of
  the scrape instead of keeping objects alive or raising.
* **Plain-dict snapshots.**  ``snapshot()`` returns JSON-serialisable
  data only, so it can ride in a message header unchanged; a
  ``render_prometheus()`` text exposition is layered on top of the
  same snapshot.

Collector outputs are flat ``{metric_name: number}`` dicts.  Values
from multiple collectors that report the same metric name are
**summed** -- two compute pools in one process aggregate into a single
``repro_pool_dispatches_total`` figure, which is the semantics every
consumer here wants.  Names ending in ``_total`` land in the
``counters`` section of the snapshot, everything else in ``gauges``.
"""

from __future__ import annotations

import math
import threading
import weakref
from typing import Any, Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "GLOBAL_REGISTRY",
    "DEFAULT_BUCKETS",
]

# Time-oriented boundaries (seconds) suiting the paper's cost profile:
# sub-millisecond plain layers up through multi-second secure phases.
# An implicit +Inf bucket is always appended, so memory per histogram
# is bounded by len(buckets) + 1 regardless of observation count.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)


class Counter:
    """Monotonically increasing value; ``inc`` is atomic under a lock."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (depths, occupancies, flags)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-boundary histogram with bounded memory.

    Buckets are cumulative-style at snapshot time (Prometheus ``le``
    semantics); internally each observation increments exactly one
    per-bucket slot, so ``observe`` is O(log n) via bisection over a
    short boundary tuple.
    """

    __slots__ = ("_boundaries", "_counts", "_count", "_sum", "_lock")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        self._boundaries = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot is +Inf
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        bounds = self._boundaries
        lo, hi = 0, len(bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self._count += 1
            self._sum += value

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            acc = self._sum
        cumulative = []
        running = 0
        for c in counts:
            running += c
            cumulative.append(running)
        return {
            "le": [*self._boundaries, "+Inf"],
            "counts": cumulative,
            "count": total,
            "sum": acc,
        }

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


class MetricsRegistry:
    """Named metrics plus pull-time collectors, scraped as one snapshot."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: dict[str, Any] = {}

    # -- get-or-create accessors ------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            return metric

    def histogram(self, name: str,
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(buckets)
            return metric

    # -- collectors --------------------------------------------------------

    def register_collector(
            self, key: str,
            fn: Callable[[], dict[str, int | float] | None]) -> None:
        """Register a pull-time source of ``{name: number}`` readings.

        Bound methods are held weakly: when the owning instance is
        garbage-collected its collector vanishes from the scrape.  A
        collector that raises is skipped -- a broken signal source must
        never break the ops surface.
        """
        ref: Any
        if hasattr(fn, "__self__"):
            ref = weakref.WeakMethod(fn)
        else:
            ref = fn
        with self._lock:
            self._collectors[key] = ref

    def unregister_collector(self, key: str) -> None:
        with self._lock:
            self._collectors.pop(key, None)

    # -- scraping ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """One consistent, JSON-safe view of every metric + collector."""
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            hists = {n: h.snapshot() for n, h in self._histograms.items()}
            collectors = list(self._collectors.items())
        dead = []
        for key, ref in collectors:
            fn = ref() if isinstance(ref, weakref.WeakMethod) else ref
            if fn is None:
                dead.append(key)
                continue
            try:
                readings = fn()
            except Exception:
                continue
            for name, value in (readings or {}).items():
                section = counters if name.endswith("_total") else gauges
                section[name] = section.get(name, 0) + value
        if dead:
            with self._lock:
                for key in dead:
                    self._collectors.pop(key, None)
        return {"counters": counters, "gauges": gauges,
                "histograms": hists}

    def render_prometheus(self, snapshot: dict[str, Any] | None = None) -> str:
        """Prometheus text exposition of a snapshot (ours by default)."""
        snap = snapshot if snapshot is not None else self.snapshot()
        lines: list[str] = []

        def base_name(name: str) -> str:
            return name.split("{", 1)[0]

        for name in sorted(snap.get("counters", {})):
            lines.append(f"# TYPE {base_name(name)} counter")
            lines.append(f"{name} {_fmt(snap['counters'][name])}")
        for name in sorted(snap.get("gauges", {})):
            lines.append(f"# TYPE {base_name(name)} gauge")
            lines.append(f"{name} {_fmt(snap['gauges'][name])}")
        for name in sorted(snap.get("histograms", {})):
            hist = snap["histograms"][name]
            base, labels = _split_labels(name)
            lines.append(f"# TYPE {base} histogram")
            for le, count in zip(hist["le"], hist["counts"]):
                pairs = labels + [f'le="{le}"']
                lines.append(
                    f"{base}_bucket{{{','.join(pairs)}}} {count}")
            suffix = f"{{{','.join(labels)}}}" if labels else ""
            lines.append(f"{base}_sum{suffix} {_fmt(hist['sum'])}")
            lines.append(f"{base}_count{suffix} {hist['count']}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every metric and collector (tests only)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._collectors.clear()


def _fmt(value: int | float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _split_labels(name: str) -> tuple[str, list[str]]:
    if "{" not in name:
        return name, []
    base, rest = name.split("{", 1)
    return base, [p for p in rest.rstrip("}").split(",") if p]


GLOBAL_REGISTRY = MetricsRegistry()
