"""Networked runtime: asyncio RPC services for the CryptoNN entities.

The paper's pitch against SMC-based training is its communication
profile -- per-iteration key request/response round trips instead of
multi-round interactive protocols (Section IV-B2).  This package gives
the three entities a *real* transport so that profile carries actual
bytes between actual processes:

* :mod:`repro.rpc.framing` -- length-prefixed binary frames over
  asyncio TCP streams;
* :mod:`repro.rpc.messages` -- typed request/response messages mapped
  1:1 onto the :mod:`repro.core.protocol` kinds, bodies packed by
  :mod:`repro.core.serialization` so traffic accounting is byte-exact;
* :mod:`repro.rpc.authority_service` -- the authority key service;
* :mod:`repro.rpc.training_service` -- the training server, driving
  :class:`~repro.core.cryptonn.CryptoNNTrainer` over the wire;
* :mod:`repro.rpc.client` -- sync endpoint facade and the
  :class:`RemoteAuthority` drop-in for trainers and clients;
* :mod:`repro.rpc.client_agent` -- encrypt-and-upload for data owners;
* :mod:`repro.rpc.runtime` -- service-hosting helpers for tests,
  examples and the CLI.

Per-iteration key requests are batched into one framed envelope by
default (``CryptoNNConfig.batch_key_requests``), collapsing the
k x n x |w| request fan-out into a single round trip.

Fault tolerance lives in three sibling modules: :mod:`repro.rpc.retry`
(the runtime-wide :class:`RetryPolicy` / :class:`RetryStats`
vocabulary), :mod:`repro.rpc.chaos` (the deterministic fault-injecting
:class:`ChaosProxy` the test suite and the loopback example run
training through), and :mod:`repro.rpc.supervisor` (the self-healing
process supervisor restarting crashed or wedged services into their
durable state).
"""

from repro.rpc.authority_service import AuthorityService, run_authority_service
from repro.rpc.chaos import ChaosConfig, ChaosProxy, ChaosSchedule
from repro.rpc.client import (
    RemoteAuthority,
    RpcEndpoint,
    RpcError,
    RpcRemoteError,
    RpcTimeoutError,
)
from repro.rpc.client_agent import (
    fetch_status,
    plan_shard_chunks,
    request_checkpoint,
    upload_planned_chunks,
    upload_shard,
)
from repro.rpc.framing import MAX_FRAME_BYTES, MAX_HEADER_BYTES, FrameError
from repro.rpc.messages import (
    HealthRequest,
    HealthResponse,
    MetricsRequest,
    MetricsResponse,
    ShardChunk,
    ShardResumeQuery,
    WireContext,
    shard_fingerprint,
)
from repro.rpc.retry import (
    DEFAULT_POLICY,
    SERVICE_POLICY,
    STAT_KEYS,
    RetryPolicy,
    RetryStats,
    call_with_retry,
    merge_stats,
)
from repro.rpc.runtime import ServiceThread, free_port, wait_for_port
from repro.rpc.supervisor import ChildSpec, Supervisor, repro_argv
from repro.rpc.training_service import (
    TrainingService,
    build_mlp,
    run_training,
)

__all__ = [
    "AuthorityService",
    "ChaosConfig",
    "ChaosProxy",
    "ChaosSchedule",
    "ChildSpec",
    "DEFAULT_POLICY",
    "SERVICE_POLICY",
    "STAT_KEYS",
    "RetryPolicy",
    "RetryStats",
    "call_with_retry",
    "merge_stats",
    "FrameError",
    "HealthRequest",
    "HealthResponse",
    "MAX_FRAME_BYTES",
    "MAX_HEADER_BYTES",
    "MetricsRequest",
    "MetricsResponse",
    "RemoteAuthority",
    "RpcEndpoint",
    "RpcError",
    "RpcRemoteError",
    "RpcTimeoutError",
    "ServiceThread",
    "ShardChunk",
    "ShardResumeQuery",
    "Supervisor",
    "TrainingService",
    "WireContext",
    "build_mlp",
    "fetch_status",
    "free_port",
    "plan_shard_chunks",
    "repro_argv",
    "request_checkpoint",
    "run_authority_service",
    "run_training",
    "shard_fingerprint",
    "upload_planned_chunks",
    "upload_shard",
    "wait_for_port",
]
