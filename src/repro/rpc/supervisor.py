"""Self-healing process supervision for the distributed runtime.

The supervisor owns the authority and training-server processes of one
deployment: it spawns them, watches them (process liveness AND the
``service-health`` probe every :class:`~repro.rpc.service.FramedService`
answers), and restarts whatever dies or goes persistently unhealthy --
under the same :class:`~repro.rpc.retry.RetryPolicy` backoff vocabulary
the rest of the runtime retries with, so a crash-looping child backs
off exponentially and eventually latches ``giveup`` instead of
restart-storming the host.

Healing is *stateful* by composition, not by magic:

* the authority child is started from a ``save_authority`` file, so a
  restarted authority derives byte-identical keys and every ciphertext
  uploaded before the crash stays decryptable;
* the trainer child is started with ``serve-train --resume``, so a
  restart picks the job up from the durable dataset sidecar plus the
  latest :class:`~repro.core.checkpoint.TrainerCheckpoint` and finishes
  with exactly the weights the uninterrupted run would have produced.

The supervisor itself keeps no model or key state; ``kill -9`` applies
to it too, and a fresh supervisor over the same files heals the same
way.  Counters land in the shared registry under
``repro_supervisor_*`` so a metrics scrape of any surviving service
shows the restart history.
"""

from __future__ import annotations

import dataclasses
import os
import random
import signal
import subprocess
import sys
import time
from typing import Callable

import repro
from repro.rpc.client import RpcEndpoint, RpcError
from repro.rpc.messages import HealthRequest, HealthResponse
from repro.rpc.retry import RetryPolicy
from repro.obs.metrics import GLOBAL_REGISTRY

#: Default crash-loop policy: five spawns per failure streak, capped
#: exponential backoff between them.  ``jitter=False`` keeps restart
#: spacing deterministic; pass a jittered policy for fleet use.
DEFAULT_RESTART_POLICY = RetryPolicy(max_attempts=5, base_delay=0.2,
                                     max_delay=5.0, jitter=False)


def repro_argv(*cli_args: str) -> list[str]:
    """argv running ``repro <cli_args...>`` under this interpreter."""
    return [sys.executable, "-m", "repro", *cli_args]


def _child_env(extra: dict[str, str] | None) -> dict[str, str]:
    """Child environment: inherit, prepend our package root to
    PYTHONPATH so ``python -m repro`` resolves however the supervisor
    itself was launched."""
    env = dict(os.environ)
    pkg_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    parts = [pkg_root]
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    if extra:
        env.update(extra)
    return env


@dataclasses.dataclass
class ChildSpec:
    """One supervised process.

    ``port`` (with ``host``) enables health probing: the supervisor
    sends ``service-health`` requests there once the child has been up
    for ``grace`` seconds.  ``None`` supervises liveness only.
    """

    name: str
    argv: list[str]
    port: int | None = None
    host: str = "127.0.0.1"
    #: seconds after spawn before the first health probe -- covers
    #: interpreter start + socket bind, so a booting child is not
    #: mistaken for an unhealthy one
    grace: float = 2.0
    env: dict[str, str] | None = None


@dataclasses.dataclass
class _ChildState:
    """Mutable supervision state for one child."""

    spec: ChildSpec
    proc: subprocess.Popen | None = None
    endpoint: RpcEndpoint | None = None
    spawned_at: float = 0.0
    #: consecutive failures in the current crash streak; resets to 0
    #: after ``stable_seconds`` of verified-up runtime
    failures: int = 0
    spawns: int = 0
    restarts: int = 0
    crashes: int = 0
    unhealthy_streak: int = 0
    probe_failures: int = 0
    #: scheduled respawn time (clock units), or None if running
    restart_at: float | None = None
    gave_up: bool = False
    stable: bool = False
    last_health: dict | None = None
    last_exit: int | None = None


class Supervisor:
    """Spawn, watch, and heal a set of service processes.

    The control loop is poll-based and never sleeps inside a handler:
    crashes *schedule* a respawn at ``now + backoff(failures)`` and the
    next :meth:`poll_once` past that instant performs it, so one
    crash-looping child cannot stall supervision of the others.

    ``sleep``/``clock``/``rng`` are injectable for deterministic tests.
    """

    def __init__(self, specs: list[ChildSpec], *,
                 restart_policy: RetryPolicy = DEFAULT_RESTART_POLICY,
                 stable_seconds: float = 5.0,
                 unhealthy_after: int = 3,
                 probe_timeout: float = 2.0,
                 poll_interval: float = 0.25,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic,
                 rng: random.Random | None = None,
                 announce: Callable[[str], None] | None = None):
        if unhealthy_after < 1:
            raise ValueError("unhealthy_after must be >= 1")
        self.restart_policy = restart_policy
        self.stable_seconds = stable_seconds
        #: consecutive failed probes before the child is declared
        #: wedged and restarted (liveness alone cannot catch a hung
        #: process that still holds its socket)
        self.unhealthy_after = unhealthy_after
        self.probe_timeout = probe_timeout
        self.poll_interval = poll_interval
        self._sleep = sleep
        self._clock = clock
        self._rng = rng if rng is not None else random.Random()
        self._announce = announce
        self._children = {spec.name: _ChildState(spec=spec)
                          for spec in specs}
        if len(self._children) != len(specs):
            raise ValueError("child names must be unique")
        self._stopping = False
        GLOBAL_REGISTRY.register_collector(
            f"supervisor.{id(self)}", self._obs_collect)

    # -- observability -------------------------------------------------------
    def _obs_collect(self) -> dict[str, int]:
        return {
            "repro_supervisor_children": len(self._children),
            "repro_supervisor_spawns_total":
                sum(c.spawns for c in self._children.values()),
            "repro_supervisor_restarts_total":
                sum(c.restarts for c in self._children.values()),
            "repro_supervisor_crashes_total":
                sum(c.crashes for c in self._children.values()),
            "repro_supervisor_giveups_total":
                sum(1 for c in self._children.values() if c.gave_up),
            "repro_supervisor_probe_failures_total":
                sum(c.probe_failures for c in self._children.values()),
        }

    def status(self) -> dict[str, dict]:
        """Per-child supervision snapshot (JSON-serializable)."""
        report = {}
        for name, child in self._children.items():
            alive = child.proc is not None and child.proc.poll() is None
            report[name] = {
                "alive": alive,
                "pid": child.proc.pid if child.proc is not None else None,
                "restarts": child.restarts,
                "crashes": child.crashes,
                "failures": child.failures,
                "probe_failures": child.probe_failures,
                "unhealthy_streak": child.unhealthy_streak,
                "gave_up": child.gave_up,
                "last_exit": child.last_exit,
                "last_health": child.last_health,
            }
        return report

    def stats_snapshot(self) -> dict:
        """Aggregate counters + per-child status for artifact files."""
        return {"counters": self._obs_collect(), "children": self.status()}

    def _note(self, message: str) -> None:
        if self._announce is not None:
            self._announce(f"[supervisor] {message}")

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Spawn every child."""
        for child in self._children.values():
            self._spawn(child)

    def _spawn(self, child: _ChildState) -> None:
        child.proc = subprocess.Popen(
            child.spec.argv, env=_child_env(child.spec.env))
        child.spawns += 1
        child.spawned_at = self._clock()
        child.restart_at = None
        child.stable = False
        child.unhealthy_streak = 0
        self._note(f"spawned {child.spec.name} (pid {child.proc.pid})")

    def _probe(self, child: _ChildState) -> None:
        """One health probe; transport failures feed the wedge detector."""
        spec = child.spec
        if spec.port is None or child.proc is None:
            return
        if self._clock() - child.spawned_at < spec.grace:
            return
        if child.endpoint is None:
            child.endpoint = RpcEndpoint(
                spec.host, spec.port, name="supervisor", peer=spec.name,
                timeout=self.probe_timeout,
                connect_timeout=self.probe_timeout,
                policy=RetryPolicy(max_attempts=1))
        try:
            resp = child.endpoint.request(HealthRequest(
                requester="supervisor"))
        except RpcError:
            # no answer at all: the process may be wedged (alive but
            # deadlocked, or holding a dead socket).  ready=False is
            # NOT a failure -- a trainer waiting for uploads answers
            # honestly and must not be bounced for it.
            child.probe_failures += 1
            child.unhealthy_streak += 1
            if child.unhealthy_streak >= self.unhealthy_after:
                self._note(
                    f"{spec.name} failed {child.unhealthy_streak} health "
                    f"probes; restarting it")
                self._terminate(child)
                self._on_down(child)
            return
        if isinstance(resp, HealthResponse):
            child.unhealthy_streak = 0
            child.last_health = {"ready": resp.ready, "state": resp.state}

    def _on_down(self, child: _ChildState) -> None:
        """A child died (or was put down): count it, schedule healing."""
        child.proc = None
        child.crashes += 1
        child.failures += 1
        if child.failures >= self.restart_policy.max_attempts:
            child.gave_up = True
            child.restart_at = None
            self._note(
                f"{child.spec.name} failed {child.failures} times in a "
                f"row; giving up on it")
            return
        delay = self.restart_policy.backoff(child.failures, self._rng)
        child.restart_at = self._clock() + delay
        self._note(f"{child.spec.name} down (exit {child.last_exit}); "
                   f"restarting in {delay:.2f}s")

    def poll_once(self) -> None:
        """One supervision pass over every child."""
        now = self._clock()
        for child in self._children.values():
            if child.gave_up:
                continue
            if child.proc is None:
                if child.restart_at is not None and now >= child.restart_at:
                    child.restarts += 1
                    self._spawn(child)
                continue
            exit_code = child.proc.poll()
            if exit_code is not None:
                child.last_exit = exit_code
                self._on_down(child)
                continue
            if not child.stable and \
                    now - child.spawned_at >= self.stable_seconds:
                # survived the probation window: the crash streak is
                # over, future failures earn a fresh backoff schedule
                child.stable = True
                child.failures = 0
            self._probe(child)

    def all_gave_up(self) -> bool:
        return all(c.gave_up for c in self._children.values())

    def run(self, until: Callable[[], bool] | None = None) -> None:
        """Supervision loop; returns when ``until()`` goes true, every
        child has been given up on, or :meth:`stop` was called."""
        while not self._stopping and not self.all_gave_up():
            if until is not None and until():
                return
            self.poll_once()
            self._sleep(self.poll_interval)

    def _terminate(self, child: _ChildState) -> None:
        proc = child.proc
        if proc is None or proc.poll() is not None:
            if proc is not None:
                child.last_exit = proc.poll()
            return
        proc.terminate()
        try:
            child.last_exit = proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            child.last_exit = proc.wait()

    def stop(self) -> None:
        """Terminate every child and close probe endpoints."""
        self._stopping = True
        for child in self._children.values():
            self._terminate(child)
            child.proc = None
            if child.endpoint is not None:
                child.endpoint.close()
                child.endpoint = None

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def install_signal_handlers(supervisor: Supervisor) -> None:
    """SIGTERM/SIGINT stop the supervisor (and its children) cleanly."""
    def _handler(signum, frame):
        supervisor.stop()
        raise SystemExit(128 + signum)
    signal.signal(signal.SIGTERM, _handler)
    signal.signal(signal.SIGINT, _handler)
