"""Deterministic fault injection over real sockets.

:class:`ChaosProxy` is an asyncio TCP proxy that sits between any RPC
client and service and injects transport faults from a *seeded
schedule*: the fault decision for exchange ``k`` is a pure function of
``(seed, k)``, so every test scenario -- and every
``examples/rpc_loopback.py --chaos-seed`` run -- is reproducible.

The proxy understands the length-prefixed framing just enough to
delimit request/response exchanges (it never decodes bodies), which is
what makes per-exchange fault decisions possible:

* ``reset-before`` -- connection reset before the request frame reaches
  the service (the service never sees it);
* ``reset-after``  -- the service processes the request, but the
  response is dropped and the connection reset (tests idempotency of
  the retried request);
* ``stall``        -- the request is blackholed and the connection held
  open silently until the client times out and hangs up;
* ``truncate``     -- the response frame is cut mid-body, then reset;
* ``corrupt``      -- response header bytes are flipped so the framing
  layer rejects the frame (``FrameError``) and the client retries.
  Corruption targets the *header*: the body is length-delimited binary
  with no checksum, so only header corruption is reliably detected --
  the chaos layer injects what the framing layer can catch;
* ``delay``        -- added latency before the response.

Every fault is visible to the client as a transport error (reset, frame
error, or timeout), which the :class:`~repro.rpc.retry.RetryPolicy`
machinery retries; key derivation is deterministic and idempotent, so a
training run through heavy chaos reproduces the clean run's weights and
loss curve byte-for-byte (the chaos test suite pins this).

With concurrent client connections the *assignment* of exchange indices
to connections follows socket timing, but the fault sequence itself is
still the seeded one; the strictly sequential training loop -- the case
the acceptance tests script -- is fully deterministic.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
import struct
import threading
from collections import Counter
from dataclasses import dataclass

from repro.rpc.framing import MAX_FRAME_BYTES, FrameError

_LEN = struct.Struct(">I")

#: Fault kinds in schedule-draw order (the order matters: one uniform
#: draw per exchange walks this list's cumulative rates).
FAULT_KINDS = ("reset-before", "reset-after", "stall", "truncate",
               "corrupt", "delay")


@dataclass(frozen=True)
class ChaosConfig:
    """Per-fault injection rates plus fault shaping knobs.

    Rates are independent probabilities that must sum to <= 1; the
    remainder is the clean-exchange probability.  ``delay_s`` is the
    added latency of a ``delay`` fault; ``stall_s`` caps how long a
    ``stall`` holds the connection if the client never hangs up (a
    correctly configured client times out first).
    """

    reset_before: float = 0.0
    reset_after: float = 0.0
    stall: float = 0.0
    truncate: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    delay_s: float = 0.05
    stall_s: float = 30.0

    def __post_init__(self) -> None:
        total = 0.0
        for kind in FAULT_KINDS:
            rate = getattr(self, kind.replace("-", "_"))
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate {kind} must be in [0, 1]")
            total += rate
        if total > 1.0:
            raise ValueError(f"fault rates sum to {total} > 1")

    @classmethod
    def uniform(cls, rate: float, **kwargs) -> "ChaosConfig":
        """Spread ``rate`` evenly across every fault kind."""
        per = rate / len(FAULT_KINDS)
        return cls(**{kind.replace("-", "_"): per for kind in FAULT_KINDS},
                   **kwargs)


class ChaosSchedule:
    """Deterministic fault schedule: exchange index -> fault (or None).

    Decisions are the draws of one seeded RNG consumed in exchange
    order, memoized so ``fault_for(k)`` is a stable pure function for
    the schedule's lifetime -- ask twice, get the same answer.
    """

    def __init__(self, seed: int, config: ChaosConfig):
        self.seed = seed
        self.config = config
        self._rng = random.Random(seed)
        self._decisions: list[str | None] = []
        self._lock = threading.Lock()

    def _draw(self) -> str | None:
        roll = self._rng.random()
        cumulative = 0.0
        for kind in FAULT_KINDS:
            cumulative += getattr(self.config, kind.replace("-", "_"))
            if roll < cumulative:
                return kind
        return None

    def fault_for(self, index: int) -> str | None:
        with self._lock:
            while len(self._decisions) <= index:
                self._decisions.append(self._draw())
            return self._decisions[index]

    def preview(self, count: int) -> list[str | None]:
        """The first ``count`` decisions (for test assertions)."""
        return [self.fault_for(i) for i in range(count)]


class ChaosProxy:
    """Seeded fault-injecting TCP proxy for one upstream service.

    Exposes the same ``async start() -> (host, port)`` / ``async
    stop()`` lifecycle as the RPC services, so
    :class:`~repro.rpc.runtime.ServiceThread` can host it and tests and
    examples stand it up exactly like a real service.  ``stats`` counts
    connections, exchanges and injected faults by kind.
    """

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 host: str = "127.0.0.1", port: int = 0,
                 schedule: ChaosSchedule | None = None,
                 seed: int = 0, config: ChaosConfig | None = None,
                 max_frame_bytes: int = MAX_FRAME_BYTES):
        self.upstream = (upstream_host, upstream_port)
        self.host = host
        self.port = port
        self.schedule = schedule if schedule is not None else \
            ChaosSchedule(seed, config if config is not None else ChaosConfig())
        self.max_frame_bytes = max_frame_bytes
        self.address: tuple[str, int] | None = None
        self.stats: Counter = Counter()
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._exchange_counter = 0
        self._counter_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()

    def _next_exchange(self) -> int:
        with self._counter_lock:
            index = self._exchange_counter
            self._exchange_counter += 1
            return index

    # -- raw framing ---------------------------------------------------------
    async def _read_raw_frame(self, reader: asyncio.StreamReader
                              ) -> bytes | None:
        """One wire frame as raw bytes (length prefix included)."""
        try:
            prefix = await reader.readexactly(4)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise FrameError("connection closed mid frame-length") from exc
        total = _LEN.unpack(prefix)[0]
        if total < 4 or total > self.max_frame_bytes:
            raise FrameError(f"frame length {total} outside proxy bounds")
        try:
            payload = await reader.readexactly(total)
        except asyncio.IncompleteReadError as exc:
            raise FrameError("connection closed mid frame") from exc
        return prefix + payload

    @staticmethod
    def _corrupt_header(frame: bytes) -> bytes:
        """Flip bytes inside the JSON header so decoding must fail.

        The flipped bytes are invalid UTF-8, so the receiving framing
        layer raises ``FrameError`` deterministically instead of
        silently delivering a corrupted payload.
        """
        header_len = _LEN.unpack(frame[4:8])[0]
        start = 8
        end = min(start + max(1, header_len), len(frame))
        return frame[:start] + b"\xff" * (end - start) + frame[end:]

    # -- per-connection pump -------------------------------------------------
    async def _handle_connection(self, client_reader: asyncio.StreamReader,
                                 client_writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self.stats["connections"] += 1
        upstream_reader = upstream_writer = None
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                *self.upstream)
            await self._pump(client_reader, client_writer,
                             upstream_reader, upstream_writer)
        except (FrameError, ConnectionError, OSError):
            pass  # either side broke; drop both, keep listening
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            for writer in (client_writer, upstream_writer):
                if writer is None:
                    continue
                with contextlib.suppress(Exception):
                    writer.close()
                with contextlib.suppress(BaseException):
                    await writer.wait_closed()

    async def _pump(self, client_reader, client_writer,
                    upstream_reader, upstream_writer) -> None:
        config = self.schedule.config
        while True:
            request = await self._read_raw_frame(client_reader)
            if request is None:
                return
            fault = self.schedule.fault_for(self._next_exchange())
            self.stats["exchanges"] += 1
            if fault is not None:
                self.stats[fault] += 1

            if fault == "reset-before":
                # the service never sees this request
                return
            if fault == "stall":
                # blackhole: hold the connection silently until the
                # client gives up (its timeout) or the stall cap passes
                with contextlib.suppress(asyncio.TimeoutError,
                                         ConnectionError):
                    await asyncio.wait_for(client_reader.read(1),
                                           timeout=config.stall_s)
                return
            upstream_writer.write(request)
            await upstream_writer.drain()
            response = await self._read_raw_frame(upstream_reader)
            if response is None:
                return
            if fault == "reset-after":
                # the service answered; the client never hears it
                return
            if fault == "truncate":
                cut = max(5, len(response) // 2)
                client_writer.write(response[:cut])
                with contextlib.suppress(ConnectionError):
                    await client_writer.drain()
                return
            if fault == "corrupt":
                client_writer.write(self._corrupt_header(response))
                with contextlib.suppress(ConnectionError):
                    await client_writer.drain()
                # the client will detect the bad frame and hang up
                continue
            if fault == "delay":
                await asyncio.sleep(config.delay_s)
            client_writer.write(response)
            await client_writer.drain()

    def fault_summary(self) -> dict[str, int]:
        """Counters in the shared fault-report vocabulary plus per-kind
        injection counts (composes with RetryStats snapshots)."""
        summary = {f"injected_{kind}": self.stats.get(kind, 0)
                   for kind in FAULT_KINDS}
        summary["exchanges"] = self.stats.get("exchanges", 0)
        summary["connections"] = self.stats.get("connections", 0)
        summary["drops"] = sum(
            self.stats.get(kind, 0)
            for kind in ("reset-before", "reset-after", "truncate", "corrupt"))
        summary["timeouts"] = self.stats.get("stall", 0)
        return summary
