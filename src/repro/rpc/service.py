"""Shared asyncio server plumbing for the RPC services.

Both the authority key service and the training server speak the same
strict request/response protocol over framed TCP streams; this base
class owns the socket lifecycle, per-connection traffic accounting and
error framing, leaving subclasses one job: ``_dispatch`` a decoded
message to the entity behind it.

Connections are tracked so ``stop()`` tears them down deterministically
(no handler tasks left pending when the hosting loop closes).  A broken
or malicious peer only ever costs its own connection: decode errors are
answered with an ``error`` frame, transport errors drop the connection,
and the listener keeps serving everyone else.
"""

from __future__ import annotations

import asyncio
import contextlib

from repro.core.protocol import TrafficLog
from repro.obs.metrics import GLOBAL_REGISTRY
from repro.rpc.framing import (
    MAX_FRAME_BYTES,
    FrameError,
    read_frame,
    write_frame,
)
from repro.rpc.messages import (
    KIND_SERVICE_HEALTH,
    KIND_SERVICE_METRICS,
    ErrorMessage,
    HealthRequest,
    HealthResponse,
    MetricsRequest,
    MetricsResponse,
    WireContext,
    decode_message,
    encode_message,
)

#: Message kinds every FramedService answers itself, before the
#: subclass context hook runs -- so a scrape needs no handshake and
#: cannot be blocked by a busy dispatch path.
OBS_KINDS = frozenset({KIND_SERVICE_METRICS, KIND_SERVICE_HEALTH})


@contextlib.asynccontextmanager
async def _maybe_acquire(sem: asyncio.Semaphore | None):
    """``async with`` over an optional semaphore."""
    if sem is None:
        yield
        return
    async with sem:
        yield


class FramedService:
    """An asyncio TCP server answering framed request/response messages."""

    #: Canonical entity name used in traffic records (subclass sets it).
    entity_name = "service"

    #: Cap on distinct per-connection logs; connections beyond it share
    #: one ``"overflow"`` log so a long-lived service facing churning
    #: clients cannot grow ``connection_traffic`` without bound.
    MAX_CONNECTION_LOGS = 1024

    #: Cap on records *inside* each per-connection log: past it the log
    #: rotates, folding the oldest records into per-(sender, receiver,
    #: kind) totals, so memory stays bounded on a weeks-long service
    #: while ``total_bytes``/``message_count`` stay lifetime-exact.
    MAX_RECORDS_PER_LOG = 4096

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 max_requests_per_connection: int | None = None,
                 max_inflight: int | None = None,
                 max_connections: int | None = None):
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        #: per-connection request quota: past it the connection gets one
        #: final ``QuotaExceeded`` error frame and is closed, so a
        #: hostile peer cannot monopolize the service from one socket
        self.max_requests_per_connection = max_requests_per_connection
        #: backpressure bound on concurrently *processing* requests
        #: (decode + dispatch + encode); observability probes bypass it
        #: so health stays answerable under load
        self.max_inflight = max_inflight
        #: accept cap: connections past it are closed immediately, so a
        #: connection flood cannot exhaust tasks/file descriptors
        self.max_connections = max_connections
        #: per-connection traffic logs, keyed ``"<sender>#<peer-port>"``;
        #: body byte counts equal the serialization wire sizes.
        self.connection_traffic: dict[str, TrafficLog] = {}
        self.requests_served = 0
        self.quota_rejections = 0
        self.connection_rejections = 0
        self.backpressure_waits = 0
        self.address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._inflight_sem: asyncio.Semaphore | None = None
        GLOBAL_REGISTRY.register_collector(
            f"service.{id(self)}", self._obs_collect)

    # -- observability -------------------------------------------------------
    def _obs_collect(self) -> dict[str, int]:
        """Registry collector: request/connection/traffic aggregates."""
        total_bytes = 0
        total_messages = 0
        for log in list(self.connection_traffic.values()):
            total_bytes += log.total_bytes()
            total_messages += log.message_count()
        return {
            "repro_service_requests_total": self.requests_served,
            "repro_service_connections_in_flight": len(self._conn_tasks),
            "repro_service_traffic_bytes_total": total_bytes,
            "repro_service_traffic_messages_total": total_messages,
            "repro_service_connection_logs": len(self.connection_traffic),
            "repro_service_quota_rejections_total": self.quota_rejections,
            "repro_service_connection_rejections_total":
                self.connection_rejections,
            "repro_service_backpressure_waits_total":
                self.backpressure_waits,
        }

    def _health(self) -> HealthResponse:
        """Readiness hook; the base service is ready once it listens."""
        return HealthResponse(ready=True, state="serving", detail={})

    def _dispatch_obs(self, msg):
        """Answer a metrics/health probe from the shared registry."""
        if isinstance(msg, MetricsRequest):
            return MetricsResponse(service=self.entity_name,
                                   metrics=GLOBAL_REGISTRY.snapshot())
        if isinstance(msg, HealthRequest):
            return self._health()
        raise TypeError(f"not an observability message: {msg!r}")

    def _inflight_semaphore(self) -> asyncio.Semaphore | None:
        """Lazily create the backpressure semaphore on the serving loop."""
        if self.max_inflight is None:
            return None
        if self._inflight_sem is None:
            self._inflight_sem = asyncio.Semaphore(self.max_inflight)
        return self._inflight_sem

    # -- subclass hooks ------------------------------------------------------
    async def _wire_context(self) -> WireContext | None:
        """Decode context for incoming bodies (group field widths)."""
        raise NotImplementedError

    async def _wire_context_for(self, header) -> WireContext | None:
        """Per-message context hook; lets a subclass answer context-free
        control messages without acquiring the full context first."""
        return await self._wire_context()

    async def _dispatch(self, msg, sender: str):
        """Answer one decoded message; exceptions become error frames."""
        raise NotImplementedError

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind the listening socket; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()

    # -- connection handling -------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        if self.max_connections is not None \
                and len(self._conn_tasks) >= self.max_connections:
            # flood defense: past the accept cap, close immediately --
            # existing connections (including health probes) keep working
            self.connection_rejections += 1
            with contextlib.suppress(Exception):
                writer.close()
            with contextlib.suppress(BaseException):
                await writer.wait_closed()
            return
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        peername = writer.get_extra_info("peername") or ("?", 0)
        log: TrafficLog | None = None
        requests_on_connection = 0
        try:
            while True:
                frame = await read_frame(reader, self.max_frame_bytes)
                if frame is None:
                    break
                header, body = frame
                requests_on_connection += 1
                if self.max_requests_per_connection is not None \
                        and requests_on_connection > \
                        self.max_requests_per_connection:
                    # one clear error frame, then hang up: the peer
                    # learns why instead of seeing a silent reset
                    self.quota_rejections += 1
                    err_header, err_body = encode_message(ErrorMessage(
                        message=f"connection exceeded its "
                                f"{self.max_requests_per_connection}"
                                f"-request quota",
                        error_type="QuotaExceeded"))
                    err_header["seq"] = header.get("seq")
                    await write_frame(writer, err_header, err_body)
                    break
                sender = str(header.get("from", f"{peername[0]}"))
                if log is None:
                    label = f"{sender}#{peername[1]}"
                    if label not in self.connection_traffic and \
                            len(self.connection_traffic) >= \
                            self.MAX_CONNECTION_LOGS:
                        label = "overflow"
                    log = self.connection_traffic.setdefault(
                        label, TrafficLog(max_records=self.MAX_RECORDS_PER_LOG))
                log.record(sender, self.entity_name,
                           str(header.get("kind")), len(body))
                ctx = None
                try:
                    if header.get("kind") in OBS_KINDS:
                        # metrics/health are context-free and answered
                        # here, so probes work on every service without
                        # a handshake, without entering the (possibly
                        # busy) subclass dispatch path, and without
                        # queueing behind the backpressure bound
                        msg = decode_message(header, body, None)
                        resp = self._dispatch_obs(msg)
                    else:
                        sem = self._inflight_semaphore()
                        if sem is not None and sem.locked():
                            self.backpressure_waits += 1
                        async with _maybe_acquire(sem):
                            ctx = await self._wire_context_for(header)
                            # decode/encode off-loop: a paper-scale
                            # upload body unpacks hundreds of thousands
                            # of integers, which must not stall every
                            # other connection
                            msg = await asyncio.to_thread(
                                decode_message, header, body, ctx)
                            resp = await self._dispatch(msg, sender)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    resp = ErrorMessage(message=str(exc),
                                        error_type=type(exc).__name__)
                resp_header, resp_body = await asyncio.to_thread(
                    encode_message, resp, ctx)
                resp_header["seq"] = header.get("seq")
                log.record(self.entity_name, sender, resp_header["kind"],
                           len(resp_body))
                await write_frame(writer, resp_header, resp_body)
                self.requests_served += 1
        except (FrameError, ConnectionError, asyncio.IncompleteReadError):
            pass  # broken peer: drop the connection, keep serving others
        except asyncio.CancelledError:
            pass  # service stopping: close the connection and exit cleanly
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
            with contextlib.suppress(BaseException):
                await writer.wait_closed()
