"""The authority key service: CryptoNN's trusted authority behind a socket.

Wraps a :class:`~repro.core.entities.TrustedAuthority` in an asyncio TCP
server speaking the framed message protocol.  The service answers

* ``public-params`` -- group parameters, config, and public keys;
* ``feip-key-request`` / ``feip-key-batch-request`` -- inner-product
  function keys for weight rows (the per-iteration exchange of Section
  IV-B2);
* ``febo-key-request`` / ``febo-key-batch-request`` -- per-ciphertext
  basic-operation keys.

Master secrets never cross the wire: only derived function keys and
public keys do, exactly as the paper's architecture (Fig. 1) requires.
Policy and permitted-op checks run inside the wrapped authority, so a
rejected request comes back as an ``error`` frame carrying the original
exception type.  Each connection gets its own
:class:`~repro.core.protocol.TrafficLog` whose byte counts equal the
:mod:`repro.core.serialization` wire sizes by construction.
"""

from __future__ import annotations

import asyncio
import dataclasses

from repro.core import protocol
from repro.core.entities import TrustedAuthority
from repro.rpc.framing import MAX_FRAME_BYTES
from repro.rpc.messages import (
    ErrorMessage,
    FeboKeyRequest,
    FeboKeyResponse,
    FeipKeyRequest,
    FeipKeyResponse,
    PublicParamsRequest,
    PublicParamsResponse,
    WireContext,
)
from repro.rpc.service import FramedService


class AuthorityService(FramedService):
    """Asyncio TCP server answering key requests from clients and servers."""

    entity_name = protocol.AUTHORITY

    def __init__(self, authority: TrustedAuthority, host: str = "127.0.0.1",
                 port: int = 0, *, max_frame_bytes: int = MAX_FRAME_BYTES,
                 max_requests_per_connection: int | None = None,
                 max_inflight: int | None = None,
                 max_connections: int | None = None):
        super().__init__(
            host, port, max_frame_bytes=max_frame_bytes,
            max_requests_per_connection=max_requests_per_connection,
            max_inflight=max_inflight, max_connections=max_connections)
        self.authority = authority
        # a long-running service must also bound the *entity's* logical
        # accounting log, which grows two records per key exchange; the
        # socket-side per-connection logs are bounded by the base class
        if authority.traffic.max_records is None:
            authority.traffic.max_records = self.MAX_RECORDS_PER_LOG
        # derivations run off-loop (paper-scale groups take real CPU
        # time) but strictly one at a time: TrustedAuthority mutates
        # shared state (key pairs, counters, traffic) un-locked
        self._derive_lock = asyncio.Lock()

    async def _wire_context(self) -> WireContext:
        return WireContext(self.authority.params,
                           self.authority.config.key_weight_bytes)

    async def _dispatch(self, msg, sender: str):
        async with self._derive_lock:
            return await asyncio.to_thread(self._dispatch_sync, msg, sender)

    def _dispatch_sync(self, msg, sender: str):
        if isinstance(msg, PublicParamsRequest):
            feip_keys = {int(eta): self.authority.feip_public_key(int(eta))
                         for eta in msg.etas}
            febo_key = (self.authority.febo_public_key()
                        if msg.include_febo else None)
            return PublicParamsResponse(
                group=self.authority.params,
                config=dataclasses.asdict(self.authority.config),
                feip_keys=feip_keys,
                febo_key=febo_key,
            )
        if isinstance(msg, FeipKeyRequest):
            derive = (self.authority.derive_feip_keys_batch if msg.batched
                      else self.authority.derive_feip_keys)
            return FeipKeyResponse(keys=derive(msg.rows, sender),
                                   batched=msg.batched)
        if isinstance(msg, FeboKeyRequest):
            derive = (self.authority.derive_febo_keys_batch if msg.batched
                      else self.authority.derive_febo_keys)
            return FeboKeyResponse(keys=derive(msg.requests, sender),
                                   batched=msg.batched)
        return ErrorMessage(
            message=f"authority service cannot answer {msg.kind!r}",
            error_type="UnsupportedMessage")


def run_authority_service(authority: TrustedAuthority, host: str = "127.0.0.1",
                          port: int = 0, *, announce=print) -> None:
    """Blocking entry point: serve until interrupted (CLI helper)."""
    service = AuthorityService(authority, host, port)

    async def _run() -> None:
        bound_host, bound_port = await service.start()
        if announce is not None:
            announce(f"authority key service listening on "
                     f"{bound_host}:{bound_port}")
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
