"""Length-prefixed binary framing over asyncio streams.

Every RPC frame is::

    [4-byte frame length L][4-byte header length H][H bytes JSON header]
    [L - 4 - H bytes binary body]

The JSON header carries the message kind plus small metadata (counts,
vector lengths, sequence numbers); the body is the byte-accurate binary
payload produced by :mod:`repro.core.serialization`, so ``len(body)``
equals the wire-size formulas the traffic accounting uses.  The frame
length excludes its own 4-byte prefix and is bounded by
``max_frame_bytes`` so a corrupt or hostile peer cannot make a service
allocate unbounded memory.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any

#: Default ceiling on one frame.  Encrypted-dataset uploads dominate; a
#: 256-bit group with thousands of samples stays well below this.
MAX_FRAME_BYTES = 128 * 1024 * 1024

#: Ceiling on the JSON header alone, independent of the frame limit.
#: Headers carry kind + counts + small metadata (the largest legitimate
#: one is an upload's eval-label list); a corrupted or hostile header
#: length must not make either side -- services *or* clients -- try to
#: json-decode tens of megabytes.
MAX_HEADER_BYTES = 8 * 1024 * 1024

_LEN = struct.Struct(">I")


class FrameError(Exception):
    """A malformed, truncated, or oversized frame."""


def encode_frame(header: dict[str, Any], body: bytes = b"",
                 max_frame_bytes: int | None = None) -> bytes:
    """Serialize one frame to bytes (the sans-IO core of the framing).

    Passing ``max_frame_bytes`` makes oversized frames fail *before*
    anything is sent -- the sender gets the real reason instead of the
    receiver silently dropping the connection mid-transfer.
    """
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    total = 4 + len(header_bytes) + len(body)
    if max_frame_bytes is not None and total > max_frame_bytes:
        raise FrameError(
            f"frame of {total} bytes exceeds limit {max_frame_bytes} "
            f"(kind {header.get('kind')!r}); raise max_frame_bytes or "
            f"split the payload")
    return _LEN.pack(total) + _LEN.pack(len(header_bytes)) + header_bytes + body


def decode_frame_payload(payload: bytes) -> tuple[dict[str, Any], bytes]:
    """Split a frame payload (everything after the length prefix)."""
    if len(payload) < 4:
        raise FrameError("frame payload shorter than its header prefix")
    header_len = _LEN.unpack(payload[:4])[0]
    if header_len > MAX_HEADER_BYTES:
        raise FrameError(
            f"frame header of {header_len} bytes exceeds limit "
            f"{MAX_HEADER_BYTES}")
    if header_len > len(payload) - 4:
        raise FrameError(
            f"header length {header_len} exceeds frame payload "
            f"({len(payload) - 4} bytes)")
    try:
        header = json.loads(payload[4:4 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise FrameError("frame header must be a JSON object")
    return header, payload[4 + header_len:]


async def write_frame(writer: asyncio.StreamWriter, header: dict[str, Any],
                      body: bytes = b"") -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_frame(header, body))
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader,
                     max_frame_bytes: int = MAX_FRAME_BYTES
                     ) -> tuple[dict[str, Any], bytes] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises:
        FrameError: truncated mid-frame, oversized, or undecodable.
    """
    try:
        prefix = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid frame-length") from exc
    total = _LEN.unpack(prefix)[0]
    if total < 4:
        raise FrameError(f"frame length {total} below header prefix size")
    if total > max_frame_bytes:
        raise FrameError(
            f"frame of {total} bytes exceeds limit {max_frame_bytes}")
    try:
        payload = await reader.readexactly(total)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid frame") from exc
    return decode_frame_payload(payload)
