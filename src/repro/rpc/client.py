"""Client-side RPC: a sync endpoint facade and the remote-authority stub.

The trainers, secure layers and :class:`~repro.core.entities.Client` are
synchronous, so :class:`RpcEndpoint` runs its asyncio connection on a
dedicated background event-loop thread and exposes a blocking
``request()`` with timeouts and transparent reconnect-and-retry.  Key
derivation is deterministic on the authority side, so resending a key
request after a transport failure is idempotent.

:class:`RemoteAuthority` is a drop-in replacement for
:class:`~repro.core.entities.TrustedAuthority` from the requester's
point of view: same ``params`` / ``config`` / ``feip`` / ``febo`` /
``traffic`` attributes, same public-key accessors, same
``derive_*_keys`` methods -- but every key request crosses a real
socket.  Master secrets never leave the authority process.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import random
import threading
import time

from repro.core import protocol
from repro.core.protocol import TrafficLog
from repro.fe.febo import Febo
from repro.fe.feip import Feip
from repro.fe.keys import FeboFunctionKey, FeboPublicKey, FeipPublicKey
from repro.rpc.framing import (
    MAX_FRAME_BYTES,
    FrameError,
    encode_frame,
    read_frame,
)
from repro.rpc.messages import (
    ErrorMessage,
    FeboKeyRequest,
    FeipKeyRequest,
    PublicParamsRequest,
    WireContext,
    decode_message,
    encode_message,
)
from repro.rpc.retry import RetryPolicy, RetryStats
from repro.obs.metrics import GLOBAL_REGISTRY


class RpcError(Exception):
    """Transport-level RPC failure that exhausted its retries."""


class RpcTimeoutError(RpcError):
    """A request that did not complete within its deadline."""


class RpcRemoteError(RpcError):
    """The peer answered with an error frame (not retried)."""

    def __init__(self, message: str, error_type: str = "RpcError"):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.remote_message = message


class RpcEndpoint:
    """One logical connection to an RPC service, usable from sync code.

    Requests are serialized per endpoint (one in flight at a time, which
    is all the strict request/response protocol allows per connection).
    Transport failures trigger a reconnect and one resend per remaining
    retry; remote error frames raise immediately.

    Every exchanged message is recorded in ``traffic`` with its body
    length -- identical to the serialization wire sizes by construction.
    """

    def __init__(self, host: str, port: int, *, name: str = protocol.CLIENT,
                 peer: str = "service", timeout: float = 60.0,
                 connect_timeout: float = 10.0, retries: int | None = None,
                 policy: RetryPolicy | None = None,
                 traffic: TrafficLog | None = None,
                 max_frame_bytes: int = MAX_FRAME_BYTES):
        self.host = host
        self.port = port
        self.name = name
        self.peer = peer
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        if policy is None:
            # legacy knob: ``retries`` resends with backoff under the
            # default policy shape (base 50ms, full jitter, 1s cap)
            attempts = (retries + 1) if retries is not None else 2
            policy = RetryPolicy(max_attempts=attempts, base_delay=0.05,
                                 max_delay=1.0)
        elif retries is not None:
            raise ValueError("pass either retries or policy, not both")
        self.policy = policy
        self.retries = policy.max_attempts - 1
        #: fault/retry counters in the runtime-wide shared vocabulary
        self.stats = RetryStats()
        self.traffic = traffic if traffic is not None else TrafficLog()
        self.max_frame_bytes = max_frame_bytes
        self._lock = threading.Lock()
        self._retry_rng = random.Random()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._seq = 0
        self._connects = 0
        self._closed = False
        GLOBAL_REGISTRY.register_collector(
            f"rpc_endpoint.{id(self)}", self._obs_collect)

    def _obs_collect(self) -> dict[str, int]:
        """Registry collector: this endpoint's retry/fault counters.

        All live endpoints in the process sum into one
        ``repro_rpc_*_total`` family (``retry.merge_stats`` semantics,
        but at scrape time).
        """
        readings = {f"repro_rpc_{k}_total": v
                    for k, v in self.stats.snapshot().items()}
        readings["repro_rpc_endpoints"] = 1
        return readings

    # -- event-loop plumbing -------------------------------------------------
    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._closed:
            # never resurrect a loop thread after close(); a racing
            # caller must fail, not leak a new thread
            raise RpcError(
                f"endpoint to {self.peer} at {self.host}:{self.port} "
                f"is closed")
        if self._loop is None or not self._thread or not self._thread.is_alive():
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=loop.run_forever,
                name=f"rpc-{self.name}->{self.peer}", daemon=True)
            thread.start()
            self._loop, self._thread = loop, thread
        return self._loop

    def _run(self, coro, timeout: float):
        future = asyncio.run_coroutine_threadsafe(coro, self._ensure_loop())
        deadline = time.monotonic() + timeout
        while True:
            # wait in short slices, watching for close(): if another
            # thread tears the endpoint down (service shutdown) the
            # loop may stop before our task even starts, so relying on
            # task cancellation alone can strand this waiter for the
            # full timeout
            try:
                return future.result(min(0.1, timeout))
            except concurrent.futures.TimeoutError:
                if self._closed:
                    future.cancel()
                    raise RpcError(
                        f"endpoint to {self.peer} at "
                        f"{self.host}:{self.port} was closed mid-request"
                    ) from None
                if time.monotonic() >= deadline:
                    future.cancel()
                    raise RpcTimeoutError(
                        f"{self.peer} at {self.host}:{self.port} did not "
                        f"answer within {timeout}s") from None
            except concurrent.futures.CancelledError:
                raise RpcError(
                    f"endpoint to {self.peer} at {self.host}:{self.port} "
                    f"was closed mid-request") from None

    # -- connection management -----------------------------------------------
    @property
    def connected(self) -> bool:
        return self._writer is not None

    def _interruptible_sleep(self, seconds: float) -> None:
        """Backoff sleep that wakes promptly on a concurrent close()."""
        deadline = time.monotonic() + seconds
        while not self._closed:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(0.05, remaining))

    def connect(self) -> None:
        """Connect under the retry policy's backoff, bounded by
        ``connect_timeout`` (the service may still be binding its socket
        when a client process starts -- or be restarting mid-run)."""
        if self._closed:
            raise RpcError(
                f"endpoint to {self.peer} at {self.host}:{self.port} "
                f"is closed")
        if self.connected:
            return
        connect_policy = RetryPolicy(
            max_attempts=1_000_000, base_delay=self.policy.base_delay,
            max_delay=min(self.policy.max_delay, 0.5),
            multiplier=self.policy.multiplier, jitter=self.policy.jitter,
            deadline=self.connect_timeout)
        last_exc: Exception | None = None
        for _ in connect_policy.attempts(rng=self._retry_rng,
                                         sleep=self._interruptible_sleep):
            if self._closed:  # closed by another thread mid-retry
                raise RpcError(
                    f"endpoint to {self.peer} at {self.host}:{self.port} "
                    f"is closed")
            try:
                self._reader, self._writer = self._run(
                    asyncio.open_connection(self.host, self.port),
                    self.connect_timeout)
                self._connects += 1
                if self._connects > 1:
                    self.stats.reconnects += 1
                return
            except (ConnectionError, OSError) as exc:
                last_exc = exc
        raise RpcError(
            f"cannot reach {self.peer} at "
            f"{self.host}:{self.port}: {last_exc}") from last_exc

    def _drop_connection(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None and self._loop is not None:
            def _close():
                try:
                    writer.close()
                except Exception:
                    pass
            self._loop.call_soon_threadsafe(_close)

    def close(self) -> None:
        """Terminal: later requests raise instead of reconnecting.

        In-flight requests (e.g. a training thread blocked on a key
        request from another thread) are cancelled so their callers fail
        fast rather than waiting out their full timeout.
        """
        self._closed = True
        self._drop_connection()
        loop, thread = self._loop, self._thread
        self._loop, self._thread = None, None
        if loop is not None:
            def _shutdown() -> None:
                for task in asyncio.all_tasks(loop):
                    task.cancel()
                loop.call_soon(loop.stop)
            loop.call_soon_threadsafe(_shutdown)
        if thread is not None:
            thread.join(timeout=5)

    def __enter__(self) -> "RpcEndpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request/response ----------------------------------------------------
    async def _send_recv(self, frame_bytes: bytes):
        # capture locally: a concurrent close() nulls the attributes,
        # and that must surface as a (retried/translated) connection
        # error, not an AttributeError
        reader, writer = self._reader, self._writer
        if reader is None or writer is None:
            raise ConnectionError("connection dropped before send")
        writer.write(frame_bytes)
        await writer.drain()
        frame = await read_frame(reader, self.max_frame_bytes)
        if frame is None:
            raise ConnectionError(f"{self.peer} closed the connection")
        return frame

    def request(self, msg, ctx: WireContext | None = None):
        """Send one message, return the decoded response (blocking).

        Transport failures (resets, frame errors, per-attempt timeouts)
        reconnect and resend under the endpoint's
        :class:`~repro.rpc.retry.RetryPolicy` -- exponential backoff
        with full jitter between attempts, never a zero-sleep reconnect
        spin.  ``_closed`` is re-checked before every attempt (and the
        backoff sleep wakes on it), so a concurrent ``close()`` fails
        the request fast instead of letting it reconnect and resend.
        """
        with self._lock:
            if self._closed:
                raise RpcError(
                    f"endpoint to {self.peer} at {self.host}:{self.port} "
                    f"is closed")
            header, body = encode_message(msg, ctx)
            self._seq += 1
            header["seq"] = self._seq
            # encode once, checking the size limit BEFORE any bytes move
            # -- an oversized frame fails fast with the real reason
            # instead of burning retries on receiver-side drops
            frame_bytes = encode_frame(header, body, self.max_frame_bytes)
            last_exc: Exception | None = None
            start = time.monotonic()
            attempts_made = 0
            for attempt in self.policy.attempts(
                    rng=self._retry_rng, sleep=self._interruptible_sleep):
                if self._closed:
                    # a concurrent close() mid-retry must not let the
                    # loop reconnect and resend
                    raise RpcError(
                        f"endpoint to {self.peer} at "
                        f"{self.host}:{self.port} was closed mid-request")
                attempts_made = attempt
                self.stats.attempts += 1
                if attempt > 1:
                    self.stats.retries += 1
                timeout = self.policy.attempt_timeout_for(
                    start, default=self.timeout)
                try:
                    if not self.connected:
                        self.connect()
                    resp_header, resp_body = self._run(
                        self._send_recv(frame_bytes), timeout)
                except RpcTimeoutError as exc:
                    self._drop_connection()
                    self.stats.timeouts += 1
                    last_exc = exc
                    continue
                except (ConnectionError, OSError, FrameError) as exc:
                    self._drop_connection()
                    self.stats.drops += 1
                    last_exc = exc
                    continue
                self.traffic.record(self.name, self.peer, header["kind"],
                                    len(body))
                self.traffic.record(self.peer, self.name,
                                    str(resp_header.get("kind")),
                                    len(resp_body))
                resp = decode_message(resp_header, resp_body, ctx)
                if isinstance(resp, ErrorMessage):
                    raise RpcRemoteError(resp.message, resp.error_type)
                if resp_header.get("seq") != header["seq"]:
                    self._drop_connection()
                    raise RpcError(
                        f"out-of-sequence response from {self.peer} "
                        f"(sent {header['seq']}, "
                        f"got {resp_header.get('seq')})")
                return resp
            self.stats.giveups += 1
            raise RpcError(
                f"request {header['kind']!r} to {self.peer} at "
                f"{self.host}:{self.port} failed after "
                f"{attempts_made} attempts: {last_exc}") from last_exc


class RemoteAuthority:
    """Networked stand-in for :class:`~repro.core.entities.TrustedAuthority`.

    On construction it performs the ``public-params`` handshake: group
    parameters and the authority's config come over the wire, local
    :class:`Feip` / :class:`Febo` instances are built for the public
    operations (encrypt / decrypt_raw need no secrets), and public keys
    are fetched lazily per vector length and cached.
    """

    def __init__(self, host: str, port: int, *, name: str = protocol.SERVER,
                 rng: random.Random | None = None, timeout: float = 120.0,
                 connect_timeout: float = 10.0, retries: int | None = None,
                 policy: RetryPolicy | None = None):
        if policy is None and retries is None:
            retries = 1
        self.endpoint = RpcEndpoint(
            host, port, name=name, peer=protocol.AUTHORITY, timeout=timeout,
            connect_timeout=connect_timeout, retries=retries, policy=policy)
        self.name = name
        try:
            resp = self.endpoint.request(PublicParamsRequest(
                etas=(), include_febo=True, requester=name))
        except BaseException:
            # a failed handshake must not leak the endpoint's loop thread
            self.endpoint.close()
            raise
        self.params = resp.group
        self.config = resp.make_config()
        self._ctx = WireContext(self.params, self.config.key_weight_bytes)
        self.feip = Feip(self.params, rng=rng)
        self.febo = Febo(self.params, rng=rng)
        self._feip_mpks: dict[int, FeipPublicKey] = dict(resp.feip_keys)
        self._febo_mpk: FeboPublicKey | None = resp.febo_key

    @property
    def traffic(self) -> TrafficLog:
        return self.endpoint.traffic

    @property
    def wire_ctx(self) -> WireContext:
        """Decode context (group widths) for talking to other services."""
        return self._ctx

    # -- public keys ---------------------------------------------------------
    def feip_public_key(self, eta: int) -> FeipPublicKey:
        if eta not in self._feip_mpks:
            resp = self.endpoint.request(
                PublicParamsRequest(etas=(eta,), include_febo=False,
                                    requester=self.name),
                self._ctx)
            self._feip_mpks[eta] = resp.feip_keys[eta]
        return self._feip_mpks[eta]

    def febo_public_key(self) -> FeboPublicKey:
        if self._febo_mpk is None:
            resp = self.endpoint.request(
                PublicParamsRequest(etas=(), include_febo=True,
                                    requester=self.name),
                self._ctx)
            self._febo_mpk = resp.febo_key
        return self._febo_mpk

    # -- function keys -------------------------------------------------------
    def _feip_request(self, rows, batched: bool):
        if not rows:
            return []
        rows = [[int(v) for v in row] for row in rows]
        resp = self.endpoint.request(
            FeipKeyRequest(rows=rows, batched=batched, requester=self.name),
            self._ctx)
        return resp.keys

    def derive_feip_keys(self, rows, requester: str | None = None):
        return self._feip_request(rows, batched=False)

    def derive_feip_keys_batch(self, rows, requester: str | None = None):
        return self._feip_request(rows, batched=True)

    def _febo_request(self, requests, batched: bool):
        if not requests:
            return []
        requests = [(int(cmt), str(op), int(y)) for cmt, op, y in requests]
        resp = self.endpoint.request(
            FeboKeyRequest(requests=requests, batched=batched,
                           requester=self.name),
            self._ctx)
        # the wire drops per-key commitments (the requester knows them);
        # re-attach so decrypt-time consistency checks stay armed
        return [
            FeboFunctionKey(op=key.op, y=key.y, sk=key.sk, cmt=cmt)
            for key, (cmt, _, _) in zip(resp.keys, requests)
        ]

    def derive_febo_keys(self, requests, requester: str | None = None):
        return self._febo_request(requests, batched=False)

    def derive_febo_keys_batch(self, requests, requester: str | None = None):
        return self._febo_request(requests, batched=True)

    def close(self) -> None:
        self.endpoint.close()

    def __enter__(self) -> "RemoteAuthority":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
