"""The client agent: encrypt locally, upload over the wire.

A data owner's whole interaction with the networked runtime:

1. handshake with the authority key service (public params + keys),
2. encrypt its shard locally with :class:`~repro.core.entities.Client`
   (plaintext never leaves the process),
3. ship the encrypted dataset to the training server in one
   ``encrypted-data`` frame and wait for the acknowledgement.
"""

from __future__ import annotations

import random

import numpy as np

from repro.core import protocol
from repro.core.entities import Client
from repro.data.preprocess import LabelMapper
from repro.rpc.client import RemoteAuthority, RpcEndpoint
from repro.rpc.messages import (
    KIND_SHARD_CHUNK,
    Ack,
    EncryptedDataUpload,
    ShardChunk,
    ShardResumeQuery,
    TrainCheckpointRequest,
    TrainStatusRequest,
    shard_fingerprint,
)
from repro.rpc.retry import DEFAULT_POLICY, RetryPolicy, merge_stats


def plan_shard_chunks(dataset, name: str, ctx, chunk_bytes: int,
                      stats: dict | None = None
                      ) -> tuple[dict, str, list[bytes]]:
    """Split one encrypted shard into a resumable chunk plan.

    Serializes the upload exactly as the single-frame path would (same
    header, same body bytes), fingerprints it, and slices the body into
    ``chunk_bytes``-sized pieces.  The returned ``(meta, fingerprint,
    chunks)`` triple is everything :func:`upload_planned_chunks` needs;
    keeping the plan lets a test (or a crashed-and-restarted client)
    resume the very same upload instead of re-encrypting.
    """
    if chunk_bytes < 1:
        raise ValueError("chunk_bytes must be >= 1")
    msg = EncryptedDataUpload(dataset=dataset, client_name=name, stats=stats)
    meta = msg.header()
    body = msg.body(ctx)
    fingerprint = shard_fingerprint(meta, body)
    chunks = [body[i:i + chunk_bytes]
              for i in range(0, len(body), chunk_bytes)] or [b""]
    return meta, fingerprint, chunks


def upload_planned_chunks(server: RpcEndpoint, *, name: str, meta: dict,
                          fingerprint: str, chunks: list[bytes],
                          start_probe: bool = True) -> dict:
    """Send a chunk plan, resuming past whatever the server already has.

    Opens with a ``shard-resume`` query so a reconnecting client never
    re-sends an acked chunk (and sends nothing at all when the whole
    shard already landed), then streams the remaining chunks in order.
    Chunk 0 carries the upload metadata; each chunk is individually
    acknowledged, so the resume offset advances monotonically even if
    the connection dies again mid-stream.
    """
    count = len(chunks)
    next_index = 0
    resumed_from = 0
    if start_probe:
        probe = server.request(
            ShardResumeQuery(fingerprint=fingerprint, count=count,
                             client_name=name))
        if not isinstance(probe, Ack):
            raise TypeError(f"expected an ack, got {probe.kind!r}")
        if probe.info.get("accepted"):
            return {"name": name, "count": count, "sent": 0,
                    "resumed_from": count, "ack": probe.info}
        next_index = int(probe.info.get("next_index", 0))
        resumed_from = next_index
    ack = None
    sent = 0
    while next_index < count:
        ack = server.request(ShardChunk(
            fingerprint=fingerprint, index=next_index, count=count,
            chunk=chunks[next_index],
            meta=meta if next_index == 0 else None, client_name=name))
        if not isinstance(ack, Ack):
            raise TypeError(f"expected an ack, got {ack.kind!r}")
        sent += 1
        next_index = int(ack.info.get("next_index", next_index + 1))
    if ack is None:  # count chunks were already all on the server
        ack = server.request(ShardResumeQuery(
            fingerprint=fingerprint, count=count, client_name=name))
    return {"name": name, "count": count, "sent": sent,
            "resumed_from": resumed_from, "ack": ack.info}


def upload_shard(authority_address: tuple[str, int],
                 server_address: tuple[str, int],
                 features: np.ndarray, labels: np.ndarray, num_classes: int,
                 *, name: str = protocol.CLIENT,
                 label_mapper: LabelMapper | None = None,
                 rng: random.Random | None = None,
                 workers: int | None = None,
                 timeout: float = 120.0,
                 policy: RetryPolicy | None = None,
                 chunk_bytes: int | None = None) -> dict:
    """Encrypt one shard and deliver it to the training server.

    ``workers`` parallelizes the local encryption the same way the
    server parallelizes decryption: the client's
    :class:`~repro.fe.engine.EncryptionEngine` banks offline nonce
    material on a :class:`~repro.matrix.parallel.SecureComputePool`
    before the encryption loop runs online-only.  Plaintext still never
    leaves the process; worker processes never touch sockets.

    ``policy`` governs retry/backoff on both connections (authority and
    server); it defaults to :data:`~repro.rpc.retry.DEFAULT_POLICY`.
    Re-uploading after a transport failure is safe -- the server keys
    shards by client name, so a resent upload overwrites, not appends.

    ``chunk_bytes`` switches the delivery to the resumable chunked
    protocol: the serialized upload body is split into fingerprinted
    chunks with per-chunk acks, and a dropped connection resumes at the
    last acked chunk instead of re-sending the whole shard.  ``None``
    keeps the legacy single-frame upload.

    Returns a summary with the server's acknowledgement, the byte count
    that crossed each connection, and the merged fault/retry counters
    from both endpoints under ``"retry"``.
    """
    if policy is None:
        policy = DEFAULT_POLICY
    with RemoteAuthority(*authority_address, name=name, rng=rng,
                         timeout=timeout, policy=policy) as authority:
        client = Client(authority, label_mapper=label_mapper, name=name,
                        workers=workers)
        dataset = client.encrypt_tabular(features, labels, num_classes)
        # the engine's hit/miss counters ride along with the upload so
        # the training server's metrics scrape covers the encrypt side
        engine_stats = (client.engine.stats()
                        if client.engine is not None else None)
        with RpcEndpoint(*server_address, name=name, peer=protocol.SERVER,
                         timeout=timeout, policy=policy) as server:
            chunked = None
            if chunk_bytes is not None:
                meta, fingerprint, chunks = plan_shard_chunks(
                    dataset, name, authority.wire_ctx, chunk_bytes,
                    stats=engine_stats)
                chunked = upload_planned_chunks(
                    server, name=name, meta=meta, fingerprint=fingerprint,
                    chunks=chunks)
                ack = Ack(info=chunked["ack"])
                upload_bytes = server.traffic.total_bytes(
                    sender=name, kind=KIND_SHARD_CHUNK)
            else:
                ack = server.request(
                    EncryptedDataUpload(dataset=dataset, client_name=name,
                                        stats=engine_stats),
                    authority.wire_ctx)
                if not isinstance(ack, Ack):
                    raise TypeError(f"expected an ack, got {ack.kind!r}")
                upload_bytes = server.traffic.total_bytes(
                    sender=name, kind=protocol.KIND_ENCRYPTED_DATA)
            retry_report = merge_stats(authority.endpoint.stats.snapshot(),
                                       server.stats.snapshot())
        summary = {
            "name": name,
            "n_samples": len(dataset),
            "ack": ack.info,
            "upload_bytes": upload_bytes,
            # only what actually crossed the authority socket --
            # Client.encrypt_tabular also logs the logical
            # client->server upload record into this TrafficLog, which
            # belongs to the server connection, not this one
            "authority_bytes": authority.traffic.total_bytes(
                sender=name, receiver=protocol.AUTHORITY),
            "retry": retry_report,
        }
        if chunked is not None:
            summary["chunks"] = {key: chunked[key] for key in
                                 ("count", "sent", "resumed_from")}
        return summary


def request_checkpoint(server_address: tuple[str, int], *,
                       name: str = protocol.CLIENT,
                       timeout: float = 30.0) -> dict:
    """Ask a training server for an on-demand durable snapshot.

    Returns the server's ack info: ``scheduled`` is True when a
    training thread will write the checkpoint after its in-flight
    batch; ``checkpoint`` reports the last snapshot the server wrote.
    The server must have been started with a checkpoint path.
    """
    with RpcEndpoint(*server_address, name=name, peer=protocol.SERVER,
                     timeout=timeout) as server:
        ack = server.request(TrainCheckpointRequest(requester=name))
        if not isinstance(ack, Ack):
            raise TypeError(f"expected an ack, got {ack.kind!r}")
        return ack.info


def fetch_status(server_address: tuple[str, int], *,
                 name: str = protocol.CLIENT, timeout: float = 30.0):
    """One-shot ``train-status`` query against a training server."""
    with RpcEndpoint(*server_address, name=name, peer=protocol.SERVER,
                     timeout=timeout) as server:
        return server.request(TrainStatusRequest(requester=name))
