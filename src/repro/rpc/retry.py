"""Unified retry/backoff policy for the distributed runtime.

Every component that retries -- :class:`~repro.rpc.client.RpcEndpoint`
requests and connects, :func:`~repro.rpc.runtime.wait_for_port`, client
agent uploads, and the *simulated* channel in :mod:`repro.core.network`
-- speaks this one vocabulary, so "how often do we resend, how long do
we back off, when do we give up" is configured in exactly one place and
the fault counters from simulated what-if experiments and real-socket
chaos runs compose into one report.

The policy is capped exponential backoff with full jitter (the AWS
architecture-blog shape): attempt ``k`` sleeps ``uniform(0, min(max_
delay, base_delay * multiplier**(k-1)))``.  Full jitter decorrelates a
thundering herd of clients hammering a restarting authority; passing a
seeded ``random.Random`` makes the schedule reproducible for tests.

This module is intentionally stdlib-only so lower layers (e.g.
``repro.core.network``) can import it without a dependency cycle.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

#: Counter names shared by every fault/retry report in the runtime --
#: RpcEndpoint.stats, SimulatedChannel.stats, ChaosProxy summaries.
STAT_KEYS = ("attempts", "retries", "drops", "timeouts", "reconnects",
             "giveups")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter, per-attempt timeout and an
    overall deadline.

    Args:
        max_attempts: total tries (1 = no retry).
        base_delay: backoff before the second attempt (seconds).
        max_delay: backoff ceiling.
        multiplier: exponential growth factor per failed attempt.
        jitter: full jitter (``uniform(0, delay)``) when True, the bare
            capped-exponential delay when False (deterministic -- used
            by the simulated channel's clock accounting).
        attempt_timeout: per-attempt timeout override; ``None`` defers
            to the caller's own timeout (e.g. ``RpcEndpoint.timeout``).
        deadline: overall wall-clock budget across all attempts and
            backoffs; ``None`` means attempts alone bound the loop.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: bool = True
    attempt_timeout: float | None = None
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def backoff(self, failures: int,
                rng: random.Random | None = None) -> float:
        """Sleep before the attempt after ``failures`` failed tries."""
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** max(0, failures - 1))
        if self.jitter:
            return (rng or random).uniform(0.0, delay)
        return delay

    def attempts(self, *, rng: random.Random | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic,
                 ) -> Iterator[int]:
        """Yield 1-based attempt numbers, backing off between them.

        The caller loops ``for attempt in policy.attempts(): try ...``,
        breaking (or returning) on success; exhaustion of the generator
        means attempts or the deadline ran out.  ``sleep`` is injectable
        so an endpoint can wake early on ``close()`` and tests can run
        at full speed.
        """
        start = clock()
        attempt = 0
        while True:
            attempt += 1
            yield attempt
            if attempt >= self.max_attempts:
                return
            if self.deadline is not None \
                    and clock() - start >= self.deadline:
                return
            delay = self.backoff(attempt, rng)
            if self.deadline is not None:
                delay = min(delay,
                            max(0.0, self.deadline - (clock() - start)))
            if delay > 0:
                sleep(delay)

    def attempt_timeout_for(self, start: float, default: float | None = None,
                            clock: Callable[[], float] = time.monotonic,
                            ) -> float | None:
        """Effective per-attempt timeout at this moment.

        ``attempt_timeout`` (or the caller's ``default``) clipped to
        whatever remains of the overall ``deadline`` started at
        ``start``, so the last attempt cannot overshoot the budget.
        """
        per = self.attempt_timeout if self.attempt_timeout is not None \
            else default
        if self.deadline is None:
            return per
        remaining = max(0.001, self.deadline - (clock() - start))
        return remaining if per is None else min(per, remaining)


#: Endpoint default: a handful of quick retries, never more than ~4s of
#: cumulative backoff -- transient socket weather, not a long outage.
DEFAULT_POLICY = RetryPolicy(max_attempts=4, base_delay=0.05, max_delay=1.0)

#: Service-to-authority default: generous enough that a killed and
#: restarted authority (seconds of connection refusals) is ridden out
#: instead of failing a multi-hour training job.
SERVICE_POLICY = RetryPolicy(max_attempts=8, base_delay=0.1, max_delay=2.0)


@dataclass
class RetryStats:
    """Fault/retry counters, one shared vocabulary runtime-wide.

    ``attempts`` counts every try, ``retries`` the tries after the
    first, ``drops`` transport failures observed (connection resets,
    frame errors -- or simulated losses), ``timeouts`` per-attempt
    deadline expiries, ``reconnects`` connections re-established after a
    drop, ``giveups`` requests that exhausted their policy.
    """

    attempts: int = 0
    retries: int = 0
    drops: int = 0
    timeouts: int = 0
    reconnects: int = 0
    giveups: int = 0

    def snapshot(self) -> dict[str, int]:
        return {key: getattr(self, key) for key in STAT_KEYS}


def merge_stats(*snapshots: dict[str, int]) -> dict[str, int]:
    """Sum fault-counter snapshots into one report.

    Accepts any dicts using the :data:`STAT_KEYS` vocabulary (endpoint
    stats, simulated-channel stats, chaos summaries); unknown keys are
    summed too, so richer reports survive the merge.
    """
    merged: dict[str, int] = {key: 0 for key in STAT_KEYS}
    for snap in snapshots:
        for key, value in snap.items():
            merged[key] = merged.get(key, 0) + int(value)
    return merged


def call_with_retry(policy: RetryPolicy, fn: Callable[[], object], *,
                    retry_on: tuple[type[BaseException], ...] = (Exception,),
                    stats: RetryStats | None = None,
                    rng: random.Random | None = None,
                    sleep: Callable[[float], None] = time.sleep):
    """Run ``fn`` under ``policy``; re-raise the last error on giveup."""
    last_exc: BaseException | None = None
    for attempt in policy.attempts(rng=rng, sleep=sleep):
        if stats is not None:
            stats.attempts += 1
            if attempt > 1:
                stats.retries += 1
        try:
            return fn()
        except retry_on as exc:
            last_exc = exc
            if stats is not None:
                stats.drops += 1
    if stats is not None:
        stats.giveups += 1
    raise last_exc
