"""Typed RPC request/response messages.

Each message maps 1:1 onto a :mod:`repro.core.protocol` message kind
(``public-params``, ``encrypted-data``, ``feip-key-request/-response``,
``febo-key-request/-response`` plus their batched envelope variants) or
onto one of the small control kinds the services add (``ack``,
``error``, ``train-*``, ``predict-*``).

A message serializes to a JSON *header* (kind + counts + metadata) and a
binary *body* packed by :mod:`repro.core.serialization`, so the body
length of every key/data message equals the wire-size formulas used for
traffic accounting -- what the :class:`~repro.core.protocol.TrafficLog`
records is what crossed the socket.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, ClassVar

import numpy as np

from repro.core import protocol
from repro.core import serialization as ser
from repro.core.config import CryptoNNConfig
from repro.core.encdata import (
    EncryptedLabel,
    EncryptedSample,
    EncryptedTabularDataset,
)
from repro.fe.keys import (
    FeboFunctionKey,
    FeboPublicKey,
    FeipFunctionKey,
    FeipPublicKey,
)
from repro.mathutils.group import GroupParams

# Control kinds (not part of the paper's protocol accounting).
KIND_PUBLIC_PARAMS_RESPONSE = "public-params-response"
KIND_SHARD_CHUNK = "shard-chunk"
KIND_SHARD_RESUME = "shard-resume"
KIND_ACK = "ack"
KIND_ERROR = "error"
KIND_TRAIN_START = "train-start"
KIND_TRAIN_STATUS = "train-status"
KIND_TRAIN_STATUS_RESPONSE = "train-status-response"
KIND_TRAIN_CHECKPOINT = "train-checkpoint"
KIND_PREDICT_REQUEST = "predict-request"
KIND_PREDICT_RESPONSE = "predict-response"
KIND_SERVICE_METRICS = "service-metrics"
KIND_SERVICE_METRICS_RESPONSE = "service-metrics-response"
KIND_SERVICE_HEALTH = "service-health"
KIND_SERVICE_HEALTH_RESPONSE = "service-health-response"


class MessageError(Exception):
    """A message that cannot be encoded or decoded."""


@dataclasses.dataclass(frozen=True)
class WireContext:
    """Decode context: group parameters fix every field width."""

    params: GroupParams
    weight_bytes: int = 8


_REGISTRY: dict[str, type] = {}


def _register(*kinds: str):
    def deco(cls):
        for kind in kinds:
            _REGISTRY[kind] = cls
        return cls
    return deco


def encode_message(msg, ctx: WireContext | None = None
                   ) -> tuple[dict[str, Any], bytes]:
    header = {"kind": msg.kind, **msg.header()}
    return header, msg.body(ctx)


def decode_message(header: dict[str, Any], body: bytes,
                   ctx: WireContext | None = None):
    kind = header.get("kind")
    cls = _REGISTRY.get(kind)
    if cls is None:
        raise MessageError(f"unknown message kind {kind!r}")
    try:
        return cls.from_wire(header, body, ctx)
    except MessageError:
        raise
    except (KeyError, ValueError, TypeError, OverflowError) as exc:
        raise MessageError(f"malformed {kind!r} message: {exc}") from exc


def _require_ctx(ctx: WireContext | None) -> WireContext:
    if ctx is None:
        raise MessageError("message requires group parameters to (de)code")
    return ctx


# -- handshake -------------------------------------------------------------------

@_register(protocol.KIND_PUBLIC_PARAMS)
@dataclasses.dataclass
class PublicParamsRequest:
    """Ask the authority for group params, config, and public keys.

    ``etas`` lists the FEIP vector lengths whose master public keys the
    caller wants; ``include_febo`` additionally requests the FEBO key.
    """

    etas: tuple[int, ...] = ()
    include_febo: bool = True
    requester: str = protocol.CLIENT

    kind: ClassVar[str] = protocol.KIND_PUBLIC_PARAMS

    def header(self) -> dict[str, Any]:
        return {"etas": list(self.etas), "febo": self.include_febo,
                "from": self.requester}

    def body(self, ctx: WireContext | None = None) -> bytes:
        return b""

    @classmethod
    def from_wire(cls, header, body, ctx):
        return cls(etas=tuple(int(e) for e in header.get("etas", [])),
                   include_febo=bool(header.get("febo", True)),
                   requester=str(header.get("from", protocol.CLIENT)))


@_register(KIND_PUBLIC_PARAMS_RESPONSE)
@dataclasses.dataclass
class PublicParamsResponse:
    """Group params + config in the header; packed public keys in the body."""

    group: GroupParams
    config: dict[str, Any]
    feip_keys: dict[int, FeipPublicKey] = dataclasses.field(default_factory=dict)
    febo_key: FeboPublicKey | None = None

    kind: ClassVar[str] = KIND_PUBLIC_PARAMS_RESPONSE

    def header(self) -> dict[str, Any]:
        return {"group": ser.group_params_to_dict(self.group),
                "config": self.config,
                "etas": sorted(self.feip_keys),
                "febo": self.febo_key is not None}

    def body(self, ctx: WireContext | None = None) -> bytes:
        parts = [ser.pack_feip_public_key(self.feip_keys[eta])
                 for eta in sorted(self.feip_keys)]
        if self.febo_key is not None:
            parts.append(ser.pack_febo_public_key(self.febo_key))
        return b"".join(parts)

    @classmethod
    def from_wire(cls, header, body, ctx):
        group = ser.group_params_from_dict(header["group"])
        elem = ser.element_size_bytes(group)
        offset = 0
        feip_keys: dict[int, FeipPublicKey] = {}
        for eta in header.get("etas", []):
            eta = int(eta)
            size = (1 + eta) * elem
            feip_keys[eta] = ser.unpack_feip_public_key(
                body[offset:offset + size], group)
            offset += size
        febo_key = None
        if header.get("febo"):
            febo_key = ser.unpack_febo_public_key(
                body[offset:offset + 2 * elem], group)
            offset += 2 * elem
        if offset != len(body):
            raise MessageError(
                f"public-params body holds {len(body)} bytes, parsed {offset}")
        return cls(group=group, config=dict(header.get("config", {})),
                   feip_keys=feip_keys, febo_key=febo_key)

    def make_config(self) -> CryptoNNConfig:
        """Rebuild the authority's config (unknown fields ignored)."""
        fields = {f.name for f in dataclasses.fields(CryptoNNConfig)}
        return CryptoNNConfig(
            **{k: v for k, v in self.config.items() if k in fields})


# -- function keys ---------------------------------------------------------------

@_register(protocol.KIND_FEIP_KEY_REQUEST, protocol.KIND_FEIP_KEY_BATCH_REQUEST)
@dataclasses.dataclass
class FeipKeyRequest:
    """Weight rows for inner-product key derivation.

    ``batched=True`` wires the rows inside one batch envelope and is
    recorded under the ``feip-key-batch-request`` kind; unbatched bodies
    are the raw ``k x n x |w|`` payload of the paper's formula.
    """

    rows: list[list[int]]
    batched: bool = True
    requester: str = protocol.SERVER

    @property
    def kind(self) -> str:
        return (protocol.KIND_FEIP_KEY_BATCH_REQUEST if self.batched
                else protocol.KIND_FEIP_KEY_REQUEST)

    @property
    def eta(self) -> int:
        return len(self.rows[0]) if self.rows else 0

    def header(self) -> dict[str, Any]:
        return {"count": len(self.rows), "eta": self.eta,
                "from": self.requester}

    def body(self, ctx: WireContext | None = None) -> bytes:
        wb = _require_ctx(ctx).weight_bytes
        if self.batched:
            return ser.pack_feip_key_batch_request(self.rows, wb)
        return ser.pack_feip_key_rows(self.rows, wb)

    @classmethod
    def from_wire(cls, header, body, ctx):
        wb = _require_ctx(ctx).weight_bytes
        batched = header["kind"] == protocol.KIND_FEIP_KEY_BATCH_REQUEST
        if batched:
            rows = ser.unpack_feip_key_batch_request(body, wb)
        else:
            rows = ser.unpack_feip_key_rows(
                body, int(header["count"]), int(header["eta"]), wb)
        return cls(rows=rows, batched=batched,
                   requester=str(header.get("from", protocol.SERVER)))


@_register(protocol.KIND_FEIP_KEY_RESPONSE, protocol.KIND_FEIP_KEY_BATCH_RESPONSE)
@dataclasses.dataclass
class FeipKeyResponse:
    """Derived inner-product keys (sk + bound weight vector each)."""

    keys: list[FeipFunctionKey]
    batched: bool = True

    @property
    def kind(self) -> str:
        return (protocol.KIND_FEIP_KEY_BATCH_RESPONSE if self.batched
                else protocol.KIND_FEIP_KEY_RESPONSE)

    @property
    def eta(self) -> int:
        return len(self.keys[0].y) if self.keys else 0

    def header(self) -> dict[str, Any]:
        return {"count": len(self.keys), "eta": self.eta}

    def body(self, ctx: WireContext | None = None) -> bytes:
        ctx = _require_ctx(ctx)
        if self.batched:
            return ser.pack_feip_key_batch_response(
                self.keys, ctx.params, ctx.weight_bytes)
        return ser.pack_feip_keys(self.keys, ctx.params, ctx.weight_bytes)

    @classmethod
    def from_wire(cls, header, body, ctx):
        ctx = _require_ctx(ctx)
        batched = header["kind"] == protocol.KIND_FEIP_KEY_BATCH_RESPONSE
        if batched:
            keys = ser.unpack_feip_key_batch_response(
                body, ctx.params, ctx.weight_bytes)
        else:
            keys = ser.unpack_feip_keys(
                body, int(header["count"]), int(header["eta"]), ctx.params,
                ctx.weight_bytes)
        return cls(keys=keys, batched=batched)


@_register(protocol.KIND_FEBO_KEY_REQUEST, protocol.KIND_FEBO_KEY_BATCH_REQUEST)
@dataclasses.dataclass
class FeboKeyRequest:
    """Per-ciphertext ``(commitment, op, operand)`` key requests."""

    requests: list[tuple[int, str, int]]
    batched: bool = True
    requester: str = protocol.SERVER

    @property
    def kind(self) -> str:
        return (protocol.KIND_FEBO_KEY_BATCH_REQUEST if self.batched
                else protocol.KIND_FEBO_KEY_REQUEST)

    def header(self) -> dict[str, Any]:
        return {"count": len(self.requests), "from": self.requester}

    def body(self, ctx: WireContext | None = None) -> bytes:
        ctx = _require_ctx(ctx)
        if self.batched:
            return ser.pack_febo_key_batch_request(
                self.requests, ctx.params, ctx.weight_bytes)
        return ser.pack_febo_requests(self.requests, ctx.params,
                                      ctx.weight_bytes)

    @classmethod
    def from_wire(cls, header, body, ctx):
        ctx = _require_ctx(ctx)
        batched = header["kind"] == protocol.KIND_FEBO_KEY_BATCH_REQUEST
        if batched:
            requests = ser.unpack_febo_key_batch_request(
                body, ctx.params, ctx.weight_bytes)
        else:
            requests = ser.unpack_febo_requests(
                body, int(header["count"]), ctx.params, ctx.weight_bytes)
        return cls(requests=requests, batched=batched,
                   requester=str(header.get("from", protocol.SERVER)))


@_register(protocol.KIND_FEBO_KEY_RESPONSE, protocol.KIND_FEBO_KEY_BATCH_RESPONSE)
@dataclasses.dataclass
class FeboKeyResponse:
    """Derived basic-operation keys, in request order (cmt re-attached
    client-side from the matching request)."""

    keys: list[FeboFunctionKey]
    batched: bool = True

    @property
    def kind(self) -> str:
        return (protocol.KIND_FEBO_KEY_BATCH_RESPONSE if self.batched
                else protocol.KIND_FEBO_KEY_RESPONSE)

    def header(self) -> dict[str, Any]:
        return {"count": len(self.keys)}

    def body(self, ctx: WireContext | None = None) -> bytes:
        ctx = _require_ctx(ctx)
        if self.batched:
            return ser.pack_febo_key_batch_response(
                self.keys, ctx.params, ctx.weight_bytes)
        return ser.pack_febo_keys(self.keys, ctx.params, ctx.weight_bytes)

    @classmethod
    def from_wire(cls, header, body, ctx):
        ctx = _require_ctx(ctx)
        batched = header["kind"] == protocol.KIND_FEBO_KEY_BATCH_RESPONSE
        if batched:
            keys = ser.unpack_febo_key_batch_response(
                body, ctx.params, ctx.weight_bytes)
        else:
            keys = ser.unpack_febo_keys(
                body, int(header["count"]), ctx.params, ctx.weight_bytes)
        return cls(keys=keys, batched=batched)


# -- encrypted data upload -------------------------------------------------------

@_register(protocol.KIND_ENCRYPTED_DATA)
@dataclasses.dataclass
class EncryptedDataUpload:
    """A client's one-time encrypted shard (client -> training server).

    The body packs every sample then every label with the fixed-width
    element codecs, so its length equals
    :func:`repro.core.serialization.encrypted_tabular_wire_size`.
    ``eval_labels`` (harness-only ground truth) rides in the header; a
    real deployment would strip it.
    """

    dataset: EncryptedTabularDataset
    client_name: str = protocol.CLIENT
    #: optional client-side encryption-engine counters (precomputed /
    #: consumed / misses); the training server folds them into its
    #: metrics registry so the ops surface covers the encrypt side too
    stats: dict[str, int] | None = None

    kind: ClassVar[str] = protocol.KIND_ENCRYPTED_DATA

    def header(self) -> dict[str, Any]:
        d = self.dataset
        header = {
            "n": len(d), "n_features": d.n_features,
            "num_classes": d.num_classes, "scale": d.scale,
            "from": self.client_name,
            "eval_labels": (d.eval_labels.tolist()
                            if d.eval_labels is not None else None),
        }
        if self.stats:
            header["stats"] = {k: int(v) for k, v in self.stats.items()}
        return header

    def body(self, ctx: WireContext | None = None) -> bytes:
        params = _require_ctx(ctx).params
        parts = []
        for sample in self.dataset.samples:
            parts.append(ser.pack_feip_ciphertext(sample.features_ip, params))
            parts.extend(ser.pack_febo_ciphertext(c, params)
                         for c in sample.features_bo)
        for label in self.dataset.labels:
            parts.append(ser.pack_feip_ciphertext(label.onehot_ip, params))
            parts.extend(ser.pack_febo_ciphertext(c, params)
                         for c in label.onehot_bo)
        return b"".join(parts)

    @classmethod
    def from_wire(cls, header, body, ctx):
        params = _require_ctx(ctx).params
        n = int(header["n"])
        n_features = int(header["n_features"])
        num_classes = int(header["num_classes"])
        scale = int(header["scale"])
        # shape sanity BEFORE any size arithmetic: a hostile header must
        # fail with a clear reason, not an overflow or a giant allocation
        if n < 0 or n_features < 1 or num_classes < 1 or scale < 1:
            raise MessageError(
                f"implausible upload shape: n={n} features={n_features} "
                f"classes={num_classes} scale={scale}")
        elem = ser.element_size_bytes(params)
        febo_size = ser.febo_ciphertext_wire_size(params)
        expected = ser.encrypted_tabular_wire_size(
            n, n_features, num_classes, params)
        if len(body) != expected:
            raise MessageError(
                f"encrypted-data body holds {len(body)} bytes, "
                f"expected {expected}")
        offset = 0

        def take(size: int) -> bytes:
            nonlocal offset
            chunk = body[offset:offset + size]
            offset += size
            return chunk

        # validate=True: every element of an untrusted upload is checked
        # for subgroup membership (cheap Jacobi test) so garbage
        # ciphertexts are rejected at the decode boundary instead of
        # poisoning the training loop
        samples = []
        for _ in range(n):
            ip = ser.unpack_feip_ciphertext(
                take((1 + n_features) * elem), params, validate=True)
            bo = tuple(ser.unpack_febo_ciphertext(take(febo_size), params,
                                                  validate=True)
                       for _ in range(n_features))
            samples.append(EncryptedSample(features_ip=ip, features_bo=bo))
        labels = []
        for _ in range(n):
            ip = ser.unpack_feip_ciphertext(
                take((1 + num_classes) * elem), params, validate=True)
            bo = tuple(ser.unpack_febo_ciphertext(take(febo_size), params,
                                                  validate=True)
                       for _ in range(num_classes))
            labels.append(EncryptedLabel(onehot_ip=ip, onehot_bo=bo))
        eval_labels = header.get("eval_labels")
        dataset = EncryptedTabularDataset(
            samples=samples, labels=labels, num_classes=num_classes,
            n_features=n_features, scale=int(header["scale"]),
            eval_labels=(np.asarray(eval_labels, dtype=np.int64)
                         if eval_labels is not None else None),
        )
        stats = header.get("stats")
        return cls(dataset=dataset,
                   client_name=str(header.get("from", protocol.CLIENT)),
                   stats=({k: int(v) for k, v in stats.items()}
                          if stats else None))


# -- resumable chunked uploads ---------------------------------------------------

#: Hard cap on chunks per shard: a hostile ``count`` must not reserve
#: an unbounded assembly table.  1M chunks of even 1 KiB is already far
#: past any legitimate upload.
MAX_SHARD_CHUNKS = 1_048_576


def shard_fingerprint(meta: dict[str, Any], body: bytes) -> str:
    """Content fingerprint of one encrypted shard (meta + body bytes).

    The client computes it once over the exact bytes it will chunk; the
    server recomputes it over the reassembled bytes, so a corrupted or
    mixed-up chunk stream can never be accepted as a shard.  It also
    keys idempotency: re-uploading the same shard (same fingerprint)
    after a lost ack is acknowledged as a duplicate, never re-trained.
    """
    canonical = json.dumps(meta, sort_keys=True,
                           separators=(",", ":")).encode("utf-8")
    digest = hashlib.sha256()
    digest.update(canonical)
    digest.update(b"\x00")
    digest.update(body)
    return digest.hexdigest()


@_register(KIND_SHARD_CHUNK)
@dataclasses.dataclass
class ShardChunk:
    """One fingerprinted slice of an ``encrypted-data`` body.

    The chunk body is an opaque byte range of the full upload body, so
    no decode context is needed until the final chunk completes the
    assembly.  ``meta`` (the upload's ``encrypted-data`` header fields)
    rides only on chunk 0; a resumed upload starts past it and the
    server already holds the meta from the first attempt.
    """

    fingerprint: str
    index: int
    count: int
    chunk: bytes = b""
    meta: dict[str, Any] | None = None
    client_name: str = protocol.CLIENT

    kind: ClassVar[str] = KIND_SHARD_CHUNK

    def header(self) -> dict[str, Any]:
        header = {"fp": self.fingerprint, "index": self.index,
                  "count": self.count, "from": self.client_name}
        if self.meta is not None:
            header["meta"] = self.meta
        return header

    def body(self, ctx: WireContext | None = None) -> bytes:
        return self.chunk

    @classmethod
    def from_wire(cls, header, body, ctx):
        index = int(header["index"])
        count = int(header["count"])
        if not 1 <= count <= MAX_SHARD_CHUNKS:
            raise MessageError(
                f"implausible chunk count {count} (limit "
                f"{MAX_SHARD_CHUNKS})")
        if not 0 <= index < count:
            raise MessageError(
                f"chunk index {index} outside [0, {count})")
        meta = header.get("meta")
        return cls(fingerprint=str(header["fp"]), index=index, count=count,
                   chunk=body, meta=dict(meta) if meta is not None else None,
                   client_name=str(header.get("from", protocol.CLIENT)))


@_register(KIND_SHARD_RESUME)
@dataclasses.dataclass
class ShardResumeQuery:
    """Where did my upload get to?  (client -> training server).

    Answered with an :class:`Ack` whose info carries ``next_index`` (the
    first chunk the server does not hold), ``received``, and
    ``accepted`` (the shard with this fingerprint already landed whole,
    so nothing needs sending at all).
    """

    fingerprint: str
    count: int
    client_name: str = protocol.CLIENT

    kind: ClassVar[str] = KIND_SHARD_RESUME

    def header(self) -> dict[str, Any]:
        return {"fp": self.fingerprint, "count": self.count,
                "from": self.client_name}

    def body(self, ctx: WireContext | None = None) -> bytes:
        return b""

    @classmethod
    def from_wire(cls, header, body, ctx):
        count = int(header["count"])
        if not 1 <= count <= MAX_SHARD_CHUNKS:
            raise MessageError(
                f"implausible chunk count {count} (limit "
                f"{MAX_SHARD_CHUNKS})")
        return cls(fingerprint=str(header["fp"]), count=count,
                   client_name=str(header.get("from", protocol.CLIENT)))


# -- control messages ------------------------------------------------------------

@_register(KIND_ACK)
@dataclasses.dataclass
class Ack:
    """Generic success acknowledgement with a small info payload."""

    info: dict[str, Any] = dataclasses.field(default_factory=dict)

    kind: ClassVar[str] = KIND_ACK

    def header(self) -> dict[str, Any]:
        return {"info": self.info}

    def body(self, ctx: WireContext | None = None) -> bytes:
        return b""

    @classmethod
    def from_wire(cls, header, body, ctx):
        return cls(info=dict(header.get("info", {})))


@_register(KIND_ERROR)
@dataclasses.dataclass
class ErrorMessage:
    """A remote failure; the client raises it as ``RpcRemoteError``."""

    message: str
    error_type: str = "RpcError"

    kind: ClassVar[str] = KIND_ERROR

    def header(self) -> dict[str, Any]:
        return {"message": self.message, "type": self.error_type}

    def body(self, ctx: WireContext | None = None) -> bytes:
        return b""

    @classmethod
    def from_wire(cls, header, body, ctx):
        return cls(message=str(header.get("message", "")),
                   error_type=str(header.get("type", "RpcError")))


@_register(KIND_TRAIN_START)
@dataclasses.dataclass
class TrainStart:
    """Force the training server to start (before all expected uploads)."""

    requester: str = protocol.SERVER

    kind: ClassVar[str] = KIND_TRAIN_START

    def header(self) -> dict[str, Any]:
        return {"from": self.requester}

    def body(self, ctx: WireContext | None = None) -> bytes:
        return b""

    @classmethod
    def from_wire(cls, header, body, ctx):
        return cls(requester=str(header.get("from", protocol.SERVER)))


@_register(KIND_TRAIN_CHECKPOINT)
@dataclasses.dataclass
class TrainCheckpointRequest:
    """Ask the training server to write a durable checkpoint now.

    Answered with an :class:`Ack` whose ``info`` reports whether a
    snapshot was scheduled (the training thread writes it after the
    in-flight batch) and the last checkpoint the server knows about.
    Requires the server to have been started with a checkpoint path.
    """

    requester: str = protocol.CLIENT

    kind: ClassVar[str] = KIND_TRAIN_CHECKPOINT

    def header(self) -> dict[str, Any]:
        return {"from": self.requester}

    def body(self, ctx: WireContext | None = None) -> bytes:
        return b""

    @classmethod
    def from_wire(cls, header, body, ctx):
        return cls(requester=str(header.get("from", protocol.CLIENT)))


@_register(KIND_TRAIN_STATUS)
@dataclasses.dataclass
class TrainStatusRequest:
    requester: str = protocol.CLIENT

    kind: ClassVar[str] = KIND_TRAIN_STATUS

    def header(self) -> dict[str, Any]:
        return {"from": self.requester}

    def body(self, ctx: WireContext | None = None) -> bytes:
        return b""

    @classmethod
    def from_wire(cls, header, body, ctx):
        return cls(requester=str(header.get("from", protocol.CLIENT)))


@_register(KIND_TRAIN_STATUS_RESPONSE)
@dataclasses.dataclass
class TrainStatus:
    """Training-server state: waiting / training / done / failed."""

    state: str
    accuracy: float | None = None
    detail: dict[str, Any] = dataclasses.field(default_factory=dict)

    kind: ClassVar[str] = KIND_TRAIN_STATUS_RESPONSE

    def header(self) -> dict[str, Any]:
        return {"state": self.state, "accuracy": self.accuracy,
                "detail": self.detail}

    def body(self, ctx: WireContext | None = None) -> bytes:
        return b""

    @classmethod
    def from_wire(cls, header, body, ctx):
        accuracy = header.get("accuracy")
        return cls(state=str(header["state"]),
                   accuracy=None if accuracy is None else float(accuracy),
                   detail=dict(header.get("detail", {})))


@_register(KIND_PREDICT_REQUEST)
@dataclasses.dataclass
class PredictRequest:
    """FE-based prediction over already-uploaded encrypted samples."""

    indices: list[int]
    requester: str = protocol.CLIENT

    kind: ClassVar[str] = KIND_PREDICT_REQUEST

    def header(self) -> dict[str, Any]:
        return {"indices": [int(i) for i in self.indices],
                "from": self.requester}

    def body(self, ctx: WireContext | None = None) -> bytes:
        return b""

    @classmethod
    def from_wire(cls, header, body, ctx):
        return cls(indices=[int(i) for i in header.get("indices", [])],
                   requester=str(header.get("from", protocol.CLIENT)))


@_register(KIND_PREDICT_RESPONSE)
@dataclasses.dataclass
class PredictResponse:
    """Class scores for the requested samples (server learns them by
    design -- the paper's stated contrast with HE-based prediction)."""

    scores: list[list[float]]

    kind: ClassVar[str] = KIND_PREDICT_RESPONSE

    def header(self) -> dict[str, Any]:
        return {"scores": self.scores}

    def body(self, ctx: WireContext | None = None) -> bytes:
        return b""

    @classmethod
    def from_wire(cls, header, body, ctx):
        return cls(scores=[[float(v) for v in row]
                           for row in header.get("scores", [])])


# -- observability (answered by FramedService itself; no handshake) --------------

@_register(KIND_SERVICE_METRICS)
@dataclasses.dataclass
class MetricsRequest:
    """Scrape a service's metrics registry snapshot."""

    requester: str = protocol.CLIENT

    kind: ClassVar[str] = KIND_SERVICE_METRICS

    def header(self) -> dict[str, Any]:
        return {"from": self.requester}

    def body(self, ctx: WireContext | None = None) -> bytes:
        return b""

    @classmethod
    def from_wire(cls, header, body, ctx):
        return cls(requester=str(header.get("from", protocol.CLIENT)))


@_register(KIND_SERVICE_METRICS_RESPONSE)
@dataclasses.dataclass
class MetricsResponse:
    """One registry snapshot (counters / gauges / histograms), JSON-safe."""

    service: str
    metrics: dict[str, Any] = dataclasses.field(default_factory=dict)

    kind: ClassVar[str] = KIND_SERVICE_METRICS_RESPONSE

    def header(self) -> dict[str, Any]:
        return {"service": self.service, "metrics": self.metrics}

    def body(self, ctx: WireContext | None = None) -> bytes:
        return b""

    @classmethod
    def from_wire(cls, header, body, ctx):
        return cls(service=str(header.get("service", "service")),
                   metrics=dict(header.get("metrics", {})))


@_register(KIND_SERVICE_HEALTH)
@dataclasses.dataclass
class HealthRequest:
    """Readiness probe: is the service able to do useful work yet?"""

    requester: str = protocol.CLIENT

    kind: ClassVar[str] = KIND_SERVICE_HEALTH

    def header(self) -> dict[str, Any]:
        return {"from": self.requester}

    def body(self, ctx: WireContext | None = None) -> bytes:
        return b""

    @classmethod
    def from_wire(cls, header, body, ctx):
        return cls(requester=str(header.get("from", protocol.CLIENT)))


@_register(KIND_SERVICE_HEALTH_RESPONSE)
@dataclasses.dataclass
class HealthResponse:
    """Liveness is implied by answering; ``ready`` is the useful bit."""

    ready: bool
    state: str = "serving"
    detail: dict[str, Any] = dataclasses.field(default_factory=dict)

    kind: ClassVar[str] = KIND_SERVICE_HEALTH_RESPONSE

    def header(self) -> dict[str, Any]:
        return {"ready": self.ready, "state": self.state,
                "detail": self.detail}

    def body(self, ctx: WireContext | None = None) -> bytes:
        return b""

    @classmethod
    def from_wire(cls, header, body, ctx):
        return cls(ready=bool(header.get("ready", False)),
                   state=str(header.get("state", "unknown")),
                   detail=dict(header.get("detail", {})))
