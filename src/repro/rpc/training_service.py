"""The training server: accepts encrypted uploads, trains over the wire.

The service listens for ``encrypted-data`` uploads from client agents.
Once the expected number of clients have delivered their shards (or a
``train-start`` message forces it), it merges the shards in client-name
order (deterministic regardless of upload timing), connects to the
authority key service as a :class:`~repro.rpc.client.RemoteAuthority`,
and drives a :class:`~repro.core.cryptonn.CryptoNNTrainer` -- every
per-iteration function-key request now crosses a real socket, batched
into one envelope per step by default.

The blocking training loop runs in a worker thread
(``asyncio.to_thread``) so the server keeps answering ``train-status``
and, after completion, ``predict-request`` messages.

Durable jobs: started with a ``checkpoint_path``, the server persists
the merged encrypted dataset once (a ``<path>.dataset.json`` sidecar)
and a :class:`~repro.core.checkpoint.TrainerCheckpoint` every
``checkpoint_every`` batches, both atomically.  A server restarted with
``resume=True`` (CLI ``serve-train --resume``) picks the job back up
from disk -- no re-uploads -- and, because the checkpoint carries the
optimizer slots and the shuffle RNG stream, finishes with exactly the
weights, loss curve and batch schedule the uninterrupted run would
have produced.  Neither file contains key material; master secrets
never leave the authority.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import os
import re
import threading

import numpy as np

from repro.core import protocol
from repro.core.checkpoint import (
    TrainerCheckpoint,
    load_encrypted_tabular,
    npz_path,
    save_encrypted_tabular,
    save_model_weights,
)
from repro.core.config import CryptoNNConfig
from repro.core.cryptonn import CryptoNNTrainer
from repro.core.encdata import EncryptedTabularDataset, merge_encrypted_tabular
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential, TrainingHistory
from repro.nn.optimizers import SGD
from repro.rpc.client import RemoteAuthority
from repro.rpc.framing import MAX_FRAME_BYTES
from repro.rpc import messages as messages_mod
from repro.rpc.messages import (
    Ack,
    EncryptedDataUpload,
    ErrorMessage,
    HealthResponse,
    PredictRequest,
    PredictResponse,
    ShardChunk,
    ShardResumeQuery,
    TrainCheckpointRequest,
    TrainStart,
    TrainStatus,
    TrainStatusRequest,
    WireContext,
    shard_fingerprint,
)
from repro.rpc.retry import SERVICE_POLICY, RetryPolicy
from repro.rpc.service import FramedService
from repro.obs.metrics import GLOBAL_REGISTRY
from repro.obs.tracing import GLOBAL_TRACER


#: Message kinds a training server answers without group parameters.
#: Shard chunks are here too: their bodies are opaque byte ranges, so
#: decoding them needs no group widths -- only the final assembly does.
_CTX_FREE_KINDS = frozenset({
    messages_mod.KIND_TRAIN_START,
    messages_mod.KIND_TRAIN_STATUS,
    messages_mod.KIND_TRAIN_CHECKPOINT,
    messages_mod.KIND_PREDICT_REQUEST,
    messages_mod.KIND_SHARD_CHUNK,
    messages_mod.KIND_SHARD_RESUME,
})


@dataclasses.dataclass
class _ShardAssembly:
    """Server-side state of one in-flight chunked upload."""

    fingerprint: str
    count: int
    meta: dict
    chunks: dict[int, bytes] = dataclasses.field(default_factory=dict)
    total_bytes: int = 0

    @property
    def complete(self) -> bool:
        return len(self.chunks) == self.count

    def next_index(self) -> int:
        """First chunk index not yet received (resume offset)."""
        for i in range(self.count):
            if i not in self.chunks:
                return i
        return self.count

    def assemble(self) -> bytes:
        return b"".join(self.chunks[i] for i in range(self.count))


def _natural_key(name: str) -> list:
    """Sort key treating digit runs numerically (client-2 < client-10).

    Keeps the merge order identical to the 0..N-1 enumerate order the
    in-process reference uses, for any client count.
    """
    return [int(token) if token.isdigit() else token
            for token in re.split(r"(\d+)", name)]


def build_mlp(n_features: int, hidden: int, num_classes: int,
              seed: int) -> Sequential:
    """The Dense-ReLU-Dense model every runtime entry point trains."""
    rng = np.random.default_rng(seed)
    return Sequential([
        Dense(n_features, hidden, rng=rng),
        ReLU(),
        Dense(hidden, num_classes, rng=rng),
    ])


def run_training(dataset: EncryptedTabularDataset, authority, *,
                 hidden: int = 8, epochs: int = 1, batch_size: int = 20,
                 learning_rate: float = 0.5, seed: int = 0,
                 loss: str = "cross_entropy",
                 config: CryptoNNConfig | None = None,
                 checkpoint_path=None, checkpoint_every: int | None = None,
                 resume: bool = False, checkpoint_trigger=None,
                 on_checkpoint=None,
                 ) -> tuple[CryptoNNTrainer, TrainingHistory, float]:
    """One deterministic training run over an encrypted dataset.

    The networked training server and the in-process path both call
    this function, so "same seed => same accuracy" holds across
    transports by construction: decryption recovers exact integers,
    hence identical floating-point trajectories either way.  The
    checkpoint arguments pass straight through to ``fit()`` -- with
    ``resume=True`` the run continues bit-exactly from the checkpoint
    at ``checkpoint_path`` (or starts fresh if none was written yet).
    """
    model = build_mlp(dataset.n_features, hidden, dataset.num_classes, seed)
    trainer = CryptoNNTrainer(model, authority, config=config, loss=loss)
    history = trainer.fit(
        dataset, SGD(learning_rate), epochs=epochs, batch_size=batch_size,
        rng=np.random.default_rng(seed),
        checkpoint_path=checkpoint_path, checkpoint_every=checkpoint_every,
        resume=resume, checkpoint_trigger=checkpoint_trigger,
        on_checkpoint=on_checkpoint)
    accuracy = trainer.evaluate(dataset)
    return trainer, history, accuracy


class TrainingService(FramedService):
    """Asyncio TCP server for the CryptoNN training side."""

    entity_name = protocol.SERVER

    def __init__(self, authority_host: str, authority_port: int, *,
                 host: str = "127.0.0.1", port: int = 0,
                 expected_clients: int = 1, hidden: int = 8, epochs: int = 1,
                 batch_size: int = 20, learning_rate: float = 0.5,
                 seed: int = 0, loss: str = "cross_entropy",
                 batch_key_requests: bool = True,
                 checkpoint_path: str | None = None,
                 checkpoint_every: int | None = None,
                 resume: bool = False,
                 authority_timeout: float = 120.0,
                 retry_policy: RetryPolicy | None = None,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 workers: int | None = None,
                 trace_file: str | None = None,
                 chaos_proxy=None,
                 quorum: int | None = None,
                 upload_deadline: float | None = None,
                 model_out: str | None = None,
                 max_requests_per_connection: int | None = None,
                 max_inflight: int | None = None,
                 max_connections: int | None = None):
        super().__init__(
            host, port, max_frame_bytes=max_frame_bytes,
            max_requests_per_connection=max_requests_per_connection,
            max_inflight=max_inflight, max_connections=max_connections)
        self.authority_address = (authority_host, authority_port)
        #: per-request timeout on the authority link; lower it when a
        #: chaos proxy may stall exchanges so the stall converts into a
        #: retried timeout quickly
        self.authority_timeout = authority_timeout
        #: retry/backoff policy for the authority link -- generous by
        #: default so a killed-and-restarted authority is ridden out
        self.retry_policy = (retry_policy if retry_policy is not None
                             else SERVICE_POLICY)
        self.expected_clients = expected_clients
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self.loss = loss
        self.batch_key_requests = batch_key_requests
        self.checkpoint_path = (str(npz_path(checkpoint_path))
                                if checkpoint_path is not None else None)
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        #: the merged encrypted dataset persisted next to the checkpoint
        #: so a restarted server can resume without re-uploads
        self.dataset_path = (f"{self.checkpoint_path}.dataset.json"
                             if checkpoint_path is not None else None)
        if resume and checkpoint_path is None:
            raise ValueError("resume=True requires checkpoint_path")

        #: straggler policy: start once ``quorum`` shards have landed
        #: AND the upload deadline (armed at the first accepted shard)
        #: has expired -- or immediately at ``expected_clients``.  The
        #: default quorum equals ``expected_clients`` (wait for all).
        self.quorum = expected_clients if quorum is None else quorum
        if not 1 <= self.quorum <= expected_clients:
            raise ValueError(
                f"quorum must be in [1, {expected_clients}], "
                f"got {self.quorum}")
        if upload_deadline is not None and upload_deadline <= 0:
            raise ValueError("upload_deadline must be > 0 seconds")
        self.upload_deadline = upload_deadline
        if self.quorum < expected_clients and upload_deadline is None:
            raise ValueError(
                "a quorum below expected_clients requires upload_deadline")
        #: where to write the final model weights after a successful run
        #: (atomic .npz; lets out-of-process drivers compare weights)
        self.model_out = model_out

        #: pooled decryption during training (None = serial); pooled
        #: and serial paths are numerically identical, so this only
        #: changes speed, never the trajectory
        self.workers = workers
        #: JSONL span output for the per-iteration cost decomposition
        self.trace_file = trace_file
        #: optional service-hosted :class:`~repro.rpc.chaos.ChaosProxy`
        #: whose ``fault_summary()`` is merged into ``train-status``
        #: fault reports (and the metrics scrape) alongside the
        #: endpoint/pool counters
        self.chaos_proxy = chaos_proxy

        self.state = "waiting"  # waiting -> training -> done | failed
        self.error: str | None = None
        self.accuracy: float | None = None
        self.history: TrainingHistory | None = None
        self.trainer: CryptoNNTrainer | None = None
        self.dataset: EncryptedTabularDataset | None = None
        self.authority: RemoteAuthority | None = None
        #: counters of the last checkpoint written this run (or None)
        self.last_checkpoint: dict | None = None

        self._shards: list[tuple[str, EncryptedTabularDataset]] = []
        #: in-flight chunked uploads, keyed by client name; bounded so
        #: abandoned partial uploads cannot hold memory forever
        self._uploads: dict[str, _ShardAssembly] = {}
        self.max_pending_uploads = max(16, expected_clients * 2)
        #: fingerprint of the shard each client last completed -- lets a
        #: client that lost the final ack learn its upload already
        #: landed without re-sending a single chunk
        self._accepted_fps: dict[str, str] = {}
        self._deadline_passed = False
        self._deadline_handle: asyncio.TimerHandle | None = None
        self._resuming = False
        self._checkpoint_requested = threading.Event()
        self._done = asyncio.Event()
        self._train_task: asyncio.Task | None = None
        self._predict_lock = threading.Lock()
        self._handshake_lock = asyncio.Lock()
        self._cached_ctx: WireContext | None = None
        self._stopping = False

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        address = await super().start()
        if self.resume and self.state == "waiting" and self.has_durable_job():
            # pick the interrupted job back up from disk: the dataset
            # sidecar replaces the uploads, the trainer checkpoint (if
            # one was written before the crash) replaces the progress
            self._resuming = True
            self._start_training()
        return address

    def has_durable_job(self) -> bool:
        """True when a persisted dataset exists so training can start
        (or finish) without any client uploads."""
        return (self.dataset_path is not None
                and os.path.exists(self.dataset_path))

    async def wait_done(self, timeout: float | None = None) -> None:
        """Block until training finished (or failed)."""
        if timeout is None:
            await self._done.wait()
        else:
            await asyncio.wait_for(self._done.wait(), timeout)

    async def stop(self) -> None:
        # close the authority endpoint FIRST: asyncio.to_thread cannot
        # interrupt a running _train_sync, but its next key request then
        # fails fast on the closed endpoint and the thread exits instead
        # of training (and re-connecting) for hours after "stop".  The
        # attribute stays set so the training thread cannot race in a
        # fresh connection via its None-fallback.
        self._stopping = True
        if self._deadline_handle is not None:
            self._deadline_handle.cancel()
            self._deadline_handle = None
        if self.authority is not None:
            self.authority.close()
        if self._train_task is not None and not self._train_task.done():
            self._train_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._train_task
        await super().stop()

    # -- wire context --------------------------------------------------------
    def _handshake_ctx(self) -> WireContext:
        """Blocking: first call performs the authority handshake."""
        if self._cached_ctx is None:
            if self.authority is None:
                if self._stopping:
                    raise RuntimeError("training server is stopping")
                self.authority = RemoteAuthority(
                    *self.authority_address, name=protocol.SERVER,
                    timeout=self.authority_timeout,
                    policy=self.retry_policy)
                if self._stopping:
                    self.authority.close()
                    raise RuntimeError("training server is stopping")
            self._cached_ctx = self.authority.wire_ctx
        return self._cached_ctx

    async def _wire_context(self) -> WireContext:
        if self._cached_ctx is None:
            # serialize concurrent first-connections: exactly one
            # handshake (and one RemoteAuthority endpoint) ever runs,
            # off-loop so the server stays responsive meanwhile
            async with self._handshake_lock:
                if self._cached_ctx is None:
                    await asyncio.to_thread(self._handshake_ctx)
        return self._cached_ctx

    async def _wire_context_for(self, header) -> WireContext | None:
        # control messages (status polls, train-start, predict) need no
        # group widths; answering them must not block on -- or fail
        # with -- an authority handshake
        if self._cached_ctx is None and \
                header.get("kind") in _CTX_FREE_KINDS:
            return None
        return await self._wire_context()

    # -- uploads -------------------------------------------------------------
    def _late_upload(self, client_name: str, received: int) -> Ack:
        """Answer an upload arriving after ``waiting`` ended: duplicate
        resends are acknowledged, genuine stragglers get a clear
        rejection naming the policy that left them behind."""
        if (self._resuming
                or any(name == client_name for name, _ in self._shards)):
            # the client's earlier upload was accepted but its ack got
            # lost; training may already be running -- acknowledge the
            # resend instead of failing it.  A --resume restart has no
            # in-memory shard list (the merged dataset came off disk),
            # so every resend against a resumed job is by definition a
            # duplicate
            return Ack(info={"received": received,
                             "clients": len(self._shards),
                             "expected": self.expected_clients,
                             "duplicate": True})
        if self._deadline_passed:
            GLOBAL_REGISTRY.counter("repro_upload_stragglers_total").inc()
            raise RuntimeError(
                f"cannot accept uploads in state {self.state!r}: the "
                f"{self.upload_deadline}s upload deadline passed and "
                f"training started at quorum {self.quorum}/"
                f"{self.expected_clients}; resubmit to a later run")
        raise RuntimeError(
            f"cannot accept uploads in state {self.state!r}")

    def _accept_shard(self, client_name: str,
                      dataset: EncryptedTabularDataset, stats: dict,
                      fingerprint: str | None = None) -> Ack:
        """Record one complete shard (single-frame or assembled)."""
        # last write per client name wins, so a client resending after
        # a lost ack (transport retry) stays idempotent
        self._shards = [(name, shard) for name, shard in self._shards
                        if name != client_name]
        self._shards.append((client_name, dataset))
        self._uploads.pop(client_name, None)
        if fingerprint is not None:
            self._accepted_fps[client_name] = fingerprint
        if stats:
            # client-side encryption-engine counters ride along with
            # the upload; folding them here puts the encrypt half of
            # the cost profile on this server's scrapeable surface
            for key, value in stats.items():
                GLOBAL_REGISTRY.counter(
                    f"repro_client_engine_{key}_total").inc(value)
        self._arm_upload_deadline()
        self._maybe_start()
        return Ack(info={"received": len(dataset),
                         "clients": len(self._shards),
                         "expected": self.expected_clients,
                         "quorum": self.quorum})

    def _arm_upload_deadline(self) -> None:
        """Start the straggler clock at the first accepted shard."""
        if self.upload_deadline is None or self._deadline_handle is not None \
                or self._deadline_passed:
            return
        self._deadline_handle = asyncio.get_running_loop().call_later(
            self.upload_deadline, self._upload_deadline_expired)

    def _upload_deadline_expired(self) -> None:
        self._deadline_passed = True
        self._maybe_start()

    def _maybe_start(self) -> None:
        """Start training at full attendance, or at quorum once the
        upload deadline has expired."""
        if self.state != "waiting":
            return
        if len(self._shards) >= self.expected_clients or (
                self._deadline_passed and len(self._shards) >= self.quorum):
            self._start_training()

    def _chunk_assembly_for(self, msg: ShardChunk) -> _ShardAssembly:
        """Find or create the in-flight assembly this chunk belongs to."""
        asm = self._uploads.get(msg.client_name)
        if asm is not None and asm.fingerprint != msg.fingerprint:
            # the client restarted with different data; drop the stale
            # partial and treat this as a fresh upload
            self._uploads.pop(msg.client_name, None)
            asm = None
        if asm is None:
            if msg.index != 0 or msg.meta is None:
                raise RuntimeError(
                    f"no upload in progress for {msg.client_name!r} with "
                    f"fingerprint {msg.fingerprint[:16]}...; restart from "
                    f"chunk 0 (with metadata)")
            if len(self._uploads) >= self.max_pending_uploads:
                raise RuntimeError(
                    f"too many pending chunked uploads "
                    f"({self.max_pending_uploads}); retry later")
            asm = _ShardAssembly(fingerprint=msg.fingerprint,
                                 count=msg.count, meta=dict(msg.meta))
            self._uploads[msg.client_name] = asm
        if msg.count != asm.count:
            self._uploads.pop(msg.client_name, None)
            raise RuntimeError(
                f"chunk count changed mid-upload ({msg.count} != "
                f"{asm.count}); restart from chunk 0")
        return asm

    async def _handle_chunk(self, msg: ShardChunk):
        if self.state != "waiting":
            if self._accepted_fps.get(msg.client_name) == msg.fingerprint \
                    or self._resuming \
                    or any(name == msg.client_name
                           for name, _ in self._shards):
                return Ack(info={"received": msg.count,
                                 "next_index": msg.count,
                                 "complete": True, "duplicate": True})
            return self._late_upload(msg.client_name, msg.count)
        if self._accepted_fps.get(msg.client_name) == msg.fingerprint:
            # full shard already landed; the final ack was lost
            return Ack(info={"received": msg.count, "next_index": msg.count,
                             "complete": True, "duplicate": True})
        asm = self._chunk_assembly_for(msg)
        if msg.index not in asm.chunks:
            if asm.total_bytes + len(msg.chunk) > self.max_frame_bytes:
                self._uploads.pop(msg.client_name, None)
                raise RuntimeError(
                    f"chunked upload exceeds {self.max_frame_bytes}-byte "
                    f"assembly limit")
            asm.chunks[msg.index] = msg.chunk
            asm.total_bytes += len(msg.chunk)
            GLOBAL_REGISTRY.counter("repro_upload_chunks_total").inc()
        if not asm.complete:
            return Ack(info={"received": len(asm.chunks),
                             "next_index": asm.next_index(),
                             "complete": False})
        body = asm.assemble()
        if shard_fingerprint(asm.meta, body) != asm.fingerprint:
            self._uploads.pop(msg.client_name, None)
            raise RuntimeError(
                "assembled shard does not match its fingerprint; "
                "restart the upload from chunk 0")
        ctx = await self._wire_context()
        header = {"kind": protocol.KIND_ENCRYPTED_DATA, **asm.meta,
                  "from": msg.client_name}
        try:
            upload = await asyncio.to_thread(
                EncryptedDataUpload.from_wire, header, body, ctx)
        except Exception:
            # hardened ingestion rejected the assembled payload; drop
            # the assembly so the client's restart starts clean
            self._uploads.pop(msg.client_name, None)
            raise
        ack = self._accept_shard(msg.client_name, upload.dataset,
                                 upload.stats, fingerprint=asm.fingerprint)
        ack.info.update({"next_index": asm.count, "complete": True})
        return ack

    def _handle_resume(self, msg: ShardResumeQuery):
        if self._accepted_fps.get(msg.client_name) == msg.fingerprint:
            return Ack(info={"accepted": True, "duplicate": True,
                             "next_index": msg.count,
                             "received": msg.count})
        if self.state != "waiting":
            if self._resuming or any(name == msg.client_name
                                     for name, _ in self._shards):
                return Ack(info={"accepted": True, "duplicate": True,
                                 "next_index": msg.count,
                                 "received": msg.count})
            return self._late_upload(msg.client_name, msg.count)
        asm = self._uploads.get(msg.client_name)
        if asm is None or asm.fingerprint != msg.fingerprint \
                or asm.count != msg.count:
            return Ack(info={"accepted": False, "next_index": 0,
                             "received": 0})
        next_index = asm.next_index()
        GLOBAL_REGISTRY.counter(
            "repro_upload_resumed_chunks_total").inc(next_index)
        return Ack(info={"accepted": False, "next_index": next_index,
                         "received": len(asm.chunks)})

    # -- dispatch ------------------------------------------------------------
    async def _dispatch(self, msg, sender: str):
        if isinstance(msg, EncryptedDataUpload):
            if self.state != "waiting":
                return self._late_upload(msg.client_name, len(msg.dataset))
            return self._accept_shard(msg.client_name, msg.dataset,
                                      msg.stats)
        if isinstance(msg, ShardChunk):
            return await self._handle_chunk(msg)
        if isinstance(msg, ShardResumeQuery):
            return self._handle_resume(msg)
        if isinstance(msg, TrainStart):
            if self.state == "waiting" and self._shards:
                self._start_training()
            return Ack(info={"state": self.state})
        if isinstance(msg, TrainStatusRequest):
            return self._status()
        if isinstance(msg, TrainCheckpointRequest):
            if self.checkpoint_path is None:
                raise RuntimeError(
                    "server was started without a checkpoint path")
            scheduled = self.state == "training"
            if scheduled:
                # the training thread polls this after every batch
                self._checkpoint_requested.set()
            return Ack(info={"state": self.state, "scheduled": scheduled,
                             "checkpoint": self.last_checkpoint})
        if isinstance(msg, PredictRequest):
            if self.state != "done":
                raise RuntimeError(
                    f"no trained model yet (state {self.state!r})")
            scores = await asyncio.to_thread(self._predict, msg.indices)
            return PredictResponse(scores=scores)
        return ErrorMessage(
            message=f"training service cannot answer {msg.kind!r}",
            error_type="UnsupportedMessage")

    def _status(self) -> TrainStatus:
        detail = {
            "clients": len(self._shards),
            "expected": self.expected_clients,
            "error": self.error,
            "faults": self._fault_report(),
        }
        if self.history is not None:
            detail["epoch_loss"] = self.history.epoch_loss
            detail["epoch_accuracy"] = self.history.epoch_accuracy
        if self.checkpoint_path is not None:
            written = os.path.exists(self.checkpoint_path)
            last = self.last_checkpoint
            if last is None and written:
                # nothing written *this* process yet, but a previous
                # incarnation left a checkpoint: report its counters
                with contextlib.suppress(Exception):
                    last = TrainerCheckpoint.peek_meta(self.checkpoint_path)
            detail["checkpoint"] = {
                "path": str(self.checkpoint_path),
                # resumable = a restarted `serve-train --resume` could
                # pick this job up: dataset sidecar on disk (the trainer
                # checkpoint itself is optional -- without one the job
                # restarts from batch 0, still bit-exactly)
                "resumable": self.has_durable_job(),
                "written": written,
                "last": last,
            }
        return TrainStatus(state=self.state, accuracy=self.accuracy,
                           detail=detail)

    def _fault_report(self) -> dict:
        """Fault/retry counters for the ops surface: the authority
        link's endpoint stats plus the compute pool's degradation
        state, in the shared :data:`~repro.rpc.retry.STAT_KEYS`
        vocabulary.  A service-hosted chaos proxy's fault summary is
        merged in too, so ``train-status`` reports injected weather
        next to the retries it caused."""
        report: dict = {"degraded": False}
        authority = self.authority
        if authority is not None:
            report["authority_endpoint"] = authority.endpoint.stats.snapshot()
        trainer = self.trainer
        if trainer is not None and trainer.compute_pool is not None:
            pool_stats = trainer.compute_pool.stats
            report["pool"] = pool_stats
            report["degraded"] = bool(pool_stats["degraded"])
        if self.chaos_proxy is not None:
            report["chaos_proxy"] = self.chaos_proxy.fault_summary()
        return report

    # -- observability -------------------------------------------------------
    def _health(self) -> HealthResponse:
        """Ready = keys fetched AND a job is (or can be) configured.

        A server still ``waiting`` with no uploads and no durable job
        cannot do useful work yet; neither can one that has not
        completed the authority handshake (no group parameters, so it
        cannot even decode an upload).
        """
        keys_fetched = self._cached_ctx is not None
        job_configured = self.state != "waiting" or bool(self._shards) \
            or self.has_durable_job()
        return HealthResponse(
            ready=keys_fetched and job_configured,
            state=self.state,
            detail={
                "keys_fetched": keys_fetched,
                "job_configured": job_configured,
                "clients": len(self._shards),
                "expected": self.expected_clients,
                "error": self.error,
            })

    def _obs_collect(self) -> dict[str, int]:
        readings = super()._obs_collect()
        trainer = self.trainer
        if trainer is not None:
            for key, value in trainer.counters.snapshot().items():
                readings[f"repro_trainer_{key}_total"] = value
        return readings

    def _note_checkpoint(self, ckpt: TrainerCheckpoint) -> None:
        # called from the training thread after each atomic write
        self.last_checkpoint = {
            "epoch": ckpt.epoch,
            "batch_in_epoch": ckpt.batch_in_epoch,
            "batch_counter": ckpt.batch_counter,
            "completed": ckpt.completed,
        }

    def _take_checkpoint_request(self) -> bool:
        if self._checkpoint_requested.is_set():
            self._checkpoint_requested.clear()
            return True
        return False

    # -- training ------------------------------------------------------------
    def _start_training(self) -> None:
        self.state = "training"
        self._train_task = asyncio.get_running_loop().create_task(
            self._train())

    async def _train(self) -> None:
        try:
            await asyncio.to_thread(self._train_sync)
            self.state = "done"
        except Exception as exc:  # surfaced through train-status
            self.state = "failed"
            self.error = f"{type(exc).__name__}: {exc}"
        finally:
            self._done.set()

    def _train_sync(self) -> None:
        if self._resuming:
            self.dataset = load_encrypted_tabular(self.dataset_path)
        else:
            # merge in natural client-name order: deterministic under
            # upload races, and equal to the 0..N-1 enumerate order of
            # the in-process reference even past 9 clients
            parts = [shard for _, shard in
                     sorted(self._shards,
                            key=lambda item: _natural_key(item[0]))]
            self.dataset = merge_encrypted_tabular(parts)
            if self.dataset_path is not None:
                # persisted once (atomically) so a killed-and-restarted
                # server can resume without re-uploads; ciphertexts
                # only -- no key material
                save_encrypted_tabular(self.dataset, self.dataset_path)
        authority = self.authority
        if authority is None:
            authority = RemoteAuthority(
                *self.authority_address, name=protocol.SERVER,
                timeout=self.authority_timeout, policy=self.retry_policy)
            self.authority = authority
            if self._stopping:
                # stop() may have missed the fresh connection; under the
                # GIL either it closed self.authority or we see the flag
                authority.close()
                raise RuntimeError("training server is stopping")
        config = dataclasses.replace(
            authority.config, batch_key_requests=self.batch_key_requests)
        if self.workers is not None:
            config = dataclasses.replace(config, workers=self.workers)
        # phase timings are part of the service's ops surface: spans
        # land in repro_phase_seconds histograms (and the trace file
        # when configured), scrapeable via service-metrics; disabled
        # again after the run so the global tracer costs nothing while
        # the server merely answers status/predict traffic
        GLOBAL_TRACER.enable(trace_file=self.trace_file,
                             registry=GLOBAL_REGISTRY)
        try:
            self.trainer, self.history, self.accuracy = run_training(
                self.dataset, authority, hidden=self.hidden,
                epochs=self.epochs,
                batch_size=self.batch_size,
                learning_rate=self.learning_rate,
                seed=self.seed, loss=self.loss, config=config,
                checkpoint_path=self.checkpoint_path,
                checkpoint_every=self.checkpoint_every,
                resume=self._resuming,
                checkpoint_trigger=(self._take_checkpoint_request
                                    if self.checkpoint_path is not None
                                    else None),
                on_checkpoint=(self._note_checkpoint
                               if self.checkpoint_path is not None
                               else None))
        finally:
            GLOBAL_TRACER.disable()
        if self.model_out is not None:
            # atomic, so an out-of-process driver never reads a torn
            # file; written only on success, after which the weights are
            # final and byte-comparable against a reference run
            save_model_weights(self.trainer.model, self.model_out)

    def _predict(self, indices: list[int]) -> list[list[float]]:
        with self._predict_lock:
            scores = self.trainer.predict(self.dataset, np.asarray(indices))
        return [[float(v) for v in row] for row in scores]
