"""Helpers for hosting RPC services inside tests, examples and drivers.

:class:`ServiceThread` runs one asyncio service (authority or training)
on a dedicated event loop in a daemon thread, so synchronous code -- a
pytest test, an example script, the CLI -- can stand up a real socket
service, talk to it, and tear it down deterministically.  Separate
*processes* work exactly the same way (see ``examples/rpc_loopback.py``);
the thread variant simply keeps single-process demos and the test suite
self-contained.
"""

from __future__ import annotations

import asyncio
import random
import socket
import threading

from repro.rpc.retry import RetryPolicy


def free_port(host: str = "127.0.0.1") -> int:
    """Ask the OS for an unused TCP port (bind-to-zero trick)."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def wait_for_port(host: str, port: int, timeout: float = 10.0, *,
                  policy: RetryPolicy | None = None,
                  rng: random.Random | None = None) -> None:
    """Block until something listens on ``host:port`` (or time out).

    Probes under a :class:`~repro.rpc.retry.RetryPolicy` (jittered
    exponential backoff, ``deadline=timeout``) instead of a fixed-period
    poll: a service that binds instantly is seen after one cheap probe,
    and a slow one is not hammered 20x/second.
    """
    if policy is None:
        policy = RetryPolicy(max_attempts=1_000_000, base_delay=0.02,
                             max_delay=0.25, deadline=timeout)
    last_exc: Exception | None = None
    for _ in policy.attempts(rng=rng):
        try:
            with socket.create_connection((host, port), timeout=0.5):
                return
        except OSError as exc:
            last_exc = exc
    raise TimeoutError(
        f"nothing listening on {host}:{port} after {timeout}s"
    ) from last_exc


class ServiceThread:
    """Host an RPC service on its own event loop in a daemon thread.

    The wrapped service must expose ``async start() -> (host, port)``
    and ``async stop()`` (both :class:`~repro.rpc.authority_service.
    AuthorityService` and :class:`~repro.rpc.training_service.
    TrainingService` do).  ``asyncio.start_server`` begins accepting as
    soon as ``start()`` returns, so the thread just keeps the loop
    alive; ``stop()`` shuts the service down and joins the thread.
    """

    def __init__(self, service):
        self.service = service
        self.loop: asyncio.AbstractEventLoop | None = None
        self.address: tuple[str, int] | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self, timeout: float = 10.0) -> tuple[str, int]:
        """Start the loop + service; returns the bound (host, port)."""
        if self._thread is not None:
            return self.address
        self._thread = threading.Thread(
            target=self._run, name=type(self.service).__name__, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("service did not start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error!r}")
        return self.address

    def _run(self) -> None:
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)

        async def _start() -> None:
            try:
                self.address = await self.service.start()
            except BaseException as exc:
                self._startup_error = exc
            finally:
                self._started.set()

        try:
            self.loop.run_until_complete(_start())
            if self._startup_error is None:
                self.loop.run_forever()
        finally:
            self.loop.close()

    def call(self, coro_factory, timeout: float = 30.0):
        """Run ``await coro_factory()`` on the service's loop (blocking)."""
        if self.loop is None:
            raise RuntimeError("service thread not started")
        future = asyncio.run_coroutine_threadsafe(coro_factory(), self.loop)
        return future.result(timeout)

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None or self.loop is None:
            return
        if not self.loop.is_closed():
            try:
                self.call(self.service.stop, timeout)
            except Exception:
                pass
            try:
                self.loop.call_soon_threadsafe(self.loop.stop)
            except RuntimeError:
                pass  # loop already closed (e.g. startup failed)
        self._thread.join(timeout)
        self._thread = None
