"""Command-line interface for the CryptoNN reproduction.

Exposes the three-entity workflow as file-based commands so each role
can be run from a separate shell (or machine, with the files shipped):

    python -m repro keygen    --out authority.json
    python -m repro encrypt   --authority authority.json --out data.json
    python -m repro train     --authority authority.json --data data.json \
                              --model-out model.npz
    python -m repro evaluate  --authority authority.json --data data.json \
                              --model model.npz
    python -m repro demo
    python -m repro info

The networked runtime (:mod:`repro.rpc`) replaces files with sockets --
each role becomes a long-running process:

    python -m repro serve-authority --port 9000
    python -m repro serve-train     --port 9001 --authority-port 9000 \
                                    --expected-clients 3
    python -m repro client-upload   --authority-port 9000 --server-port 9001 \
                                    --clinic 0 --clinics 3

SECURITY: the authority file holds master secret keys -- in a real
deployment it never leaves the authority.  The CLI keeps everything in
files purely to make the roles tangible; the serve-* commands keep the
master keys inside the authority process, as the paper's architecture
requires.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import signal
import sys
import threading
import time

import numpy as np

from repro import __version__
from repro.core.checkpoint import (
    load_authority,
    load_encrypted_tabular,
    load_model_weights,
    save_authority,
    save_encrypted_tabular,
    save_model_weights,
)
from repro.core.config import CryptoNNConfig
from repro.core.cryptonn import CryptoNNTrainer
from repro.core.entities import Client, TrustedAuthority
from repro.data.preprocess import normalize_features, shared_feature_scale
from repro.data.tabular import load_clinics, merge_shards
from repro.mathutils.group import _PREDEFINED
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD


def _build_model(n_features: int, hidden: int, num_classes: int,
                 seed: int) -> Sequential:
    # the one model builder shared with the networked training server,
    # so "same seed => same model" holds across every entry point
    from repro.rpc.training_service import build_mlp

    return build_mlp(n_features, hidden, num_classes, seed)


# -- subcommands -----------------------------------------------------------------

def cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__} -- CryptoNN (ICDCS 2019) reproduction")
    print(f"predefined group sizes: {sorted(_PREDEFINED)} bits")
    print("paper settings: 256-bit group, fixed-point scale 100")
    return 0


def cmd_keygen(args: argparse.Namespace) -> int:
    config = CryptoNNConfig(security_bits=args.bits, scale=args.scale)
    authority = TrustedAuthority(config, rng=random.Random(args.seed))
    # pre-generate the pairs the standard workflow needs
    authority.feip_public_key(args.features)
    authority.feip_public_key(args.classes)
    authority.febo_public_key()
    save_authority(authority, args.out)
    print(f"authority written to {args.out} "
          f"({args.bits}-bit group, scale {args.scale})")
    print("WARNING: this file contains master secret keys")
    return 0


def cmd_encrypt(args: argparse.Namespace) -> int:
    authority = load_authority(args.authority,
                               rng=random.Random(args.seed))
    shards = load_clinics(n_clinics=args.clinics,
                          samples_per_clinic=args.samples,
                          n_features=args.features, seed=args.seed)
    merged = merge_shards(shards)
    x = normalize_features(merged.x, shared_feature_scale([merged.x]))
    client = Client(authority)
    dataset = client.encrypt_tabular(x, merged.y, num_classes=args.classes)
    save_encrypted_tabular(dataset, args.out)
    print(f"encrypted {len(dataset)} samples "
          f"({args.features} features, {args.classes} classes) -> {args.out}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    if (args.resume or args.checkpoint_every) and not args.checkpoint:
        raise SystemExit("--resume/--checkpoint-every require --checkpoint")
    if args.trace_file:
        from repro.obs import GLOBAL_REGISTRY, GLOBAL_TRACER
        GLOBAL_TRACER.enable(trace_file=args.trace_file,
                             registry=GLOBAL_REGISTRY)
    authority = load_authority(args.authority, rng=random.Random(args.seed))
    dataset = load_encrypted_tabular(args.data)
    model = _build_model(dataset.n_features, args.hidden,
                         dataset.num_classes, args.seed)
    trainer = CryptoNNTrainer(model, authority)
    history = trainer.fit(
        dataset, SGD(args.learning_rate), epochs=args.epochs,
        batch_size=args.batch_size, rng=np.random.default_rng(args.seed),
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        on_batch=lambda i, loss, acc: print(
            f"  iter {i:4d}  loss={loss:.4f}  batch-acc={acc:.2f}"),
    )
    accuracy = trainer.evaluate(dataset)
    print(f"final training accuracy: {accuracy:.2%}")
    print(f"decrypt counters: {trainer.counters.snapshot()}")
    if args.trace_file:
        from repro.obs import GLOBAL_TRACER
        print("per-iteration phase totals:")
        for name, agg in sorted(GLOBAL_TRACER.phase_totals().items()):
            print(f"  {name:16s} count={agg['count']:6d} "
                  f"total={agg['total_s']:.3f}s")
        GLOBAL_TRACER.disable()
        print(f"trace spans -> {args.trace_file}")
    if args.model_out:
        save_model_weights(model, args.model_out)
        print(f"model weights -> {args.model_out}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    authority = load_authority(args.authority, rng=random.Random(args.seed))
    dataset = load_encrypted_tabular(args.data)
    model = _build_model(dataset.n_features, args.hidden,
                         dataset.num_classes, args.seed)
    load_model_weights(model, args.model)
    trainer = CryptoNNTrainer(model, authority)
    print(f"accuracy over encrypted data: {trainer.evaluate(dataset):.2%}")
    return 0


# -- networked runtime -------------------------------------------------------------

def cmd_serve_authority(args: argparse.Namespace) -> int:
    """Run the authority key service until interrupted."""
    from repro.rpc import run_authority_service

    if args.authority:
        authority = load_authority(args.authority,
                                   rng=random.Random(args.seed))
    else:
        config = CryptoNNConfig(security_bits=args.bits, scale=args.scale)
        authority = TrustedAuthority(config, rng=random.Random(args.seed))
    run_authority_service(authority, args.host, args.port)
    return 0


def cmd_serve_train(args: argparse.Namespace) -> int:
    """Run the training server; exits once training completes."""
    from repro.rpc import TrainingService

    if (args.resume or args.checkpoint_every) and not args.checkpoint:
        raise SystemExit("--resume/--checkpoint-every require --checkpoint")
    service = TrainingService(
        args.authority_host, args.authority_port,
        host=args.host, port=args.port,
        expected_clients=args.expected_clients, hidden=args.hidden,
        epochs=args.epochs, batch_size=args.batch_size,
        learning_rate=args.learning_rate, seed=args.seed,
        batch_key_requests=not args.no_batch_keys,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        authority_timeout=args.authority_timeout,
        workers=args.workers,
        trace_file=args.trace_file,
        quorum=args.quorum,
        upload_deadline=args.upload_deadline,
        model_out=args.model_out,
    )

    async def _run() -> int:
        try:
            host, port = await service.start()
            print(f"training server listening on {host}:{port} "
                  f"(authority at "
                  f"{args.authority_host}:{args.authority_port})",
                  flush=True)
            await service.wait_done()
            if service.state == "failed":
                print(f"training failed: {service.error}", flush=True)
            else:
                print(f"training done: accuracy {service.accuracy:.2%} "
                      f"over {len(service.dataset)} encrypted samples")
                for label, log in sorted(service.connection_traffic.items()):
                    print(f"  connection {label}: "
                          f"{log.total_bytes():,} bytes "
                          f"({log.message_count()} messages)")
            if args.stay:
                # keep answering train-status (and, on success,
                # predict-request) so drivers can observe the outcome
                print("serving until interrupted", flush=True)
                await asyncio.Event().wait()
            return 1 if service.state == "failed" else 0
        finally:
            # closes the authority endpoint too, so an interrupted
            # training thread fails fast instead of blocking exit
            await service.stop()

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        return 0


def cmd_client_upload(args: argparse.Namespace) -> int:
    """Encrypt one clinic shard locally and upload it over the wire."""
    from repro.rpc import RetryPolicy, upload_shard

    policy = None
    if args.retry_attempts is not None:
        if args.retry_attempts < 1:
            raise SystemExit("--retry-attempts must be >= 1")
        policy = RetryPolicy(max_attempts=args.retry_attempts,
                             base_delay=0.05, max_delay=1.0)

    shards = load_clinics(n_clinics=args.clinics,
                          samples_per_clinic=args.samples,
                          n_features=args.features, seed=args.seed)
    if not 0 <= args.clinic < args.clinics:
        raise SystemExit(f"--clinic must be in [0, {args.clinics})")
    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    # normalize with the shared scale so every client scales identically
    scale = shared_feature_scale([s.x for s in shards])
    shard = shards[args.clinic]
    name = args.name or f"client-{args.clinic}"
    result = upload_shard(
        (args.authority_host, args.authority_port),
        (args.server_host, args.server_port),
        normalize_features(shard.x, scale), shard.y, args.classes,
        name=name, rng=random.Random(args.seed + args.clinic),
        workers=args.workers, policy=policy,
        chunk_bytes=args.chunk_bytes,
    )
    print(f"{name}: uploaded {result['n_samples']} encrypted samples "
          f"({result['upload_bytes']:,} bytes); server ack {result['ack']}")
    if "chunks" in result:
        chunks = result["chunks"]
        print(f"  chunked upload: {chunks['sent']}/{chunks['count']} "
              f"chunks sent (resumed from chunk {chunks['resumed_from']})")
    retry = result["retry"]
    if retry.get("retries") or retry.get("reconnects"):
        print(f"  transport weather: {retry['retries']} retries, "
              f"{retry['drops']} drops, {retry['timeouts']} timeouts, "
              f"{retry['reconnects']} reconnects")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the repo's AST invariant analyzer (repro.analysis)."""
    from pathlib import Path

    from repro.analysis import (
        render_json,
        render_rule_list,
        render_text,
        run_lint,
        select_rules,
    )

    if args.list_rules:
        print(render_rule_list(select_rules(None)))
        return 0
    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        report = run_lint(Path(args.root), rule_ids=rule_ids)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.report:
        Path(args.report).parent.mkdir(parents=True, exist_ok=True)
        Path(args.report).write_text(render_json(report) + "\n",
                                     encoding="utf-8")
    if args.json:
        print(render_json(report))
    else:
        print(render_text(report, show_suppressed=args.show_suppressed))
    return 1 if report.failures(args.fail_on) else 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Scrape any repro service's metrics/health over the wire."""
    from repro.obs.metrics import MetricsRegistry
    from repro.rpc import RpcEndpoint, RpcError
    from repro.rpc.messages import HealthRequest, MetricsRequest

    def scrape(endpoint) -> None:
        health = endpoint.request(HealthRequest(requester="metrics-cli"))
        resp = endpoint.request(MetricsRequest(requester="metrics-cli"))
        if args.prom:
            print(MetricsRegistry().render_prometheus(resp.metrics), end="")
            return
        print(f"{resp.service} at {args.host}:{args.port}: "
              f"state={health.state} ready={health.ready}")
        snap = resp.metrics
        for section in ("counters", "gauges"):
            for name in sorted(snap.get(section, {})):
                print(f"  {name} = {snap[section][name]}")
        for name in sorted(snap.get("histograms", {})):
            hist = snap["histograms"][name]
            print(f"  {name}: count={hist['count']} "
                  f"sum={hist['sum']:.3f}s")

    failures = 0
    iterations = 0
    try:
        with RpcEndpoint(args.host, args.port, name="metrics-cli",
                         peer="service", timeout=args.timeout,
                         connect_timeout=args.timeout) as endpoint:
            while True:
                iterations += 1
                delay = args.watch
                try:
                    scrape(endpoint)
                    failures = 0
                except RpcError as exc:
                    # watch mode survives a scrape target that is down
                    # or restarting (connection refused, timeouts): note
                    # it on stderr and retry with capped backoff -- the
                    # target coming back resumes the watch seamlessly
                    if not args.watch:
                        print(f"metrics scrape failed: {exc}",
                              file=sys.stderr)
                        return 1
                    failures += 1
                    delay = min(30.0, max(args.watch,
                                          0.25 * 2 ** min(failures - 1, 7)))
                    print(f"metrics scrape failed ({exc}); "
                          f"retrying in {delay:.1f}s", file=sys.stderr)
                else:
                    if not args.watch:
                        return 0
                if args.watch_count is not None \
                        and iterations >= args.watch_count:
                    return 0 if failures == 0 else 1
                time.sleep(delay)
    except KeyboardInterrupt:
        return 0


def cmd_supervise(args: argparse.Namespace) -> int:
    """Run authority + training server under a self-healing supervisor.

    Both children are started from durable state (an authority key file
    and a trainer checkpoint path), so a crashed -- even ``kill -9``'d
    -- child is restarted *into the same job*: the authority re-derives
    identical keys, the trainer resumes from its last checkpoint, and
    the finished model is byte-identical to an uninterrupted run.
    """
    from repro.rpc import RpcError, fetch_status
    from repro.rpc.retry import RetryPolicy
    from repro.rpc.supervisor import (
        ChildSpec,
        Supervisor,
        install_signal_handlers,
        repro_argv,
    )

    if args.port == 0 or args.authority_port == 0:
        raise SystemExit("supervise needs fixed --port/--authority-port "
                         "(children must rebind the same address)")
    if args.max_restarts < 1:
        raise SystemExit("--max-restarts must be >= 1")
    if not os.path.exists(args.authority_file):
        config = CryptoNNConfig(security_bits=args.bits, scale=args.scale)
        authority = TrustedAuthority(config, rng=random.Random(args.seed))
        save_authority(authority, args.authority_file)
        print(f"authority keys -> {args.authority_file} "
              f"({args.bits}-bit group, scale {args.scale})", flush=True)

    authority_spec = ChildSpec(
        name="authority",
        argv=repro_argv("serve-authority", "--host", args.host,
                        "--port", str(args.authority_port),
                        "--authority", args.authority_file,
                        "--seed", str(args.seed)),
        port=args.authority_port, host=args.host)
    train_argv = repro_argv(
        "serve-train", "--host", args.host, "--port", str(args.port),
        "--authority-host", args.host,
        "--authority-port", str(args.authority_port),
        "--expected-clients", str(args.expected_clients),
        "--hidden", str(args.hidden), "--epochs", str(args.epochs),
        "--batch-size", str(args.batch_size),
        "--learning-rate", str(args.learning_rate),
        "--seed", str(args.seed),
        "--checkpoint", args.checkpoint,
        # --resume + --stay make restarts heal instead of restart: the
        # job continues from the durable dataset/checkpoint, and the
        # finished server keeps answering status/predict requests
        "--resume", "--stay")
    if args.checkpoint_every is not None:
        train_argv += ["--checkpoint-every", str(args.checkpoint_every)]
    if args.workers is not None:
        train_argv += ["--workers", str(args.workers)]
    if args.quorum is not None:
        train_argv += ["--quorum", str(args.quorum)]
    if args.upload_deadline is not None:
        train_argv += ["--upload-deadline", str(args.upload_deadline)]
    if args.model_out is not None:
        train_argv += ["--model-out", args.model_out]
    if args.authority_timeout is not None:
        train_argv += ["--authority-timeout", str(args.authority_timeout)]
    trainer_spec = ChildSpec(name="trainer", argv=train_argv,
                             port=args.port, host=args.host)

    supervisor = Supervisor(
        [authority_spec, trainer_spec],
        restart_policy=RetryPolicy(max_attempts=args.max_restarts + 1,
                                   base_delay=0.2, max_delay=5.0,
                                   jitter=False),
        stable_seconds=args.stable_seconds,
        poll_interval=args.poll_interval,
        announce=lambda line: print(line, flush=True))
    install_signal_handlers(supervisor)
    exit_code = 0
    try:
        supervisor.start()
        if args.exit_when_done:
            last = {"state": None, "checked": 0.0}

            def _job_done() -> bool:
                now = time.monotonic()
                if now - last["checked"] < 1.0:
                    return False
                last["checked"] = now
                try:
                    status = fetch_status((args.host, args.port),
                                          name="supervisor", timeout=5.0)
                except RpcError:
                    return False
                last["state"] = status.state
                return status.state in ("done", "failed")

            supervisor.run(until=_job_done)
            if last["state"] == "failed":
                exit_code = 1
        else:
            supervisor.run()
        if supervisor.all_gave_up():
            print("every child crash-looped past its restart budget; "
                  "giving up", flush=True)
            exit_code = 1
    except KeyboardInterrupt:
        pass
    finally:
        snapshot = supervisor.stats_snapshot()
        supervisor.stop()
        if args.stats_file:
            with open(args.stats_file, "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh, indent=2, sort_keys=True)
            print(f"supervisor stats -> {args.stats_file}", flush=True)
    return exit_code


def cmd_demo(args: argparse.Namespace) -> int:
    """End-to-end demo in one process (no files)."""
    config = CryptoNNConfig()
    authority = TrustedAuthority(config, rng=random.Random(0))
    shard = load_clinics(n_clinics=1, samples_per_clinic=args.samples,
                         n_features=6, seed=0)[0]
    x = normalize_features(shard.x, shared_feature_scale([shard.x]))
    dataset = Client(authority).encrypt_tabular(x, shard.y, num_classes=2)
    model = _build_model(6, 8, 2, seed=0)
    trainer = CryptoNNTrainer(model, authority)
    trainer.fit(dataset, SGD(0.5), epochs=3, batch_size=20,
                rng=np.random.default_rng(1))
    print(f"demo: trained over {len(dataset)} encrypted samples, "
          f"accuracy {trainer.evaluate(dataset):.2%}")
    return 0


# -- parser ------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CryptoNN reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and configuration info") \
        .set_defaults(func=cmd_info)

    p = sub.add_parser("keygen", help="create an authority (master keys)")
    p.add_argument("--out", required=True)
    p.add_argument("--bits", type=int, default=64,
                   help="group size; 256 matches the paper")
    p.add_argument("--scale", type=int, default=100)
    p.add_argument("--features", type=int, default=8)
    p.add_argument("--classes", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_keygen)

    p = sub.add_parser("encrypt", help="generate + encrypt clinic data")
    p.add_argument("--authority", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--clinics", type=int, default=3)
    p.add_argument("--samples", type=int, default=60)
    p.add_argument("--features", type=int, default=8)
    p.add_argument("--classes", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_encrypt)

    p = sub.add_parser("train", help="train over an encrypted dataset")
    p.add_argument("--authority", required=True)
    p.add_argument("--data", required=True)
    p.add_argument("--model-out")
    p.add_argument("--hidden", type=int, default=16)
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--batch-size", type=int, default=20)
    p.add_argument("--learning-rate", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--checkpoint",
                   help="trainer checkpoint file (.npz); written "
                        "atomically, contains no key material")
    p.add_argument("--checkpoint-every", type=int,
                   help="write a checkpoint every N batches")
    p.add_argument("--resume", action="store_true",
                   help="continue bit-exactly from --checkpoint "
                        "(starts fresh if the file does not exist yet)")
    p.add_argument("--trace-file",
                   help="emit one JSONL span per training phase (key "
                        "fetch, pool dispatch, decrypt/dlog, forward/"
                        "backward) to this file")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("evaluate", help="evaluate saved weights")
    p.add_argument("--authority", required=True)
    p.add_argument("--data", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--hidden", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("demo", help="one-process end-to-end demo")
    p.add_argument("--samples", type=int, default=100)
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("serve-authority",
                       help="run the authority key service (RPC)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 picks a free port (printed at startup)")
    p.add_argument("--authority",
                   help="resume master keys from a keygen file")
    p.add_argument("--bits", type=int, default=32,
                   help="group size for a fresh authority; 256 = paper")
    p.add_argument("--scale", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_serve_authority)

    p = sub.add_parser("serve-train",
                       help="run the training server (RPC)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument("--authority-host", default="127.0.0.1")
    p.add_argument("--authority-port", type=int, required=True)
    p.add_argument("--expected-clients", type=int, default=1,
                   help="train once this many shards have arrived")
    p.add_argument("--hidden", type=int, default=16)
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--batch-size", type=int, default=20)
    p.add_argument("--learning-rate", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-batch-keys", action="store_true",
                   help="per-request key messages instead of one "
                        "batched envelope per iteration step")
    p.add_argument("--stay", action="store_true",
                   help="keep serving predictions after training")
    p.add_argument("--checkpoint",
                   help="durable job state: trainer checkpoint (.npz) "
                        "plus a .dataset.json sidecar with the merged "
                        "encrypted uploads; no key material in either")
    p.add_argument("--checkpoint-every", type=int,
                   help="write a trainer checkpoint every N batches")
    p.add_argument("--resume", action="store_true",
                   help="pick an interrupted job up from --checkpoint "
                        "after process death (no re-uploads needed); "
                        "waits for uploads as usual if no job is on disk")
    p.add_argument("--authority-timeout", type=float, default=120.0,
                   help="per-request timeout (s) on the authority link; "
                        "lower it on flaky networks so stalls convert "
                        "into retried timeouts quickly")
    p.add_argument("--workers", type=int,
                   help="parallelize the decryption loops over this "
                        "many worker processes (numerically identical "
                        "to serial, just faster); omit for serial")
    p.add_argument("--trace-file",
                   help="emit one JSONL span per training phase to "
                        "this file (phase histograms are scrapeable "
                        "via `repro metrics` either way)")
    p.add_argument("--quorum", type=int,
                   help="start training at this many shards once "
                        "--upload-deadline expires instead of waiting "
                        "for all --expected-clients; stragglers after "
                        "the start get a clear rejection")
    p.add_argument("--upload-deadline", type=float, metavar="SECONDS",
                   help="straggler clock, armed when the first shard "
                        "is accepted; required by --quorum")
    p.add_argument("--model-out",
                   help="write the final model weights (.npz, atomic) "
                        "here after a successful run")
    p.set_defaults(func=cmd_serve_train)

    p = sub.add_parser("client-upload",
                       help="encrypt a clinic shard and upload it (RPC)")
    p.add_argument("--authority-host", default="127.0.0.1")
    p.add_argument("--authority-port", type=int, required=True)
    p.add_argument("--server-host", default="127.0.0.1")
    p.add_argument("--server-port", type=int, required=True)
    p.add_argument("--clinic", type=int, default=0,
                   help="which of the --clinics shards this client owns")
    p.add_argument("--clinics", type=int, default=3)
    p.add_argument("--samples", type=int, default=60)
    p.add_argument("--features", type=int, default=8)
    p.add_argument("--classes", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--name", help="client name (default client-<clinic>)")
    p.add_argument("--workers", type=int,
                   help="parallelize local encryption over this many "
                        "worker processes (offline/online nonce split); "
                        "omit for serial encryption")
    p.add_argument("--retry-attempts", type=int,
                   help="total tries per request (default 4) under the "
                        "jittered exponential-backoff retry policy")
    p.add_argument("--chunk-bytes", type=int,
                   help="resumable chunked upload: split the encrypted "
                        "shard into chunks of this many bytes with "
                        "per-chunk acks, so a dropped connection "
                        "resumes at the last acked chunk; omit for the "
                        "single-frame upload")
    p.set_defaults(func=cmd_client_upload)

    p = sub.add_parser(
        "lint",
        help="run the AST invariant analyzer (crypto/lock/determinism "
             "rules) over the repo")
    p.add_argument("--root", default=".",
                   help="repo root to scan (default: cwd)")
    p.add_argument("--rules", metavar="ID[,ID...]",
                   help="comma-separated rule ids (default: all)")
    p.add_argument("--json", action="store_true",
                   help="print the JSON report instead of text")
    p.add_argument("--fail-on", choices=["warn", "error"],
                   default="error",
                   help="exit 1 when findings at/above this severity "
                        "remain unsuppressed (default: error)")
    p.add_argument("--report", metavar="PATH",
                   help="also write the JSON report to PATH")
    p.add_argument("--show-suppressed", action="store_true",
                   help="include suppressed findings in text output")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule registry and exit")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("metrics",
                       help="scrape a running service's metrics/health")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--watch", type=float, metavar="SECONDS",
                   help="re-scrape every SECONDS until interrupted")
    p.add_argument("--prom", action="store_true",
                   help="Prometheus text exposition instead of the "
                        "human-readable summary")
    p.add_argument("--timeout", type=float, default=10.0)
    p.add_argument("--watch-count", type=int, help=argparse.SUPPRESS)
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "supervise",
        help="run authority + training server under a self-healing "
             "supervisor (auto-restart with backoff, resume from "
             "durable state)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--authority-port", type=int, required=True)
    p.add_argument("--port", type=int, required=True,
                   help="training server port (fixed, so restarted "
                        "children rebind the same address)")
    p.add_argument("--authority-file", required=True,
                   help="authority key file; created on first run, "
                        "reloaded on every (re)start so restarted "
                        "authorities derive identical keys")
    p.add_argument("--checkpoint", required=True,
                   help="trainer checkpoint path; restarts resume the "
                        "job from it bit-exactly")
    p.add_argument("--checkpoint-every", type=int,
                   help="write a trainer checkpoint every N batches")
    p.add_argument("--expected-clients", type=int, default=1)
    p.add_argument("--hidden", type=int, default=16)
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--batch-size", type=int, default=20)
    p.add_argument("--learning-rate", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--bits", type=int, default=32,
                   help="group size when creating a fresh authority "
                        "file; 256 = paper")
    p.add_argument("--scale", type=int, default=100)
    p.add_argument("--workers", type=int)
    p.add_argument("--quorum", type=int,
                   help="see serve-train --quorum")
    p.add_argument("--upload-deadline", type=float, metavar="SECONDS",
                   help="see serve-train --upload-deadline")
    p.add_argument("--model-out",
                   help="final model weights file (.npz) written by the "
                        "trainer child on success")
    p.add_argument("--authority-timeout", type=float,
                   help="trainer child's per-request timeout on the "
                        "authority link")
    p.add_argument("--max-restarts", type=int, default=4,
                   help="restarts per failure streak before the "
                        "supervisor gives a child up (backoff between "
                        "restarts is capped-exponential)")
    p.add_argument("--stable-seconds", type=float, default=5.0,
                   help="uptime after which a child's failure streak "
                        "resets")
    p.add_argument("--poll-interval", type=float, default=0.25)
    p.add_argument("--stats-file",
                   help="write a JSON supervision report (restarts, "
                        "crashes, probe failures per child) here on "
                        "exit")
    p.add_argument("--exit-when-done", action="store_true",
                   help="poll the trainer's train-status and exit once "
                        "the job is done instead of supervising forever")
    p.set_defaults(func=cmd_supervise)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if threading.current_thread() is threading.main_thread():
        # A plain SIGTERM (how process drivers stop the serve-*
        # commands) must exit through SystemExit so the pool teardown
        # below still runs; the default handler would strand executor
        # workers as orphans.
        signal.signal(signal.SIGTERM, lambda *_: sys.exit(143))
    try:
        return args.func(args)
    finally:
        # Tear down any shared compute pool before returning.  When a
        # CLI entry point runs inside a multiprocessing child (as in
        # examples/rpc_loopback.py), the child's _bootstrap joins all
        # live non-daemon children *before* atexit handlers run -- so
        # leaving executor workers for the atexit hook would deadlock
        # the child's exit.
        from repro.matrix.parallel import shutdown_compute_pools

        shutdown_compute_pools()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
