"""Command-line interface for the CryptoNN reproduction.

Exposes the three-entity workflow as file-based commands so each role
can be run from a separate shell (or machine, with the files shipped):

    python -m repro keygen    --out authority.json
    python -m repro encrypt   --authority authority.json --out data.json
    python -m repro train     --authority authority.json --data data.json \
                              --model-out model.npz
    python -m repro evaluate  --authority authority.json --data data.json \
                              --model model.npz
    python -m repro demo
    python -m repro info

SECURITY: the authority file holds master secret keys -- in a real
deployment it never leaves the authority.  The CLI keeps everything in
files purely to make the roles tangible.
"""

from __future__ import annotations

import argparse
import random
import sys

import numpy as np

from repro import __version__
from repro.core.checkpoint import (
    load_authority,
    load_encrypted_tabular,
    load_model_weights,
    save_authority,
    save_encrypted_tabular,
    save_model_weights,
)
from repro.core.config import CryptoNNConfig
from repro.core.cryptonn import CryptoNNTrainer
from repro.core.entities import Client, TrustedAuthority
from repro.data.tabular import load_clinics, merge_shards
from repro.mathutils.group import _PREDEFINED
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD


def _build_model(n_features: int, hidden: int, num_classes: int,
                 seed: int) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential([
        Dense(n_features, hidden, rng=rng),
        ReLU(),
        Dense(hidden, num_classes, rng=rng),
    ])


# -- subcommands -----------------------------------------------------------------

def cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__} -- CryptoNN (ICDCS 2019) reproduction")
    print(f"predefined group sizes: {sorted(_PREDEFINED)} bits")
    print("paper settings: 256-bit group, fixed-point scale 100")
    return 0


def cmd_keygen(args: argparse.Namespace) -> int:
    config = CryptoNNConfig(security_bits=args.bits, scale=args.scale)
    authority = TrustedAuthority(config, rng=random.Random(args.seed))
    # pre-generate the pairs the standard workflow needs
    authority.feip_public_key(args.features)
    authority.feip_public_key(args.classes)
    authority.febo_public_key()
    save_authority(authority, args.out)
    print(f"authority written to {args.out} "
          f"({args.bits}-bit group, scale {args.scale})")
    print("WARNING: this file contains master secret keys")
    return 0


def cmd_encrypt(args: argparse.Namespace) -> int:
    authority = load_authority(args.authority,
                               rng=random.Random(args.seed))
    shards = load_clinics(n_clinics=args.clinics,
                          samples_per_clinic=args.samples,
                          n_features=args.features, seed=args.seed)
    merged = merge_shards(shards)
    x = np.clip(merged.x / (np.abs(merged.x).max() + 1e-9), -1, 1)
    client = Client(authority)
    dataset = client.encrypt_tabular(x, merged.y, num_classes=args.classes)
    save_encrypted_tabular(dataset, args.out)
    print(f"encrypted {len(dataset)} samples "
          f"({args.features} features, {args.classes} classes) -> {args.out}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    authority = load_authority(args.authority, rng=random.Random(args.seed))
    dataset = load_encrypted_tabular(args.data)
    model = _build_model(dataset.n_features, args.hidden,
                         dataset.num_classes, args.seed)
    trainer = CryptoNNTrainer(model, authority)
    history = trainer.fit(
        dataset, SGD(args.learning_rate), epochs=args.epochs,
        batch_size=args.batch_size, rng=np.random.default_rng(args.seed),
        on_batch=lambda i, loss, acc: print(
            f"  iter {i:4d}  loss={loss:.4f}  batch-acc={acc:.2f}"),
    )
    accuracy = trainer.evaluate(dataset)
    print(f"final training accuracy: {accuracy:.2%}")
    print(f"decrypt counters: {trainer.counters.snapshot()}")
    if args.model_out:
        save_model_weights(model, args.model_out)
        print(f"model weights -> {args.model_out}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    authority = load_authority(args.authority, rng=random.Random(args.seed))
    dataset = load_encrypted_tabular(args.data)
    model = _build_model(dataset.n_features, args.hidden,
                         dataset.num_classes, args.seed)
    load_model_weights(model, args.model)
    trainer = CryptoNNTrainer(model, authority)
    print(f"accuracy over encrypted data: {trainer.evaluate(dataset):.2%}")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """End-to-end demo in one process (no files)."""
    config = CryptoNNConfig()
    authority = TrustedAuthority(config, rng=random.Random(0))
    shard = load_clinics(n_clinics=1, samples_per_clinic=args.samples,
                         n_features=6, seed=0)[0]
    x = np.clip(shard.x / (np.abs(shard.x).max() + 1e-9), -1, 1)
    dataset = Client(authority).encrypt_tabular(x, shard.y, num_classes=2)
    model = _build_model(6, 8, 2, seed=0)
    trainer = CryptoNNTrainer(model, authority)
    trainer.fit(dataset, SGD(0.5), epochs=3, batch_size=20,
                rng=np.random.default_rng(1))
    print(f"demo: trained over {len(dataset)} encrypted samples, "
          f"accuracy {trainer.evaluate(dataset):.2%}")
    return 0


# -- parser ------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CryptoNN reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and configuration info") \
        .set_defaults(func=cmd_info)

    p = sub.add_parser("keygen", help="create an authority (master keys)")
    p.add_argument("--out", required=True)
    p.add_argument("--bits", type=int, default=64,
                   help="group size; 256 matches the paper")
    p.add_argument("--scale", type=int, default=100)
    p.add_argument("--features", type=int, default=8)
    p.add_argument("--classes", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_keygen)

    p = sub.add_parser("encrypt", help="generate + encrypt clinic data")
    p.add_argument("--authority", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--clinics", type=int, default=3)
    p.add_argument("--samples", type=int, default=60)
    p.add_argument("--features", type=int, default=8)
    p.add_argument("--classes", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_encrypt)

    p = sub.add_parser("train", help="train over an encrypted dataset")
    p.add_argument("--authority", required=True)
    p.add_argument("--data", required=True)
    p.add_argument("--model-out")
    p.add_argument("--hidden", type=int, default=16)
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--batch-size", type=int, default=20)
    p.add_argument("--learning-rate", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("evaluate", help="evaluate saved weights")
    p.add_argument("--authority", required=True)
    p.add_argument("--data", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--hidden", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("demo", help="one-process end-to-end demo")
    p.add_argument("--samples", type=int, default=100)
    p.set_defaults(func=cmd_demo)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
