"""Tests for wire serialization and size accounting."""

import json
import random

import pytest

from repro.core import serialization as ser
from repro.fe.feip import Feip
from repro.fe.febo import Febo
from repro.mathutils.group import GroupParams


@pytest.fixture()
def feip_objects(params, rng):
    feip = Feip(params, rng=rng)
    mpk, msk = feip.setup(3)
    ct = feip.encrypt(mpk, [1, -2, 3])
    key = feip.key_derive(msk, [4, 5, 6])
    return ct, key


@pytest.fixture()
def febo_objects(params, rng):
    febo = Febo(params, rng=rng)
    mpk, msk = febo.setup()
    ct = febo.encrypt(mpk, 42)
    key = febo.key_derive(msk, ct.cmt, "+", 7)
    return ct, key


class TestRoundtrips:
    def test_feip_ciphertext(self, feip_objects):
        ct, _ = feip_objects
        restored = ser.feip_ciphertext_from_dict(ser.feip_ciphertext_to_dict(ct))
        assert restored == ct

    def test_feip_key(self, feip_objects):
        _, key = feip_objects
        restored = ser.feip_key_from_dict(ser.feip_key_to_dict(key))
        assert restored == key

    def test_febo_ciphertext(self, febo_objects):
        ct, _ = febo_objects
        restored = ser.febo_ciphertext_from_dict(ser.febo_ciphertext_to_dict(ct))
        assert restored == ct

    def test_febo_key(self, febo_objects):
        _, key = febo_objects
        restored = ser.febo_key_from_dict(ser.febo_key_to_dict(key))
        assert restored == key

    def test_json_canonical_and_parseable(self, feip_objects):
        ct, _ = feip_objects
        text = ser.to_json(ser.feip_ciphertext_to_dict(ct))
        assert json.loads(text)["ct0"] == ct.ct0
        assert " " not in text


class TestWireSizes:
    def test_element_sizes_match_bitlength(self, params):
        assert ser.element_size_bytes(params) == (params.p.bit_length() + 7) // 8
        assert ser.exponent_size_bytes(params) == (params.q.bit_length() + 7) // 8

    def test_sizes_grow_with_group(self):
        small = GroupParams.predefined(32)
        large = GroupParams.predefined(256)
        assert ser.element_size_bytes(large) > ser.element_size_bytes(small)

    def test_feip_ciphertext_size(self, params, feip_objects):
        ct, _ = feip_objects
        expected = (1 + 3) * ser.element_size_bytes(params)
        assert ser.feip_ciphertext_wire_size(ct, params) == expected

    def test_feip_key_size_formula(self, params, feip_objects):
        """Matches the paper's k x |sk| download: sk plus bound vector."""
        _, key = feip_objects
        size = ser.feip_key_wire_size(key, params, weight_bytes=8)
        assert size == ser.exponent_size_bytes(params) + 3 * 8

    def test_key_request_is_n_times_w(self, params):
        assert ser.feip_key_request_wire_size(10, params, weight_bytes=8) == 80

    def test_febo_sizes(self, params):
        assert ser.febo_ciphertext_wire_size(params) == 2 * ser.element_size_bytes(params)
        assert ser.febo_key_wire_size(params) > ser.element_size_bytes(params)
