"""Tests for wire serialization and size accounting."""

import json
import random

import pytest

from repro.core import serialization as ser
from repro.fe.feip import Feip
from repro.fe.febo import Febo
from repro.mathutils.group import GroupParams


@pytest.fixture()
def feip_objects(params, rng):
    feip = Feip(params, rng=rng)
    mpk, msk = feip.setup(3)
    ct = feip.encrypt(mpk, [1, -2, 3])
    key = feip.key_derive(msk, [4, 5, 6])
    return ct, key


@pytest.fixture()
def febo_objects(params, rng):
    febo = Febo(params, rng=rng)
    mpk, msk = febo.setup()
    ct = febo.encrypt(mpk, 42)
    key = febo.key_derive(msk, ct.cmt, "+", 7)
    return ct, key


class TestRoundtrips:
    def test_feip_ciphertext(self, feip_objects):
        ct, _ = feip_objects
        restored = ser.feip_ciphertext_from_dict(ser.feip_ciphertext_to_dict(ct))
        assert restored == ct

    def test_feip_key(self, feip_objects):
        _, key = feip_objects
        restored = ser.feip_key_from_dict(ser.feip_key_to_dict(key))
        assert restored == key

    def test_febo_ciphertext(self, febo_objects):
        ct, _ = febo_objects
        restored = ser.febo_ciphertext_from_dict(ser.febo_ciphertext_to_dict(ct))
        assert restored == ct

    def test_febo_key(self, febo_objects):
        _, key = febo_objects
        restored = ser.febo_key_from_dict(ser.febo_key_to_dict(key))
        assert restored == key

    def test_json_canonical_and_parseable(self, feip_objects):
        ct, _ = feip_objects
        text = ser.to_json(ser.feip_ciphertext_to_dict(ct))
        assert json.loads(text)["ct0"] == ct.ct0
        assert " " not in text


class TestWireSizes:
    def test_element_sizes_match_bitlength(self, params):
        assert ser.element_size_bytes(params) == (params.p.bit_length() + 7) // 8
        assert ser.exponent_size_bytes(params) == (params.q.bit_length() + 7) // 8

    def test_sizes_grow_with_group(self):
        small = GroupParams.predefined(32)
        large = GroupParams.predefined(256)
        assert ser.element_size_bytes(large) > ser.element_size_bytes(small)

    def test_feip_ciphertext_size(self, params, feip_objects):
        ct, _ = feip_objects
        expected = (1 + 3) * ser.element_size_bytes(params)
        assert ser.feip_ciphertext_wire_size(ct, params) == expected

    def test_feip_key_size_formula(self, params, feip_objects):
        """Matches the paper's k x |sk| download: sk plus bound vector."""
        _, key = feip_objects
        size = ser.feip_key_wire_size(key, params, weight_bytes=8)
        assert size == ser.exponent_size_bytes(params) + 3 * 8

    def test_key_request_is_n_times_w(self, params):
        assert ser.feip_key_request_wire_size(10, params, weight_bytes=8) == 80

    def test_febo_sizes(self, params):
        assert ser.febo_ciphertext_wire_size(params) == 2 * ser.element_size_bytes(params)
        assert ser.febo_key_wire_size(params) > ser.element_size_bytes(params)


class TestGroupAndPublicKeyCodecs:
    def test_group_params_roundtrip(self, params):
        restored = ser.group_params_from_dict(ser.group_params_to_dict(params))
        assert restored == params

    def test_feip_public_key_dict_roundtrip(self, params, rng):
        feip = Feip(params, rng=rng)
        mpk, _ = feip.setup(4)
        restored = ser.feip_public_key_from_dict(ser.feip_public_key_to_dict(mpk))
        assert restored == mpk

    def test_febo_public_key_dict_roundtrip(self, params, rng):
        febo = Febo(params, rng=rng)
        mpk, _ = febo.setup()
        restored = ser.febo_public_key_from_dict(ser.febo_public_key_to_dict(mpk))
        assert restored == mpk

    def test_feip_public_key_binary_roundtrip_and_size(self, params, rng):
        feip = Feip(params, rng=rng)
        mpk, _ = feip.setup(5)
        packed = ser.pack_feip_public_key(mpk)
        # matches the broadcast accounting: (1 + eta) elements
        assert len(packed) == (1 + 5) * ser.element_size_bytes(params)
        assert ser.unpack_feip_public_key(packed, params) == mpk

    def test_febo_public_key_binary_roundtrip_and_size(self, params, rng):
        febo = Febo(params, rng=rng)
        mpk, _ = febo.setup()
        packed = ser.pack_febo_public_key(mpk)
        assert len(packed) == 2 * ser.element_size_bytes(params)
        assert ser.unpack_febo_public_key(packed, params) == mpk


class TestBinaryPrimitives:
    def test_uint_edges(self):
        for width in (1, 4, 8):
            for value in (0, 1, (1 << (8 * width)) - 1):
                assert ser.unpack_uint(ser.pack_uint(value, width)) == value

    def test_uint_overflow_raises(self):
        with pytest.raises(OverflowError):
            ser.pack_uint(1 << 32, 4)
        with pytest.raises(OverflowError):
            ser.pack_uint(-1, 4)

    def test_sint_edges(self):
        for width in (1, 4, 8):
            lo, hi = -(1 << (8 * width - 1)), (1 << (8 * width - 1)) - 1
            for value in (lo, -1, 0, 1, hi):
                assert ser.unpack_sint(ser.pack_sint(value, width)) == value

    def test_sint_overflow_raises(self):
        with pytest.raises(OverflowError):
            ser.pack_sint(1 << 63, 8)
        with pytest.raises(OverflowError):
            ser.pack_sint(-(1 << 63) - 1, 8)

    def test_ciphertext_roundtrips(self, params, feip_objects, febo_objects):
        ct, _ = feip_objects
        packed = ser.pack_feip_ciphertext(ct, params)
        assert len(packed) == ser.feip_ciphertext_wire_size(ct, params)
        assert ser.unpack_feip_ciphertext(packed, params) == ct
        bct, _ = febo_objects
        packed = ser.pack_febo_ciphertext(bct, params)
        assert len(packed) == ser.febo_ciphertext_wire_size(params)
        assert ser.unpack_febo_ciphertext(packed, params) == bct


class TestBatchEnvelopes:
    """Property-style round trips over random signed weight rows."""

    def test_feip_request_roundtrip_random(self, params):
        rng = random.Random(99)
        for _ in range(20):
            count = rng.randrange(0, 6)
            eta = rng.randrange(1, 7)
            rows = [[rng.randrange(-10**6, 10**6) for _ in range(eta)]
                    for _ in range(count)]
            packed = ser.pack_feip_key_batch_request(rows)
            assert len(packed) == ser.feip_key_batch_request_wire_size(
                count, eta if count else 0, params)
            assert ser.unpack_feip_key_batch_request(packed) == rows

    def test_feip_request_edge_weights(self, params):
        # two's-complement extremes of the 8-byte weight field
        lo, hi = -(1 << 63), (1 << 63) - 1
        rows = [[lo, hi, 0, -1]]
        packed = ser.pack_feip_key_batch_request(rows)
        assert ser.unpack_feip_key_batch_request(packed) == rows
        with pytest.raises(OverflowError):
            ser.pack_feip_key_batch_request([[hi + 1]])

    def test_feip_response_roundtrip_edge_exponents(self, params, rng):
        feip = Feip(params, rng=rng)
        _, msk = feip.setup(3)
        keys = [feip.key_derive(msk, row)
                for row in ([0, 0, 0], [1, -1, 1], [-500, 400, -300])]
        # force the exponent extremes the wire must carry
        keys.append(ser.FeipFunctionKey(y=(1, 2, 3), sk=0))
        keys.append(ser.FeipFunctionKey(y=(1, 2, 3), sk=params.q - 1))
        packed = ser.pack_feip_key_batch_response(keys, params)
        assert len(packed) == ser.feip_key_batch_response_wire_size(
            len(keys), 3, params)
        assert ser.unpack_feip_key_batch_response(packed, params) == keys

    def test_febo_request_roundtrip_random(self, params):
        rng = random.Random(7)
        for _ in range(20):
            count = rng.randrange(0, 8)
            requests = [
                (rng.randrange(1, params.p), rng.choice("+-*/"),
                 rng.randrange(-10**9, 10**9))
                for _ in range(count)
            ]
            packed = ser.pack_febo_key_batch_request(requests, params)
            assert len(packed) == ser.febo_key_batch_request_wire_size(
                count, params)
            assert ser.unpack_febo_key_batch_request(packed, params) == requests

    def test_febo_response_roundtrip(self, params, febo_objects):
        _, key = febo_objects
        negative = ser.FeboFunctionKey(op="-", y=-12345, sk=key.sk, cmt=0)
        packed = ser.pack_febo_key_batch_response([key, negative], params)
        assert len(packed) == ser.febo_key_batch_response_wire_size(2, params)
        restored = ser.unpack_febo_key_batch_response(packed, params)
        # commitments are not wired; the requester re-attaches them
        assert [(k.op, k.y, k.sk) for k in restored] == \
            [(key.op, key.y, key.sk), ("-", -12345, key.sk)]

    def test_zero_count_with_trailing_bytes_rejected(self, params):
        stride = ser.exponent_size_bytes(params) + 2 * 8
        packed = ser.pack_batch_header(0, 2) + b"\x00" * stride
        with pytest.raises(ValueError):
            ser.unpack_feip_key_batch_response(packed, params)

    def test_truncated_envelope_rejected(self, params):
        packed = ser.pack_feip_key_batch_request([[1, 2], [3, 4]])
        with pytest.raises(ValueError):
            ser.unpack_feip_key_batch_request(packed[:-3])
        with pytest.raises(ValueError):
            ser.unpack_batch_header(b"\x00\x01")

    def test_upload_size_composes_from_parts(self, params):
        total = ser.encrypted_tabular_wire_size(7, 5, 3, params)
        per_sample = ser.encrypted_sample_wire_size(5, params)
        per_label = ser.encrypted_label_wire_size(3, params)
        assert total == 7 * (per_sample + per_label)
