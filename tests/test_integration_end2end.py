"""End-to-end scenarios across the full stack.

These mirror the paper's application story: multiple federated clinics
encrypt shards under one authority, the server trains over the union,
then FE-based prediction serves new encrypted samples.
"""

import random

import numpy as np
import pytest

from repro.core import protocol
from repro.core.config import CryptoNNConfig
from repro.core.cryptonn import CryptoNNTrainer
from repro.core.encdata import EncryptedTabularDataset
from repro.core.entities import Client, TrustedAuthority
from repro.data.preprocess import LabelMapper
from repro.data.tabular import load_clinics
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD


def merge_encrypted(parts: list[EncryptedTabularDataset]) -> EncryptedTabularDataset:
    """Server-side merge of shards uploaded by different clients."""
    first = parts[0]
    return EncryptedTabularDataset(
        samples=[s for p in parts for s in p.samples],
        labels=[l for p in parts for l in p.labels],
        num_classes=first.num_classes,
        n_features=first.n_features,
        scale=first.scale,
        eval_labels=np.concatenate([p.eval_labels for p in parts]),
    )


@pytest.fixture()
def setup():
    config = CryptoNNConfig()
    authority = TrustedAuthority(config, rng=random.Random(0))
    shards = load_clinics(n_clinics=3, samples_per_clinic=40, n_features=4,
                          seed=3)
    max_abs = max(np.abs(s.x).max() for s in shards) + 1e-9
    mapper = LabelMapper(2, np.random.default_rng(42))
    clients = [
        Client(authority, label_mapper=mapper, name=f"clinic-{i}")
        for i in range(3)
    ]
    encrypted = [
        client.encrypt_tabular(np.clip(shard.x / max_abs, -1, 1), shard.y, 2)
        for client, shard in zip(clients, shards)
    ]
    return authority, merge_encrypted(encrypted)


class TestFederatedClinics:
    def test_multi_client_training_under_one_key(self, setup):
        """Paper Section III-A 'Distributed data source': the only
        requirement is a shared public key."""
        authority, merged = setup
        rng = np.random.default_rng(0)
        model = Sequential([Dense(4, 8, rng=rng), ReLU(),
                            Dense(8, 2, rng=rng)])
        trainer = CryptoNNTrainer(model, authority)
        trainer.fit(merged, SGD(0.5), epochs=3, batch_size=20,
                    rng=np.random.default_rng(1))
        assert trainer.evaluate(merged) > 0.75

    def test_per_client_uploads_recorded(self, setup):
        authority, _ = setup
        for i in range(3):
            sent = authority.traffic.total_bytes(sender=f"clinic-{i}")
            assert sent > 0

    def test_key_traffic_matches_paper_formula(self, setup):
        """Section IV-B2: per iteration the server sends k x n x |w| and
        receives k x |sk| for the first-layer keys."""
        authority, merged = setup
        rng = np.random.default_rng(0)
        k, n = 8, 4  # hidden units, features
        model = Sequential([Dense(n, k, rng=rng), ReLU(),
                            Dense(k, 2, rng=rng)])
        trainer = CryptoNNTrainer(model, authority)
        authority.traffic.clear()
        trainer.fit(merged, SGD(0.1), epochs=1, batch_size=len(merged),
                    max_batches=1, rng=np.random.default_rng(1))
        from repro.core.serialization import (
            exponent_size_bytes,
            feip_key_request_wire_size,
        )
        upload = authority.traffic.total_bytes(
            sender=protocol.SERVER, kind=protocol.KIND_FEIP_KEY_REQUEST)
        w = authority.config.key_weight_bytes
        # first-layer request: k rows of n weights; the loss adds one
        # request of num_classes weights per sample
        expected_first_layer = k * n * w
        per_sample_loss = len(merged) * 2 * w
        assert upload == expected_first_layer + per_sample_loss

    def test_model_improves_over_majority_baseline(self, setup):
        authority, merged = setup
        rng = np.random.default_rng(7)
        model = Sequential([Dense(4, 8, rng=rng), ReLU(),
                            Dense(8, 2, rng=rng)])
        trainer = CryptoNNTrainer(model, authority)
        trainer.fit(merged, SGD(0.5), epochs=3, batch_size=20,
                    rng=np.random.default_rng(2))
        majority = max(np.bincount(merged.eval_labels)) / len(merged)
        assert trainer.evaluate(merged) > majority


class TestFePrediction:
    def test_prediction_over_encrypted_samples(self, setup):
        """FE-based prediction: the server runs secure feed-forward on
        fresh encrypted samples and learns the scores (by design)."""
        authority, merged = setup
        rng = np.random.default_rng(0)
        model = Sequential([Dense(4, 8, rng=rng), ReLU(),
                            Dense(8, 2, rng=rng)])
        trainer = CryptoNNTrainer(model, authority)
        trainer.fit(merged, SGD(0.5), epochs=2, batch_size=20,
                    rng=np.random.default_rng(1))
        probs = trainer.predict(merged, np.arange(10))
        assert probs.shape == (10, 2)
        predicted = probs.argmax(axis=1)
        agreement = (predicted == merged.eval_labels[:10]).mean()
        assert agreement >= 0.5
