"""Unit + property tests for the fixed-point codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mathutils.encoding import PAPER_SCALE, FixedPointCodec


class TestScalar:
    def test_paper_scale_two_decimals(self):
        codec = FixedPointCodec()
        assert codec.scale == PAPER_SCALE == 100
        assert codec.encode(3.14159) == 314
        assert codec.decode(314) == pytest.approx(3.14)

    def test_negative_values(self):
        codec = FixedPointCodec(100)
        assert codec.encode(-2.5) == -250
        assert codec.decode(-250) == -2.5

    def test_rounding_not_truncation(self):
        codec = FixedPointCodec(100)
        assert codec.encode(0.019) == 2
        assert codec.encode(-0.019) == -2

    def test_power_two_decode(self):
        codec = FixedPointCodec(100)
        # product of two encoded values carries scale^2
        product = codec.encode(1.5) * codec.encode(2.0)
        assert codec.decode(product, power=2) == pytest.approx(3.0)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            FixedPointCodec(0)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=-1000, max_value=1000, allow_nan=False),
           st.sampled_from([10, 100, 1000]))
    def test_roundtrip_error_bounded(self, value, scale):
        codec = FixedPointCodec(scale)
        assert abs(codec.decode(codec.encode(value)) - value) <= 0.5 / scale + 1e-12


class TestArray:
    def test_encode_array_object_dtype(self):
        codec = FixedPointCodec(100)
        arr = codec.encode_array(np.array([[0.5, -1.25], [2.0, 0.0]]))
        assert arr.dtype == object
        assert arr.tolist() == [[50, -125], [200, 0]]
        assert all(isinstance(v, int) for v in arr.ravel())

    def test_decode_array_roundtrip(self):
        codec = FixedPointCodec(100)
        values = np.array([[0.25, -3.75], [1.0, 0.01]])
        out = codec.decode_array(codec.encode_array(values))
        np.testing.assert_allclose(out, values)

    def test_no_int64_overflow_with_huge_scale(self):
        codec = FixedPointCodec(10 ** 15)
        arr = codec.encode_array(np.array([1e5]))
        assert arr[0] == 10 ** 20  # would overflow int64


class TestResidues:
    def test_residue_roundtrip(self, params):
        codec = FixedPointCodec(100)
        for value in (0.0, 1.23, -4.56):
            residue = codec.to_residue(value, params.q)
            assert 0 <= residue < params.q
            assert codec.from_residue(residue, params.q) == pytest.approx(value)

    def test_bound_for(self):
        codec = FixedPointCodec(100)
        assert codec.bound_for(1.0) == 101
        assert codec.bound_for(1.0, power=2) == 10001
