"""Tests for the process-parallel secure computation path."""

import random

import numpy as np
import pytest

from repro.fe.feip import Feip
from repro.matrix.parallel import (
    SecureComputePool,
    chunk_tasks,
    default_workers,
    secure_convolve_parallel,
    secure_dot_parallel,
    secure_elementwise_parallel,
)
from repro.matrix.secure_conv import SecureConvolution
from repro.matrix.secure_matrix import (
    SecureMatrixScheme,
    matrix_bound_dot,
    matrix_bound_elementwise,
)


def random_matrix(rng, rows, cols, lo=-15, hi=15):
    return np.array(
        [[rng.randrange(lo, hi + 1) for _ in range(cols)] for _ in range(rows)],
        dtype=object,
    )


def test_default_workers_positive():
    assert default_workers() >= 1


def _echo_task(config, task):
    return task


class TestChunking:
    """Every task must land in exactly one chunk, for any shape."""

    @pytest.mark.parametrize("n_tasks", [0, 1, 2, 3, 7, 8, 13, 64, 101])
    @pytest.mark.parametrize("n_chunks", [1, 2, 3, 5, 8, 100])
    def test_chunk_tasks_covers_all_tasks(self, n_tasks, n_chunks):
        tasks = list(range(n_tasks))
        chunks = chunk_tasks(tasks, n_chunks)
        assert [t for chunk in chunks for t in chunk] == tasks
        assert all(chunks), "no chunk may be empty"
        assert len(chunks) <= max(1, min(n_chunks, n_tasks) or 1)

    @pytest.mark.parametrize("count", [1, 2, 3, 7, 8, 9, 16, 31])
    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    def test_nonce_chunks_cover_count(self, count, workers):
        """The remainder path must account for every requested nonce."""
        pool = SecureComputePool(workers=workers)
        chunks = pool._nonce_chunks(count)
        assert sum(chunks) == count
        assert all(c >= 1 for c in chunks)

    @pytest.mark.parametrize("n_tasks,parallelism_hint",
                             [(0, 4), (1, 4), (3, 8), (5, 2), (17, 4)])
    def test_map_chunksize_always_positive(self, n_tasks, parallelism_hint,
                                           monkeypatch):
        """The simplified heuristic must never hand chunksize=0 to
        executor.map (n_tasks below workers*hint used to need the
        double guard).  A fake executor captures what _map actually
        passes, without forking workers."""
        pool = SecureComputePool(workers=4)
        seen = {}

        class FakeExecutor:
            def map(self, fn, tasks, chunksize=None):
                seen["chunksize"] = chunksize
                return [fn(t) for t in tasks]

        monkeypatch.setattr(pool, "_ensure_executor",
                            lambda: FakeExecutor())
        tasks = list(range(n_tasks))
        out = pool._map(_echo_task, ("config",), tasks, parallelism_hint)
        assert out == tasks
        assert seen["chunksize"] >= 1

    def test_pooled_dot_awkward_column_counts(self, params, rng,
                                              solver_cache):
        """Column counts that do not divide the chunk count must still
        decrypt every column (the pre-chunked secure_dot dispatch)."""
        scheme = SecureMatrixScheme(params, rng=rng, solver_cache=solver_cache)
        msk_ip, _ = scheme.setup(column_length=2)
        y = random_matrix(rng, 3, 2)
        keys = scheme.derive_dot_keys(msk_ip, y)
        bound = matrix_bound_dot(15, 15, 2)
        with SecureComputePool(workers=2) as pool:
            for cols in (1, 3, 5, 9):
                x = random_matrix(rng, 2, cols)
                enc = scheme.pre_process_encryption(x, with_febo=False)
                out = pool.secure_dot(params, scheme.feip_mpk,
                                      enc.require_feip(), keys, bound)
                np.testing.assert_array_equal(out, y @ x)


class TestParallelMatchesSerial:
    def test_dot(self, params, rng, solver_cache):
        scheme = SecureMatrixScheme(params, rng=rng, solver_cache=solver_cache)
        msk_ip, _ = scheme.setup(column_length=3)
        x = random_matrix(rng, 3, 8)
        y = random_matrix(rng, 4, 3)
        enc = scheme.pre_process_encryption(x, with_febo=False)
        keys = scheme.derive_dot_keys(msk_ip, y)
        bound = matrix_bound_dot(15, 15, 3)
        serial = scheme.secure_dot(enc, keys, bound)
        parallel = secure_dot_parallel(params, scheme.feip_mpk, enc, keys,
                                       bound, workers=2)
        np.testing.assert_array_equal(parallel, serial)

    def test_elementwise(self, params, rng, solver_cache):
        scheme = SecureMatrixScheme(params, rng=rng, solver_cache=solver_cache)
        _, msk_bo = scheme.setup(column_length=3)
        x = random_matrix(rng, 3, 5)
        y = random_matrix(rng, 3, 5)
        enc = scheme.pre_process_encryption(x, with_feip=False)
        keys = scheme.derive_elementwise_keys(msk_bo, "*", y, enc.commitments())
        bound = matrix_bound_elementwise("*", 15, 15)
        serial = scheme.secure_elementwise(enc, keys, bound)
        parallel = secure_elementwise_parallel(params, scheme.febo_mpk, enc,
                                               keys, bound, workers=2)
        np.testing.assert_array_equal(parallel, serial)

    def test_convolution(self, params, rng, solver_cache):
        feip = Feip(params, rng=rng, solver_cache=solver_cache)
        conv = SecureConvolution(feip)
        msk = conv.setup(window_length=4)
        img = np.array([[rng.randrange(0, 8) for _ in range(4)]
                        for _ in range(4)], dtype=object)
        kernels = [np.array([[rng.randrange(-2, 3) for _ in range(2)]
                             for _ in range(2)], dtype=object)
                   for _ in range(2)]
        enc = conv.pre_process_encryption(img, 2, 2, 0)
        keys = conv.derive_filter_bank_keys(msk, kernels)
        bound = 4 * 8 * 2 + 1
        serial = conv.secure_convolve_bank(enc, keys, bound)
        parallel = secure_convolve_parallel(
            params, conv.mpk, enc.windows, enc.out_shape, keys, bound,
            workers=2,
        )
        np.testing.assert_array_equal(parallel, serial)

    def test_single_worker_works(self, params, rng, solver_cache):
        scheme = SecureMatrixScheme(params, rng=rng, solver_cache=solver_cache)
        msk_ip, _ = scheme.setup(column_length=2)
        x = random_matrix(rng, 2, 3)
        y = random_matrix(rng, 2, 2)
        enc = scheme.pre_process_encryption(x, with_febo=False)
        keys = scheme.derive_dot_keys(msk_ip, y)
        bound = matrix_bound_dot(15, 15, 2)
        out = secure_dot_parallel(params, scheme.feip_mpk, enc, keys, bound,
                                  workers=1)
        np.testing.assert_array_equal(out, y @ x)


@pytest.mark.timeout_guard(120)
class TestPoolDegradation:
    """Graceful degradation: a pool whose workers keep dying must finish
    the dispatch sequentially in-process with identical numerics.

    ``REPRO_CHAOS_WORKER_KILL`` makes every *forked worker* exit with
    code 3 the moment it unpickles its config (the hook lives in
    ``_install_config`` and only fires when ``parent_process()`` is not
    None), so every executor the pool builds breaks deterministically
    while the parent's own fallback path computes normally.
    """

    def _dot_setup(self, params, rng, solver_cache):
        scheme = SecureMatrixScheme(params, rng=rng, solver_cache=solver_cache)
        msk_ip, _ = scheme.setup(column_length=2)
        x = random_matrix(rng, 2, 4)
        y = random_matrix(rng, 3, 2)
        enc = scheme.pre_process_encryption(x, with_febo=False)
        keys = scheme.derive_dot_keys(msk_ip, y)
        bound = matrix_bound_dot(15, 15, 2)
        return scheme, enc, keys, bound, y @ x

    def test_repeated_worker_kills_fall_back_to_sequential(
            self, params, rng, solver_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_WORKER_KILL", "1")
        scheme, enc, keys, bound, expected = self._dot_setup(
            params, rng, solver_cache)
        with SecureComputePool(workers=2, crash_retries=1) as pool:
            out = pool.secure_dot(params, scheme.feip_mpk,
                                  enc.require_feip(), keys, bound)
            np.testing.assert_array_equal(out, expected)
            stats = pool.stats
        # every executor (initial + one retry) broke and was replaced
        assert stats["worker_restarts"] >= 1
        assert stats["degraded_dispatches"] == 1
        assert stats["degraded"] is True
        assert stats["dispatches"] == 1

    def test_degraded_pool_keeps_serving_identical_numerics(
            self, params, rng, solver_cache, monkeypatch):
        """Later dispatches on an already-degraded pool still succeed,
        and the degraded flag stays latched while the per-dispatch
        counter keeps counting."""
        monkeypatch.setenv("REPRO_CHAOS_WORKER_KILL", "1")
        scheme, enc, keys, bound, expected = self._dot_setup(
            params, rng, solver_cache)
        with SecureComputePool(workers=2, crash_retries=0) as pool:
            first = pool.secure_dot(params, scheme.feip_mpk,
                                    enc.require_feip(), keys, bound)
            second = pool.secure_dot(params, scheme.feip_mpk,
                                     enc.require_feip(), keys, bound)
            np.testing.assert_array_equal(first, expected)
            np.testing.assert_array_equal(second, expected)
            stats = pool.stats
        assert stats["degraded_dispatches"] == 2
        assert stats["degraded"] is True
        assert stats["dispatches"] == 2

    def test_allow_degraded_false_raises_broken_pool(
            self, params, rng, solver_cache, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        monkeypatch.setenv("REPRO_CHAOS_WORKER_KILL", "1")
        scheme, enc, keys, bound, _ = self._dot_setup(
            params, rng, solver_cache)
        with SecureComputePool(workers=2, crash_retries=0,
                               allow_degraded=False) as pool:
            with pytest.raises(BrokenProcessPool):
                pool.secure_dot(params, scheme.feip_mpk,
                                enc.require_feip(), keys, bound)
            assert pool.stats["degraded"] is False
            assert pool.stats["degraded_dispatches"] == 0

    def test_crash_retries_validation(self):
        with pytest.raises(ValueError):
            SecureComputePool(workers=1, crash_retries=-1)
