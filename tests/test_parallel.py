"""Tests for the process-parallel secure computation path."""

import random

import numpy as np
import pytest

from repro.fe.feip import Feip
from repro.matrix.parallel import (
    default_workers,
    secure_convolve_parallel,
    secure_dot_parallel,
    secure_elementwise_parallel,
)
from repro.matrix.secure_conv import SecureConvolution
from repro.matrix.secure_matrix import (
    SecureMatrixScheme,
    matrix_bound_dot,
    matrix_bound_elementwise,
)


def random_matrix(rng, rows, cols, lo=-15, hi=15):
    return np.array(
        [[rng.randrange(lo, hi + 1) for _ in range(cols)] for _ in range(rows)],
        dtype=object,
    )


def test_default_workers_positive():
    assert default_workers() >= 1


class TestParallelMatchesSerial:
    def test_dot(self, params, rng, solver_cache):
        scheme = SecureMatrixScheme(params, rng=rng, solver_cache=solver_cache)
        msk_ip, _ = scheme.setup(column_length=3)
        x = random_matrix(rng, 3, 8)
        y = random_matrix(rng, 4, 3)
        enc = scheme.pre_process_encryption(x, with_febo=False)
        keys = scheme.derive_dot_keys(msk_ip, y)
        bound = matrix_bound_dot(15, 15, 3)
        serial = scheme.secure_dot(enc, keys, bound)
        parallel = secure_dot_parallel(params, scheme.feip_mpk, enc, keys,
                                       bound, workers=2)
        np.testing.assert_array_equal(parallel, serial)

    def test_elementwise(self, params, rng, solver_cache):
        scheme = SecureMatrixScheme(params, rng=rng, solver_cache=solver_cache)
        _, msk_bo = scheme.setup(column_length=3)
        x = random_matrix(rng, 3, 5)
        y = random_matrix(rng, 3, 5)
        enc = scheme.pre_process_encryption(x, with_feip=False)
        keys = scheme.derive_elementwise_keys(msk_bo, "*", y, enc.commitments())
        bound = matrix_bound_elementwise("*", 15, 15)
        serial = scheme.secure_elementwise(enc, keys, bound)
        parallel = secure_elementwise_parallel(params, scheme.febo_mpk, enc,
                                               keys, bound, workers=2)
        np.testing.assert_array_equal(parallel, serial)

    def test_convolution(self, params, rng, solver_cache):
        feip = Feip(params, rng=rng, solver_cache=solver_cache)
        conv = SecureConvolution(feip)
        msk = conv.setup(window_length=4)
        img = np.array([[rng.randrange(0, 8) for _ in range(4)]
                        for _ in range(4)], dtype=object)
        kernels = [np.array([[rng.randrange(-2, 3) for _ in range(2)]
                             for _ in range(2)], dtype=object)
                   for _ in range(2)]
        enc = conv.pre_process_encryption(img, 2, 2, 0)
        keys = conv.derive_filter_bank_keys(msk, kernels)
        bound = 4 * 8 * 2 + 1
        serial = conv.secure_convolve_bank(enc, keys, bound)
        parallel = secure_convolve_parallel(
            params, conv.mpk, enc.windows, enc.out_shape, keys, bound,
            workers=2,
        )
        np.testing.assert_array_equal(parallel, serial)

    def test_single_worker_works(self, params, rng, solver_cache):
        scheme = SecureMatrixScheme(params, rng=rng, solver_cache=solver_cache)
        msk_ip, _ = scheme.setup(column_length=2)
        x = random_matrix(rng, 2, 3)
        y = random_matrix(rng, 2, 2)
        enc = scheme.pre_process_encryption(x, with_febo=False)
        keys = scheme.derive_dot_keys(msk_ip, y)
        bound = matrix_bound_dot(15, 15, 2)
        out = secure_dot_parallel(params, scheme.feip_mpk, enc, keys, bound,
                                  workers=1)
        np.testing.assert_array_equal(out, y @ x)
