"""Hardened-ingestion and resumable-upload tests.

Adversarial side: garbage ciphertexts (non-subgroup elements,
out-of-range values, implausible shapes) are rejected at the unpack
boundary with the service still serving; connection floods and request
storms hit the accept/quota/backpressure bounds instead of the event
loop; a malicious *server* sending oversized frames is bounded on the
client side of the framing too.

Resumable side: chunked uploads with per-chunk acks resume at the last
acked chunk after a client dropout (no re-sent chunks), are idempotent
by shard fingerprint, and -- composed with a ChaosProxy dropping frames
between client and training server -- still land byte-exact training
results whenever the full quorum eventually arrives.
"""

from __future__ import annotations

import dataclasses
import random
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.core.config import CryptoNNConfig
from repro.core.encdata import merge_encrypted_tabular
from repro.core.entities import Client, TrustedAuthority
from repro.data.preprocess import normalize_features, shared_feature_scale
from repro.data.tabular import load_clinics
from repro.obs.metrics import GLOBAL_REGISTRY
from repro.rpc import (
    AuthorityService,
    ChaosConfig,
    ChaosProxy,
    HealthRequest,
    RemoteAuthority,
    RetryPolicy,
    RpcEndpoint,
    RpcError,
    RpcRemoteError,
    ServiceThread,
    ShardChunk,
    ShardResumeQuery,
    TrainingService,
    plan_shard_chunks,
    run_training,
    upload_planned_chunks,
    upload_shard,
)
from repro.rpc.framing import MAX_FRAME_BYTES, MAX_HEADER_BYTES
from repro.rpc.messages import Ack, EncryptedDataUpload, PublicParamsRequest

HIDDEN, EPOCHS, BATCH_SIZE, LR, SEED = 6, 2, 10, 0.5, 0

FAST_POLICY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


def _make_shards(n_clients=2, samples=15, features=4):
    shards = load_clinics(n_clinics=n_clients, samples_per_clinic=samples,
                          n_features=features, seed=3)
    scale = shared_feature_scale([s.x for s in shards])
    return [(normalize_features(s.x, scale), s.y) for s in shards]


def _clean_reference(shards):
    authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(SEED))
    parts = [
        Client(authority, name=f"clinic-{i}").encrypt_tabular(x, y, 2)
        for i, (x, y) in enumerate(shards)
    ]
    merged = merge_encrypted_tabular(parts)
    trainer, history, accuracy = run_training(
        merged, authority, hidden=HIDDEN, epochs=EPOCHS,
        batch_size=BATCH_SIZE, learning_rate=LR, seed=SEED)
    return _weights_of(trainer), history, accuracy


def _weights_of(trainer):
    return [
        {name: np.array(value, copy=True)
         for name, value in layer.params.items()}
        for layer in trainer.model.layers
        if getattr(layer, "params", None)
    ]


def _assert_identical_run(service, ref_weights, ref_history, ref_accuracy):
    assert service.state == "done", service.error
    assert service.accuracy == ref_accuracy
    got = _weights_of(service.trainer)
    assert len(got) == len(ref_weights)
    for got_layer, ref_layer in zip(got, ref_weights):
        assert set(got_layer) == set(ref_layer)
        for name in ref_layer:
            assert np.array_equal(got_layer[name], ref_layer[name])
    assert service.history.batch_loss == ref_history.batch_loss
    assert service.history.epoch_loss == ref_history.epoch_loss


@pytest.fixture()
def stack():
    """Authority + training service (1 expected client) on live sockets."""
    authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(SEED))
    auth_thread = ServiceThread(AuthorityService(authority))
    auth_addr = auth_thread.start()
    service = TrainingService(
        *auth_addr, expected_clients=1, hidden=HIDDEN, epochs=EPOCHS,
        batch_size=BATCH_SIZE, learning_rate=LR, seed=SEED)
    train_thread = ServiceThread(service)
    train_addr = train_thread.start()
    yield authority, service, auth_addr, train_addr, train_thread
    train_thread.stop()
    auth_thread.stop()


def _encrypt_one(auth_addr, shard, name="clinic-0", seed=100):
    """Client-side encryption of one shard against a live authority."""
    x, y = shard
    remote = RemoteAuthority(*auth_addr, name=name,
                             rng=random.Random(seed))
    client = Client(remote, name=name)
    dataset = client.encrypt_tabular(x, y, 2)
    return remote, dataset


# ---------------------------------------------------------------------------
# hardened ingestion: garbage ciphertexts
# ---------------------------------------------------------------------------

@pytest.mark.timeout_guard(120)
class TestCiphertextValidation:
    def test_non_subgroup_element_is_rejected(self, stack):
        """p-1 is a quadratic non-residue mod a safe prime: a ciphertext
        carrying it must be rejected at unpack, before it can poison a
        training run (or leak via an invalid-element oracle)."""
        authority, service, auth_addr, train_addr, _ = stack
        remote, dataset = _encrypt_one(auth_addr, _make_shards()[0])
        with remote:
            bad = dataset.samples[0].features_ip
            dataset.samples[0].features_ip = dataclasses.replace(
                bad, ct0=authority.params.p - 1)
            with RpcEndpoint(*train_addr, name="clinic-0", peer="server",
                             policy=FAST_POLICY) as server:
                with pytest.raises(RpcRemoteError) as err:
                    server.request(
                        EncryptedDataUpload(dataset=dataset,
                                            client_name="clinic-0"),
                        remote.wire_ctx)
            assert "subgroup" in str(err.value)
        # the service survived the poison attempt and still answers
        assert service.state == "waiting"
        assert not service._shards

    def test_out_of_range_element_is_rejected(self, stack):
        authority, service, auth_addr, train_addr, _ = stack
        remote, dataset = _encrypt_one(auth_addr, _make_shards()[0])
        with remote:
            label = dataset.labels[0]
            bad_bo = list(label.onehot_bo)
            bad_bo[0] = dataclasses.replace(bad_bo[0], cmt=0)
            label.onehot_bo = tuple(bad_bo)
            with RpcEndpoint(*train_addr, name="clinic-0", peer="server",
                             policy=FAST_POLICY) as server:
                with pytest.raises(RpcRemoteError):
                    server.request(
                        EncryptedDataUpload(dataset=dataset,
                                            client_name="clinic-0"),
                        remote.wire_ctx)
        assert service.state == "waiting"

    def test_implausible_shape_is_rejected(self, stack):
        """A forged header claiming absurd dimensions must fail the
        sanity check, not drive a giant allocation loop."""
        _, service, auth_addr, train_addr, _ = stack
        remote, dataset = _encrypt_one(auth_addr, _make_shards()[0])

        class _ForgedUpload:
            kind = EncryptedDataUpload.kind

            def __init__(self, msg, ctx, **overrides):
                self._header = msg.header()
                self._header.update(overrides)
                self._body = msg.body(ctx)

            def header(self):
                return self._header

            def body(self, ctx=None):
                return self._body

        with remote:
            msg = EncryptedDataUpload(dataset=dataset,
                                      client_name="clinic-0")
            with RpcEndpoint(*train_addr, name="clinic-0", peer="server",
                             policy=FAST_POLICY) as server:
                with pytest.raises(RpcRemoteError) as err:
                    server.request(
                        _ForgedUpload(msg, remote.wire_ctx, n_features=0),
                        remote.wire_ctx)
        assert "implausible" in str(err.value)
        assert service.state == "waiting"

    def test_valid_upload_still_passes_validation(self, stack):
        """The hardened unpack path accepts every honest ciphertext."""
        _, service, auth_addr, train_addr, train_thread = stack
        x, y = _make_shards()[0]
        result = upload_shard(auth_addr, train_addr, x, y, 2,
                              name="clinic-0", rng=random.Random(100))
        assert result["ack"]["received"] == len(x)
        train_thread.call(lambda: service.wait_done(timeout=120),
                          timeout=150)
        assert service.state == "done", service.error


# ---------------------------------------------------------------------------
# hardened ingestion: floods, quotas, backpressure
# ---------------------------------------------------------------------------

@pytest.mark.timeout_guard(60)
class TestConnectionHardening:
    def test_connection_flood_is_capped(self):
        authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))
        thread = ServiceThread(AuthorityService(authority,
                                                max_connections=2))
        host, port = thread.start()
        service = thread.service
        try:
            # two held connections fill the accept cap
            held = [RpcEndpoint(host, port, name=f"held-{i}", peer="authority")
                    for i in range(2)]
            for endpoint in held:
                endpoint.request(HealthRequest(requester=endpoint.name))
            # the flood: raw connects past the cap are closed immediately
            rejected = 0
            for _ in range(5):
                with socket.create_connection((host, port), timeout=5) as s:
                    s.settimeout(5)
                    if s.recv(1) == b"":
                        rejected += 1
            assert rejected == 5
            assert service.connection_rejections >= 5
            # the held connections keep working through the flood
            for endpoint in held:
                resp = endpoint.request(
                    HealthRequest(requester=endpoint.name))
                assert resp.ready
            for endpoint in held:
                endpoint.close()
            # slots freed: a new connection is admitted again
            with RpcEndpoint(host, port, name="late",
                             peer="authority") as late:
                assert late.request(HealthRequest(requester="late")).ready
        finally:
            thread.stop()

    def test_request_quota_closes_greedy_connection(self):
        authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))
        thread = ServiceThread(
            AuthorityService(authority, max_requests_per_connection=3))
        host, port = thread.start()
        service = thread.service
        try:
            with RpcEndpoint(host, port, name="greedy", peer="authority",
                             policy=RetryPolicy(max_attempts=1)) as greedy:
                for _ in range(3):
                    greedy.request(HealthRequest(requester="greedy"))
                with pytest.raises(RpcRemoteError) as err:
                    greedy.request(HealthRequest(requester="greedy"))
                assert err.value.error_type == "QuotaExceeded"
            assert service.quota_rejections == 1
            # a fresh connection gets a fresh quota
            with RpcEndpoint(host, port, name="next",
                             peer="authority") as endpoint:
                assert endpoint.request(
                    HealthRequest(requester="next")).ready
        finally:
            thread.stop()

    def test_inflight_bound_serializes_load_but_loses_nothing(self):
        """max_inflight=1 queues concurrent dispatches instead of
        running them in parallel; every request still gets answered,
        and health probes bypass the bound entirely."""
        authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))
        thread = ServiceThread(AuthorityService(authority, max_inflight=1))
        host, port = thread.start()
        service = thread.service
        try:
            endpoints = [RpcEndpoint(host, port, name=f"c{i}",
                                     peer="authority") for i in range(4)]
            results = []

            def _hammer(endpoint):
                for _ in range(3):
                    resp = endpoint.request(PublicParamsRequest(
                        etas=(2,), include_febo=False,
                        requester=endpoint.name))
                    results.append(resp.group == authority.params)

            threads = [threading.Thread(target=_hammer, args=(e,))
                       for e in endpoints]
            for t in threads:
                t.start()
            # probes stay answerable while the dispatch path is bounded
            with RpcEndpoint(host, port, name="probe",
                             peer="authority") as probe:
                assert probe.request(HealthRequest(
                    requester="probe")).ready
            for t in threads:
                t.join(timeout=30)
            assert results == [True] * 12
            for e in endpoints:
                e.close()
        finally:
            thread.stop()


# ---------------------------------------------------------------------------
# client-side framing bounds (malicious server)
# ---------------------------------------------------------------------------

class _EvilServer:
    """Accepts connections, reads a bit, answers with raw bytes."""

    def __init__(self, response: bytes):
        self.response = response
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._sock.settimeout(0.2)
        self.address = self._sock.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with conn:
                try:
                    conn.settimeout(2)
                    conn.recv(65536)
                    conn.sendall(self.response)
                    time.sleep(0.05)
                except OSError:
                    pass

    def stop(self):
        self._stop.set()
        self._thread.join(timeout=5)
        self._sock.close()


@pytest.mark.timeout_guard(60)
class TestClientFramingBounds:
    def _assert_client_rejects(self, response: bytes):
        evil = _EvilServer(response)
        try:
            start = time.monotonic()
            with RpcEndpoint(*evil.address, name="victim", peer="evil",
                             timeout=5.0, policy=FAST_POLICY) as endpoint:
                with pytest.raises(RpcError):
                    endpoint.request(HealthRequest(requester="victim"))
                # bounded *before* buffering the advertised payload:
                # the frame/header limit fails fast, no 128 MiB reads
                assert time.monotonic() - start < 10.0
                assert endpoint.stats.drops >= 1
                assert endpoint.stats.giveups == 1
        finally:
            evil.stop()

    def test_oversized_frame_length_is_rejected(self):
        self._assert_client_rejects(
            struct.pack(">I", MAX_FRAME_BYTES + 1))

    def test_oversized_header_length_is_rejected(self):
        # a small frame whose header-length field claims > the header
        # cap: json-decode of tens of MB must never be attempted
        payload = struct.pack(">I", MAX_HEADER_BYTES + 1) + b"abcd"
        self._assert_client_rejects(
            struct.pack(">I", len(payload)) + payload)


# ---------------------------------------------------------------------------
# resumable chunked uploads
# ---------------------------------------------------------------------------

@pytest.mark.timeout_guard(180)
class TestChunkedUpload:
    def test_chunked_upload_trains_byte_exact(self, stack):
        """A fully chunked upload is indistinguishable from the
        single-frame path: same merged dataset, same final weights."""
        shards = _make_shards(n_clients=1)
        ref_weights, ref_history, ref_accuracy = _clean_reference(shards)
        _, service, auth_addr, train_addr, train_thread = stack
        x, y = shards[0]
        result = upload_shard(auth_addr, train_addr, x, y, 2,
                              name="clinic-0", rng=random.Random(100),
                              chunk_bytes=256)
        assert result["chunks"]["sent"] == result["chunks"]["count"] >= 2
        assert result["ack"]["complete"] is True
        train_thread.call(lambda: service.wait_done(timeout=120),
                          timeout=150)
        _assert_identical_run(service, ref_weights, ref_history,
                              ref_accuracy)

    def test_dropout_resumes_at_last_acked_chunk(self, stack):
        """A client dying mid-upload and coming back resumes exactly
        past the chunks the server acked -- none are re-sent."""
        _, service, auth_addr, train_addr, _ = stack
        remote, dataset = _encrypt_one(auth_addr, _make_shards()[0])
        with remote:
            meta, fingerprint, chunks = plan_shard_chunks(
                dataset, "clinic-0", remote.wire_ctx, 128)
        count = len(chunks)
        assert count >= 4
        sent_before_drop = count // 2
        with RpcEndpoint(*train_addr, name="clinic-0",
                         peer="server") as first_try:
            for index in range(sent_before_drop):
                ack = first_try.request(ShardChunk(
                    fingerprint=fingerprint, index=index, count=count,
                    chunk=chunks[index],
                    meta=meta if index == 0 else None,
                    client_name="clinic-0"))
                assert ack.info["next_index"] == index + 1
            # the connection dies here (context exit = client dropout)
        resumed_before = GLOBAL_REGISTRY.snapshot()["counters"].get(
            "repro_upload_resumed_chunks_total", 0)
        with RpcEndpoint(*train_addr, name="clinic-0",
                         peer="server") as second_try:
            result = upload_planned_chunks(
                second_try, name="clinic-0", meta=meta,
                fingerprint=fingerprint, chunks=chunks)
        assert result["resumed_from"] == sent_before_drop
        assert result["sent"] == count - sent_before_drop
        assert result["ack"]["complete"] is True
        resumed_after = GLOBAL_REGISTRY.snapshot()["counters"].get(
            "repro_upload_resumed_chunks_total", 0)
        assert resumed_after - resumed_before == sent_before_drop
        assert [name for name, _ in service._shards] == ["clinic-0"]

    def test_duplicate_chunked_upload_is_acknowledged_not_retrained(
            self, stack):
        _, service, auth_addr, train_addr, train_thread = stack
        remote, dataset = _encrypt_one(auth_addr, _make_shards()[0])
        with remote:
            meta, fingerprint, chunks = plan_shard_chunks(
                dataset, "clinic-0", remote.wire_ctx, 256)
        with RpcEndpoint(*train_addr, name="clinic-0",
                         peer="server") as server:
            first = upload_planned_chunks(
                server, name="clinic-0", meta=meta,
                fingerprint=fingerprint, chunks=chunks)
            assert first["sent"] == len(chunks)
            # training may already be running; the duplicate must be
            # acknowledged from the fingerprint record without a single
            # chunk crossing the wire again
            again = upload_planned_chunks(
                server, name="clinic-0", meta=meta,
                fingerprint=fingerprint, chunks=chunks)
        assert again["sent"] == 0
        assert again["ack"]["duplicate"] is True
        train_thread.call(lambda: service.wait_done(timeout=120),
                          timeout=150)
        assert service.state == "done", service.error

    def test_fingerprint_mismatch_rejects_assembly(self, stack):
        _, service, auth_addr, train_addr, _ = stack
        remote, dataset = _encrypt_one(auth_addr, _make_shards()[0])
        with remote:
            meta, fingerprint, chunks = plan_shard_chunks(
                dataset, "clinic-0", remote.wire_ctx, 1 << 20)
        forged = "0" * len(fingerprint)
        with RpcEndpoint(*train_addr, name="clinic-0", peer="server",
                         policy=RetryPolicy(max_attempts=1)) as server:
            with pytest.raises(RpcRemoteError) as err:
                upload_planned_chunks(
                    server, name="clinic-0", meta=meta,
                    fingerprint=forged, chunks=chunks)
            assert "fingerprint" in str(err.value)
            # the poisoned assembly was dropped; the honest upload works
            result = upload_planned_chunks(
                server, name="clinic-0", meta=meta,
                fingerprint=fingerprint, chunks=chunks)
        assert result["ack"]["complete"] is True

    def test_mid_stream_chunk_without_assembly_is_rejected(self, stack):
        _, _, _, train_addr, _ = stack
        with RpcEndpoint(*train_addr, name="clinic-9", peer="server",
                         policy=RetryPolicy(max_attempts=1)) as server:
            with pytest.raises(RpcRemoteError) as err:
                server.request(ShardChunk(
                    fingerprint="ab" * 32, index=3, count=8,
                    chunk=b"x" * 64, client_name="clinic-9"))
        assert "restart from chunk 0" in str(err.value)

    def test_resume_query_for_unknown_upload_starts_from_zero(self, stack):
        _, _, _, train_addr, _ = stack
        with RpcEndpoint(*train_addr, name="clinic-9",
                         peer="server") as server:
            ack = server.request(ShardResumeQuery(
                fingerprint="cd" * 32, count=4, client_name="clinic-9"))
        assert isinstance(ack, Ack)
        assert ack.info == {"accepted": False, "next_index": 0,
                            "received": 0}


# ---------------------------------------------------------------------------
# quorum / deadline straggler policy
# ---------------------------------------------------------------------------

@pytest.mark.timeout_guard(240)
class TestQuorumPolicy:
    def test_quorum_start_with_straggler_rejection(self):
        """3 expected, quorum 2: once the upload deadline passes, the
        run starts with the two landed shards (byte-exact against a
        2-shard reference) and the straggler gets a clear rejection."""
        shards = _make_shards(n_clients=3)
        ref_weights, ref_history, ref_accuracy = _clean_reference(
            shards[:2])
        authority = TrustedAuthority(CryptoNNConfig(),
                                     rng=random.Random(SEED))
        auth_thread = ServiceThread(AuthorityService(authority))
        auth_addr = auth_thread.start()
        service = TrainingService(
            *auth_addr, expected_clients=3, quorum=2, upload_deadline=1.0,
            hidden=HIDDEN, epochs=EPOCHS, batch_size=BATCH_SIZE,
            learning_rate=LR, seed=SEED)
        train_thread = ServiceThread(service)
        train_addr = train_thread.start()
        try:
            for i in (0, 1):
                x, y = shards[i]
                upload_shard(auth_addr, train_addr, x, y, 2,
                             name=f"clinic-{i}", rng=random.Random(100 + i))
            assert service.state == "waiting"  # quorum alone is not enough
            deadline = time.monotonic() + 30
            while service.state == "waiting" and time.monotonic() < deadline:
                time.sleep(0.05)
            assert service.state != "waiting", \
                "deadline never started the quorum run"
            x, y = shards[2]
            with pytest.raises(RpcRemoteError) as err:
                upload_shard(auth_addr, train_addr, x, y, 2,
                             name="clinic-2", rng=random.Random(102),
                             policy=RetryPolicy(max_attempts=1))
            assert "deadline" in str(err.value)
            assert "resubmit" in str(err.value)
            train_thread.call(lambda: service.wait_done(timeout=180),
                              timeout=200)
            _assert_identical_run(service, ref_weights, ref_history,
                                  ref_accuracy)
            counters = GLOBAL_REGISTRY.snapshot()["counters"]
            assert counters.get("repro_upload_stragglers_total", 0) >= 1
        finally:
            train_thread.stop()
            auth_thread.stop()

    def test_quorum_requires_deadline(self):
        with pytest.raises(ValueError):
            TrainingService("127.0.0.1", 1, expected_clients=3, quorum=2)
        with pytest.raises(ValueError):
            TrainingService("127.0.0.1", 1, expected_clients=2, quorum=0,
                            upload_deadline=1.0)


# ---------------------------------------------------------------------------
# chunked uploads through chaos: still byte-exact
# ---------------------------------------------------------------------------

@pytest.mark.timeout_guard(300)
class TestChunkedThroughChaos:
    def test_chunked_upload_through_chaos_proxy_is_byte_exact(self):
        """Chunk frames dropped/reset by a chaos proxy between client
        and training server are retried and deduplicated; with the full
        quorum eventually landing, training matches the clean run
        byte-for-byte."""
        shards = _make_shards(n_clients=2)
        ref_weights, ref_history, ref_accuracy = _clean_reference(shards)
        authority = TrustedAuthority(CryptoNNConfig(),
                                     rng=random.Random(SEED))
        auth_thread = ServiceThread(AuthorityService(authority))
        auth_addr = auth_thread.start()
        service = TrainingService(
            *auth_addr, expected_clients=2, hidden=HIDDEN, epochs=EPOCHS,
            batch_size=BATCH_SIZE, learning_rate=LR, seed=SEED)
        train_thread = ServiceThread(service)
        train_addr = train_thread.start()
        proxy = ChaosProxy(*train_addr, seed=11,
                           config=ChaosConfig(reset_before=0.1,
                                              reset_after=0.1))
        proxy_thread = ServiceThread(proxy)
        proxy_addr = proxy_thread.start()
        try:
            results = []
            for i, (x, y) in enumerate(shards):
                results.append(upload_shard(
                    auth_addr, proxy_addr, x, y, 2, name=f"clinic-{i}",
                    rng=random.Random(100 + i), chunk_bytes=256,
                    policy=RetryPolicy(max_attempts=8, base_delay=0.01,
                                       max_delay=0.1)))
            for result in results:
                assert result["ack"]["complete"] is True
            assert proxy.fault_summary()["drops"] > 0, \
                "chaos never actually fired"
            train_thread.call(lambda: service.wait_done(timeout=240),
                              timeout=260)
            _assert_identical_run(service, ref_weights, ref_history,
                                  ref_accuracy)
        finally:
            proxy_thread.stop()
            train_thread.stop()
            auth_thread.stop()
