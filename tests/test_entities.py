"""Tests for the authority / client entities."""

import random

import numpy as np
import pytest

from repro.core import protocol
from repro.core.config import CryptoNNConfig
from repro.core.entities import Client, Server, TrustedAuthority
from repro.data.preprocess import LabelMapper
from repro.fe.errors import UnsupportedOperationError


@pytest.fixture()
def authority():
    return TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))


class TestAuthority:
    def test_feip_public_key_cached_per_eta(self, authority):
        a = authority.feip_public_key(5)
        b = authority.feip_public_key(5)
        c = authority.feip_public_key(7)
        assert a is b
        assert c.eta == 7

    def test_derive_feip_keys_counts_and_traffic(self, authority):
        before = authority.feip_keys_issued
        keys = authority.derive_feip_keys([[1, 2], [3, 4], [5, 6]])
        assert len(keys) == 3
        assert authority.feip_keys_issued == before + 3
        assert authority.traffic.total_bytes(
            kind=protocol.KIND_FEIP_KEY_REQUEST) > 0
        assert authority.traffic.total_bytes(
            kind=protocol.KIND_FEIP_KEY_RESPONSE) > 0

    def test_derive_feip_keys_ragged_rows_rejected(self, authority):
        with pytest.raises(ValueError):
            authority.derive_feip_keys([[1, 2], [3]])

    def test_derive_feip_keys_empty(self, authority):
        assert authority.derive_feip_keys([]) == []

    def test_permitted_ops_enforced(self):
        authority = TrustedAuthority(
            CryptoNNConfig(), rng=random.Random(0),
            permitted_ops=frozenset("+-"),
        )
        client = Client(authority)
        ct = authority.febo.encrypt(authority.febo_public_key(), 5)
        with pytest.raises(UnsupportedOperationError):
            authority.derive_febo_keys([(ct.cmt, "*", 2)])

    def test_derive_febo_keys_work(self, authority):
        bpk = authority.febo_public_key()
        ct = authority.febo.encrypt(bpk, 5)
        keys = authority.derive_febo_keys([(ct.cmt, "+", 2), (ct.cmt, "*", 3)])
        assert len(keys) == 2
        assert authority.febo_keys_issued == 2


class TestClient:
    def test_encrypt_tabular_structure(self, authority):
        client = Client(authority)
        x = np.random.default_rng(0).uniform(-1, 1, size=(4, 3))
        y = np.array([0, 1, 1, 0])
        enc = client.encrypt_tabular(x, y, num_classes=2)
        assert len(enc) == 4
        assert enc.n_features == 3
        assert enc.samples[0].n_features == 3
        assert enc.labels[0].num_classes == 2
        assert enc.eval_labels.tolist() == y.tolist()

    def test_encrypt_tabular_range_check(self, authority):
        client = Client(authority)
        x = np.full((2, 2), 5.0)  # exceeds max_abs_feature
        with pytest.raises(ValueError, match="max_abs_feature"):
            client.encrypt_tabular(x, np.array([0, 1]), 2)

    def test_encrypt_tabular_rejects_3d(self, authority):
        client = Client(authority)
        with pytest.raises(ValueError):
            client.encrypt_tabular(np.zeros((2, 2, 2)), np.zeros(2), 2)

    def test_label_mapper_applied(self, authority):
        rng = np.random.default_rng(5)
        mapper = LabelMapper(4, rng)
        client = Client(authority, label_mapper=mapper)
        x = np.zeros((4, 2))
        y = np.array([0, 1, 2, 3])
        enc = client.encrypt_tabular(x, y, num_classes=4)
        assert enc.eval_labels.tolist() == mapper.map_labels(y).tolist()

    def test_encrypt_images_structure(self, authority):
        client = Client(authority)
        imgs = np.random.default_rng(1).uniform(0, 1, size=(2, 1, 5, 5))
        labels = np.array([3, 7])
        enc = client.encrypt_images(imgs, labels, num_classes=10,
                                    filter_size=3, stride=2, padding=1)
        assert len(enc) == 2
        assert enc.images[0].windows.out_shape == (3, 3)  # paper Fig.2 geometry
        assert enc.images[0].pixels_bo.shape == (1, 5, 5)
        assert enc.filter_size == 3

    def test_encrypt_images_rejects_bad_shape(self, authority):
        client = Client(authority)
        with pytest.raises(ValueError):
            client.encrypt_images(np.zeros((2, 5, 5)), np.zeros(2), 10, 3)

    def test_upload_traffic_recorded(self, authority):
        client = Client(authority)
        x = np.random.default_rng(0).uniform(-1, 1, size=(3, 2))
        client.encrypt_tabular(x, np.array([0, 1, 0]), 2)
        assert authority.traffic.total_bytes(
            kind=protocol.KIND_ENCRYPTED_DATA) > 0


class TestServer:
    def test_counters_require_trainer(self, authority):
        server = Server(authority)
        with pytest.raises(RuntimeError):
            _ = server.counters
