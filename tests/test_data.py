"""Tests for the data substrate: synthetic digits, tabular, pre-processing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.datasets import Dataset, train_test_split
from repro.data.preprocess import LabelMapper, flatten_images, one_hot
from repro.data.synth_digits import (
    GLYPH_HEIGHT,
    glyph_bitmap,
    load_synth_digits,
    render_digit,
)
from repro.data.tabular import load_clinics, merge_shards


class TestGlyphs:
    def test_all_digits_have_glyphs(self):
        for d in range(10):
            bitmap = glyph_bitmap(d)
            assert bitmap.shape == (7, 5)
            assert bitmap.sum() > 0

    def test_glyphs_are_distinct(self):
        bitmaps = [glyph_bitmap(d).tobytes() for d in range(10)]
        assert len(set(bitmaps)) == 10

    def test_invalid_digit(self):
        with pytest.raises(ValueError):
            glyph_bitmap(10)


class TestRenderDigit:
    def test_range_and_shape(self, np_rng):
        img = render_digit(3, canvas=8, rng=np_rng)
        assert img.shape == (8, 8)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_canvas_too_small(self, np_rng):
        with pytest.raises(ValueError):
            render_digit(0, canvas=GLYPH_HEIGHT - 1, rng=np_rng)

    def test_noise_free_render_is_deterministic_per_seed(self):
        a = render_digit(5, rng=np.random.default_rng(7))
        b = render_digit(5, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_randomized_renders_differ(self, np_rng):
        a = render_digit(5, rng=np_rng)
        b = render_digit(5, rng=np_rng)
        assert not np.array_equal(a, b)

    @settings(max_examples=20, deadline=None)
    @given(digit=st.integers(0, 9), canvas=st.sampled_from([8, 12, 16, 28]))
    def test_any_canvas(self, digit, canvas):
        img = render_digit(digit, canvas=canvas,
                           rng=np.random.default_rng(0))
        assert img.shape == (canvas, canvas)


class TestLoadSynthDigits:
    def test_shapes_and_classes(self):
        train, test = load_synth_digits(n_train=100, n_test=20, seed=0)
        assert train.x.shape == (100, 1, 8, 8)
        assert test.x.shape == (20, 1, 8, 8)
        assert train.num_classes == 10
        assert set(np.unique(train.y)).issubset(set(range(10)))

    def test_seed_reproducibility(self):
        a, _ = load_synth_digits(n_train=50, n_test=5, seed=3)
        b, _ = load_synth_digits(n_train=50, n_test=5, seed=3)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)


class TestDataset:
    def test_len_and_subset(self, np_rng):
        ds = Dataset(x=np.arange(20).reshape(10, 2).astype(float),
                     y=np.arange(10), num_classes=10)
        sub = ds.subset(np.array([1, 3]))
        assert len(sub) == 2
        assert sub.y.tolist() == [1, 3]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Dataset(x=np.zeros((3, 2)), y=np.zeros(4), num_classes=2)

    def test_shards_partition(self):
        ds = Dataset(x=np.zeros((10, 1)), y=np.arange(10), num_classes=10)
        shards = ds.shards(3)
        assert sum(len(s) for s in shards) == 10
        assert sorted(np.concatenate([s.y for s in shards]).tolist()) == list(range(10))

    def test_train_test_split_disjoint(self, np_rng):
        ds = Dataset(x=np.arange(40).reshape(20, 2).astype(float),
                     y=np.arange(20), num_classes=20)
        train, test = train_test_split(ds, 0.25, np_rng)
        assert len(train) == 15 and len(test) == 5
        assert set(train.y) | set(test.y) == set(range(20))
        assert set(train.y) & set(test.y) == set()

    def test_split_fraction_validation(self, np_rng):
        ds = Dataset(x=np.zeros((4, 1)), y=np.zeros(4), num_classes=1)
        with pytest.raises(ValueError):
            train_test_split(ds, 1.5, np_rng)


class TestPreprocess:
    def test_one_hot(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_flatten_images(self, np_rng):
        imgs = np_rng.normal(size=(4, 1, 3, 3))
        flat = flatten_images(imgs)
        assert flat.shape == (4, 9)

    def test_label_mapper_roundtrip(self, np_rng):
        mapper = LabelMapper(10, np_rng)
        labels = np.arange(10)
        np.testing.assert_array_equal(
            mapper.unmap_labels(mapper.map_labels(labels)), labels
        )

    def test_label_mapper_is_permutation(self, np_rng):
        mapper = LabelMapper(10, np_rng)
        assert sorted(mapper.permutation.tolist()) == list(range(10))

    def test_unmap_probabilities(self, np_rng):
        mapper = LabelMapper(4, np_rng)
        probs = np.eye(4)
        unmapped = mapper.unmap_probabilities(probs)
        # row i should now have its mass on logical class i
        labels = np.arange(4)
        wire = mapper.map_labels(labels)
        np.testing.assert_array_equal(unmapped[labels, labels],
                                      probs[labels, wire])

    def test_mapper_needs_two_classes(self):
        with pytest.raises(ValueError):
            LabelMapper(1)


class TestClinics:
    def test_shard_shapes(self):
        shards = load_clinics(n_clinics=3, samples_per_clinic=50,
                              n_features=6, seed=0)
        assert len(shards) == 3
        for shard in shards:
            assert shard.x.shape == (50, 6)
            assert set(np.unique(shard.y)).issubset({0, 1})

    def test_classes_separable(self):
        shards = load_clinics(n_clinics=1, samples_per_clinic=400,
                              class_separation=4.0, seed=1)
        ds = shards[0]
        mean_pos = ds.x[ds.y == 1].mean(axis=0)
        mean_neg = ds.x[ds.y == 0].mean(axis=0)
        assert np.linalg.norm(mean_pos - mean_neg) > 2.0

    def test_merge_shards(self):
        shards = load_clinics(n_clinics=2, samples_per_clinic=10, seed=0)
        merged = merge_shards(shards)
        assert len(merged) == 20

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_shards([])
