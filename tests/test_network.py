"""Tests for the simulated network channel."""

import random

import pytest

from repro.core.config import CryptoNNConfig
from repro.core.entities import TrustedAuthority
from repro.core.network import (
    ChannelError,
    LatencyModel,
    NetworkedAuthority,
    SimulatedChannel,
)
from repro.rpc.retry import STAT_KEYS, RetryPolicy, merge_stats


class TestLatencyModel:
    def test_base_only(self):
        model = LatencyModel(base_s=0.5)
        assert model.sample(random.Random(0), 1000) == 0.5

    def test_jitter_bounded(self):
        model = LatencyModel(base_s=0.1, jitter_s=0.2)
        rng = random.Random(1)
        for _ in range(50):
            latency = model.sample(rng, 0)
            assert 0.1 <= latency <= 0.3

    def test_bandwidth_term(self):
        model = LatencyModel(base_s=0.0, bandwidth_bytes_per_s=1000.0)
        assert model.sample(random.Random(0), 500) == pytest.approx(0.5)


class TestSimulatedChannel:
    def test_reliable_delivery(self):
        channel = SimulatedChannel(latency=LatencyModel(base_s=0.01),
                                   rng=random.Random(0))
        assert channel.send(100, lambda: "payload") == "payload"
        assert channel.clock_s == pytest.approx(0.01)
        assert channel.messages_sent == 1

    def test_drops_then_retries(self):
        channel = SimulatedChannel(drop_probability=0.5, max_retries=20,
                                   rng=random.Random(3))
        result = channel.send(10, lambda: 42)
        assert result == 42
        assert channel.messages_dropped >= 0
        assert channel.messages_sent == channel.messages_dropped + 1

    def test_total_loss_raises(self):
        # deterministic worst case: everything drops
        channel = SimulatedChannel(drop_probability=0.999, max_retries=2,
                                   rng=random.Random(0))
        with pytest.raises(ChannelError):
            channel.send(10, lambda: None)

    def test_invalid_drop_probability(self):
        with pytest.raises(ValueError):
            SimulatedChannel(drop_probability=1.0)

    def test_round_trip_advances_clock_twice(self):
        channel = SimulatedChannel(latency=LatencyModel(base_s=1.0),
                                   rng=random.Random(0))
        channel.round_trip(10, 10, lambda: None)
        assert channel.clock_s == pytest.approx(2.0)


class TestChannelRetryUnification:
    """The simulated channel speaks the runtime's shared retry
    vocabulary (repro.rpc.retry) so simulated and real transport
    weather compose into one report."""

    def test_stats_speak_the_shared_vocabulary(self):
        channel = SimulatedChannel(drop_probability=0.5, max_retries=20,
                                   rng=random.Random(3))
        channel.send(10, lambda: None)
        stats = channel.stats
        assert tuple(stats) == STAT_KEYS
        assert stats["attempts"] == channel.messages_sent
        assert stats["drops"] == channel.messages_dropped
        assert stats["retries"] == channel.messages_sent - 1
        assert stats["timeouts"] == 0 and stats["reconnects"] == 0
        assert stats["giveups"] == 0

    def test_policy_governs_attempt_budget(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=False)
        channel = SimulatedChannel(drop_probability=0.999, policy=policy,
                                   rng=random.Random(0))
        assert channel.max_retries == 1  # policy wins over the default 3
        with pytest.raises(ChannelError):
            channel.send(10, lambda: None)
        assert channel.stats["attempts"] == 2
        assert channel.stats["giveups"] == 1

    def test_policy_backoff_charged_to_simulated_clock(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0,
                             jitter=False)
        # zero latency isolates the backoff term: 3 resends charge
        # 0.1 + 0.2 + 0.4 simulated seconds
        channel = SimulatedChannel(latency=LatencyModel(base_s=0.0),
                                   drop_probability=0.999, policy=policy,
                                   rng=random.Random(0))
        with pytest.raises(ChannelError):
            channel.send(10, lambda: None)
        assert channel.clock_s == pytest.approx(0.7)

    def test_no_policy_leaves_rng_stream_and_clock_unchanged(self):
        """Back-compat: without a policy the channel must consume the
        same rng draws and charge the same clock as before the
        unification."""
        kwargs = dict(latency=LatencyModel(base_s=0.01),
                      drop_probability=0.5, max_retries=20)
        before = SimulatedChannel(rng=random.Random(3), **kwargs)
        after = SimulatedChannel(rng=random.Random(3), **kwargs)
        assert before.send(10, lambda: 1) == after.send(10, lambda: 1)
        assert before.clock_s == after.clock_s
        assert before.messages_dropped == after.messages_dropped

    def test_simulated_stats_merge_with_endpoint_snapshots(self):
        channel = SimulatedChannel(drop_probability=0.5, max_retries=20,
                                   rng=random.Random(3))
        channel.send(10, lambda: None)
        endpoint_style = {"attempts": 5, "retries": 1, "drops": 1,
                          "timeouts": 1, "reconnects": 1, "giveups": 0}
        merged = merge_stats(channel.stats, endpoint_style)
        assert merged["attempts"] == channel.messages_sent + 5
        assert merged["timeouts"] == 1
        assert tuple(merged) == STAT_KEYS


class TestNetworkedAuthority:
    def test_key_requests_cost_simulated_time(self):
        authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))
        channel = SimulatedChannel(latency=LatencyModel(base_s=0.05),
                                   rng=random.Random(1))
        networked = NetworkedAuthority(authority, channel)
        keys = networked.derive_feip_keys([[1, 2, 3], [4, 5, 6]])
        assert len(keys) == 2
        assert networked.simulated_seconds == pytest.approx(0.1)

    def test_febo_requests_also_costed(self):
        authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))
        bpk = authority.febo_public_key()
        ct = authority.febo.encrypt(bpk, 5)
        channel = SimulatedChannel(latency=LatencyModel(base_s=0.01),
                                   rng=random.Random(1))
        networked = NetworkedAuthority(authority, channel)
        keys = networked.derive_febo_keys([(ct.cmt, "+", 3)])
        assert len(keys) == 1
        assert networked.simulated_seconds > 0
