"""Tests for the utility modules."""

import logging
import time

import pytest

from repro.utils.logging import enable_console_logging, get_logger
from repro.utils.rng import make_np_rng, make_rng, spawn_rngs
from repro.utils.timer import Stopwatch, time_call


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.elapsed
        with sw:
            time.sleep(0.01)
        assert sw.elapsed > first

    def test_double_start_rejected(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0

    def test_time_call(self):
        seconds, result = time_call(lambda a, b: a + b, 2, b=3)
        assert result == 5
        assert seconds >= 0.0


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_make_np_rng(self):
        assert make_np_rng(5).random() == make_np_rng(5).random()

    def test_spawn_rngs_independent_and_reproducible(self):
        a = spawn_rngs(1, 3)
        b = spawn_rngs(1, 3)
        assert len(a) == 3
        assert [r.random() for r in a] == [r.random() for r in b]
        assert a[0].random() != a[1].random()


class TestLogging:
    def test_get_logger_namespaced(self):
        logger = get_logger("fe")
        assert logger.name == "repro.fe"
        already = get_logger("repro.matrix")
        assert already.name == "repro.matrix"

    def test_enable_console_logging_idempotent(self):
        enable_console_logging(logging.DEBUG)
        handlers_before = len(logging.getLogger("repro").handlers)
        enable_console_logging(logging.INFO)
        assert len(logging.getLogger("repro").handlers) == handlers_before
