"""Unit tests for repro.mathutils.primes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mathutils.primes import gen_prime, gen_safe_prime, is_probable_prime

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 104729, 2147483647, 67280421310721]
KNOWN_COMPOSITES = [0, 1, 4, 9, 100, 104730, 2147483647 * 3,
                    561, 41041, 825265]  # includes Carmichael numbers


@pytest.mark.parametrize("n", KNOWN_PRIMES)
def test_known_primes_pass(n):
    assert is_probable_prime(n)


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites_fail(n):
    assert not is_probable_prime(n)


def test_negative_numbers_are_not_prime():
    assert not is_probable_prime(-7)


def test_gen_prime_bits_and_primality():
    rng = random.Random(1)
    for bits in (8, 16, 32, 64):
        p = gen_prime(bits, rng=rng)
        assert p.bit_length() == bits
        assert is_probable_prime(p)


def test_gen_prime_rejects_tiny_bits():
    with pytest.raises(ValueError):
        gen_prime(1)


def test_gen_safe_prime_structure():
    rng = random.Random(2)
    p, q = gen_safe_prime(24, rng=rng)
    assert p == 2 * q + 1
    assert is_probable_prime(p)
    assert is_probable_prime(q)
    assert p.bit_length() == 24


def test_gen_safe_prime_rejects_tiny_bits():
    with pytest.raises(ValueError):
        gen_safe_prime(3)


def test_gen_prime_deterministic_with_seeded_rng():
    assert gen_prime(24, rng=random.Random(7)) == gen_prime(24, rng=random.Random(7))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=5000))
def test_matches_trial_division(n):
    def trial(n):
        if n < 2:
            return False
        return all(n % d for d in range(2, int(n ** 0.5) + 1))
    assert is_probable_prime(n) == trial(n)
