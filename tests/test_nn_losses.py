"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn.activations import softmax
from repro.nn.gradcheck import check_loss_grad
from repro.nn.losses import MSELoss, SoftmaxCrossEntropyLoss


class TestMSE:
    def test_perfect_prediction_zero_loss(self):
        y = np.random.default_rng(0).normal(size=(4, 3))
        assert MSELoss().forward(y.copy(), y) == 0.0

    def test_known_value(self):
        loss = MSELoss()
        value = loss.forward(np.array([[1.0, 0.0]]), np.array([[0.0, 0.0]]))
        assert value == pytest.approx(0.5)

    def test_gradient_matches_numeric(self, np_rng):
        loss = MSELoss()
        err = check_loss_grad(loss, np_rng.normal(size=(5, 3)),
                              np_rng.normal(size=(5, 3)))
        assert err < 1e-7

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.ones((2, 2)), np.ones((2, 3)))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            MSELoss().backward()


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_log_c(self):
        loss = SoftmaxCrossEntropyLoss()
        logits = np.zeros((2, 4))
        targets = np.eye(4)[:2]
        assert loss.forward(logits, targets) == pytest.approx(np.log(4))

    def test_confident_correct_low_loss(self):
        loss = SoftmaxCrossEntropyLoss()
        logits = np.array([[100.0, 0.0]])
        targets = np.array([[1.0, 0.0]])
        assert loss.forward(logits, targets) == pytest.approx(0.0, abs=1e-6)

    def test_gradient_is_p_minus_y_over_n(self, np_rng):
        loss = SoftmaxCrossEntropyLoss()
        logits = np_rng.normal(size=(6, 4))
        targets = np.eye(4)[np_rng.integers(0, 4, 6)]
        loss.forward(logits, targets)
        expected = (softmax(logits, axis=1) - targets) / 6
        np.testing.assert_allclose(loss.backward(), expected)

    def test_gradient_matches_numeric(self, np_rng):
        loss = SoftmaxCrossEntropyLoss()
        logits = np_rng.normal(size=(4, 3))
        targets = np.eye(3)[np_rng.integers(0, 3, 4)]
        assert check_loss_grad(loss, logits, targets) < 1e-7

    def test_probabilities_property(self, np_rng):
        loss = SoftmaxCrossEntropyLoss()
        logits = np_rng.normal(size=(3, 5))
        loss.forward(logits, np.eye(5)[:3])
        np.testing.assert_allclose(loss.probabilities.sum(axis=1), np.ones(3))

    def test_probabilities_before_forward(self):
        with pytest.raises(RuntimeError):
            _ = SoftmaxCrossEntropyLoss().probabilities
