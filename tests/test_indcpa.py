"""Tests for the IND-CPA game harness."""

import random

import pytest

from repro.security.indcpa import (
    DeterministicFeboAdapter,
    FeboIndCpaAdapter,
    FeipIndCpaAdapter,
    replay_distinguisher,
    run_indcpa_game,
)


class TestGameMechanics:
    def test_identical_messages_rejected(self, params):
        adapter = FeboIndCpaAdapter(params, rng=random.Random(0))
        with pytest.raises(ValueError):
            run_indcpa_game(adapter, m0=5, m1=5)

    def test_advantage_in_unit_interval(self, params):
        adapter = FeboIndCpaAdapter(params, rng=random.Random(0))
        adv = run_indcpa_game(adapter, trials=50, rng=random.Random(1))
        assert 0.0 <= adv <= 1.0


class TestSecureSchemesResistReplay:
    def test_febo_replay_advantage_negligible(self, params):
        adapter = FeboIndCpaAdapter(params, rng=random.Random(0))
        adv = run_indcpa_game(adapter, trials=400, rng=random.Random(1))
        # a fair coin over 400 trials stays within ~0.15 with high prob.
        assert adv < 0.2

    def test_feip_replay_advantage_negligible(self, params):
        adapter = FeipIndCpaAdapter(params, rng=random.Random(0))
        adv = run_indcpa_game(adapter, trials=400, rng=random.Random(2))
        assert adv < 0.2


class TestBrokenSchemeLoses:
    def test_deterministic_febo_fully_broken(self, params):
        """With the nonce fixed, the replay adversary wins every trial --
        exactly why Encrypt must draw fresh randomness."""
        adapter = DeterministicFeboAdapter(params, rng=random.Random(0))
        adv = run_indcpa_game(adapter, trials=100, rng=random.Random(3))
        assert adv == 1.0

    def test_deterministic_ciphertexts_repeat(self, params):
        adapter = DeterministicFeboAdapter(params, rng=random.Random(0))
        pk = adapter.keygen()
        assert adapter.encrypt(pk, 9) == adapter.encrypt(pk, 9)

    def test_replay_distinguisher_blind_on_secure_scheme(self, params):
        adapter = FeboIndCpaAdapter(params, rng=random.Random(0))
        pk = adapter.keygen()
        challenge = adapter.encrypt(pk, 3)
        # fresh randomness means re-encryption almost surely differs
        guess = replay_distinguisher(adapter, pk, challenge, 3, 17)
        assert guess in (0, 1)
