"""Unit + property tests for the FEIP inner-product scheme."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fe.errors import CiphertextError, FunctionKeyError
from repro.fe.feip import Feip
from repro.mathutils.dlog import DiscreteLogError
from repro.mathutils.group import GroupParams

small_ints = st.integers(min_value=-50, max_value=50)


class TestSetup:
    def test_key_lengths(self, feip):
        mpk, msk = feip.setup(4)
        assert mpk.eta == msk.eta == 4
        assert all(feip.group.contains(h) for h in mpk.h)

    def test_rejects_zero_length(self, feip):
        with pytest.raises(ValueError):
            feip.setup(0)

    def test_public_key_matches_master(self, feip):
        mpk, msk = feip.setup(3)
        assert all(feip.group.gexp(s) == h for s, h in zip(msk.s, mpk.h))


class TestCorrectness:
    def test_basic_inner_product(self, feip):
        mpk, msk = feip.setup(3)
        ct = feip.encrypt(mpk, [1, 2, 3])
        key = feip.key_derive(msk, [4, 5, 6])
        assert feip.decrypt(mpk, ct, key, bound=100) == 32

    def test_negative_entries(self, feip):
        mpk, msk = feip.setup(2)
        ct = feip.encrypt(mpk, [-7, 3])
        key = feip.key_derive(msk, [2, -5])
        assert feip.decrypt(mpk, ct, key, bound=100) == -29

    def test_zero_vector(self, feip):
        mpk, msk = feip.setup(2)
        ct = feip.encrypt(mpk, [0, 0])
        key = feip.key_derive(msk, [9, 9])
        assert feip.decrypt(mpk, ct, key, bound=10) == 0

    def test_length_one_vectors(self, feip):
        mpk, msk = feip.setup(1)
        ct = feip.encrypt(mpk, [13])
        key = feip.key_derive(msk, [-3])
        assert feip.decrypt(mpk, ct, key, bound=50) == -39

    @settings(max_examples=40, deadline=None)
    @given(x=st.lists(small_ints, min_size=1, max_size=8),
           data=st.data())
    def test_property_random_vectors(self, params, solver_cache, x, data):
        y = data.draw(st.lists(small_ints, min_size=len(x), max_size=len(x)))
        feip = Feip(params, rng=random.Random(0), solver_cache=solver_cache)
        mpk, msk = feip.setup(len(x))
        ct = feip.encrypt(mpk, x)
        key = feip.key_derive(msk, y)
        expected = sum(a * b for a, b in zip(x, y))
        bound = 50 * 50 * len(x) + 1
        assert feip.decrypt(mpk, ct, key, bound=bound) == expected


class TestFailureModes:
    def test_encrypt_length_mismatch(self, feip):
        mpk, _ = feip.setup(3)
        with pytest.raises(CiphertextError):
            feip.encrypt(mpk, [1, 2])

    def test_key_derive_length_mismatch(self, feip):
        _, msk = feip.setup(3)
        with pytest.raises(FunctionKeyError):
            feip.key_derive(msk, [1, 2, 3, 4])

    def test_decrypt_with_wrong_keypair_raises_dlog_error(self, feip):
        mpk_a, msk_a = feip.setup(2)
        mpk_b, msk_b = feip.setup(2)
        ct = feip.encrypt(mpk_a, [1, 2])
        wrong_key = feip.key_derive(msk_b, [3, 4])
        with pytest.raises(DiscreteLogError):
            feip.decrypt(mpk_a, ct, wrong_key, bound=1000)

    def test_tampered_ciphertext_detected(self, feip):
        mpk, msk = feip.setup(2)
        ct = feip.encrypt(mpk, [1, 2])
        key = feip.key_derive(msk, [3, 4])
        tampered = type(ct)(ct0=ct.ct0,
                            ct=(feip.group.mul(ct.ct[0], feip.group.gexp(99999)),
                                ct.ct[1]))
        with pytest.raises(DiscreteLogError):
            feip.decrypt(mpk, tampered, key, bound=1000)

    def test_result_outside_bound(self, feip):
        mpk, msk = feip.setup(1)
        ct = feip.encrypt(mpk, [100])
        key = feip.key_derive(msk, [100])
        with pytest.raises(DiscreteLogError):
            feip.decrypt(mpk, ct, key, bound=100)  # true value 10000


class TestDecryptRows:
    """Batched column decryption vs the per-row reference path."""

    def _setup(self, feip, rng, eta=5, m=7, magnitude=40):
        mpk, msk = feip.setup(eta)
        x = [rng.randrange(-magnitude, magnitude + 1) for _ in range(eta)]
        ct = feip.encrypt(mpk, x)
        keys = [
            feip.key_derive(
                msk, [rng.randrange(-magnitude, magnitude + 1)
                      for _ in range(eta)])
            for _ in range(m)
        ]
        bound = eta * magnitude * magnitude + 1
        return mpk, ct, keys, bound

    def test_matches_per_row_decrypt(self, feip, rng):
        mpk, ct, keys, bound = self._setup(feip, rng)
        reference = [feip.decrypt(mpk, ct, key, bound) for key in keys]
        assert feip.decrypt_rows(mpk, ct, keys, bound) == reference

    def test_matches_on_larger_group(self, solver_cache):
        import random as random_mod
        feip = Feip(GroupParams.predefined(128), rng=random_mod.Random(3),
                    solver_cache=solver_cache)
        rng = random_mod.Random(4)
        mpk, ct, keys, bound = self._setup(feip, rng, eta=4, m=12)
        reference = [feip.decrypt(mpk, ct, key, bound) for key in keys]
        assert feip.decrypt_rows(mpk, ct, keys, bound) == reference

    def test_single_row_and_empty(self, feip, rng):
        mpk, ct, keys, bound = self._setup(feip, rng, m=1)
        assert feip.decrypt_rows(mpk, ct, keys, bound) == \
            [feip.decrypt(mpk, ct, keys[0], bound)]
        assert feip.decrypt_rows(mpk, ct, [], bound) == []

    def test_out_of_bound_raises(self, feip):
        mpk, msk = feip.setup(1)
        ct = feip.encrypt(mpk, [100])
        keys = [feip.key_derive(msk, [1]), feip.key_derive(msk, [100])]
        with pytest.raises(DiscreteLogError):
            feip.decrypt_rows(mpk, ct, keys, bound=100)  # 10000 overflows

    def test_key_length_mismatch(self, feip):
        mpk, msk = feip.setup(2)
        ct = feip.encrypt(mpk, [1, 2])
        _, msk3 = feip.setup(3)
        bad = feip.key_derive(msk3, [1, 2, 3])
        with pytest.raises(CiphertextError):
            feip.decrypt_rows(mpk, ct, [bad], bound=100)


class TestSemanticBehaviour:
    def test_same_plaintext_fresh_randomness(self, feip):
        mpk, _ = feip.setup(2)
        a = feip.encrypt(mpk, [5, 5])
        b = feip.encrypt(mpk, [5, 5])
        assert a.ct0 != b.ct0
        assert a.ct != b.ct

    def test_key_is_linear_in_y(self, feip):
        """sk_{y1+y2} = sk_{y1} + sk_{y2} (mod q) -- the known FEIP
        malleability that makes authority-side policy necessary."""
        _, msk = feip.setup(2)
        k1 = feip.key_derive(msk, [1, 0])
        k2 = feip.key_derive(msk, [0, 1])
        k12 = feip.key_derive(msk, [1, 1])
        assert (k1.sk + k2.sk) % feip.group.q == k12.sk

    def test_works_on_larger_group(self, solver_cache):
        feip = Feip(GroupParams.predefined(128), rng=random.Random(5),
                    solver_cache=solver_cache)
        mpk, msk = feip.setup(4)
        ct = feip.encrypt(mpk, [10, -20, 30, -40])
        key = feip.key_derive(msk, [1, 2, 3, 4])
        assert feip.decrypt(mpk, ct, key, bound=10_000) == 10 - 40 + 90 - 160
