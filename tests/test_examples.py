"""Smoke tests for the runnable examples.

Each example is loaded from its file path (examples/ is not a package)
and the light ones are executed end to end, so the documented entry
points cannot rot silently.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

ALL_EXAMPLES = [
    "quickstart",
    "clinic_mlp",
    "crypto_cnn_digits",
    "distributed_clinics",
    "rpc_loopback",
    "secure_inference",
]


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_importable_and_has_main(name):
    module = load_example(name)
    assert callable(module.main)
    assert module.__doc__, "examples must document themselves"


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "All quickstart checks passed" in out


def test_secure_inference_runs(capsys):
    load_example("secure_inference").main()
    out = capsys.readouterr().out
    assert "encrypted queries" in out
