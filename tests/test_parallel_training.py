"""Tests for the process-parallel secure feed-forward in CryptoCNN."""

import random

import numpy as np
import pytest

from repro.core.config import CryptoNNConfig
from repro.core.cryptocnn import CryptoCNNTrainer
from repro.core.entities import Client, TrustedAuthority
from repro.data.synth_digits import load_synth_digits
from repro.nn.lenet import build_lenet_small
from repro.nn.optimizers import SGD


@pytest.fixture(scope="module")
def digits():
    train, _ = load_synth_digits(n_train=12, n_test=4, canvas=8, seed=6)
    return train


def build_setup(workers):
    config = CryptoNNConfig(workers=workers)
    authority = TrustedAuthority(config, rng=random.Random(0))
    return authority, Client(authority)


class TestParallelForward:
    def test_parallel_matches_serial_forward(self, digits):
        auth_serial, client_serial = build_setup(workers=None)
        auth_parallel, client_parallel = build_setup(workers=2)
        # same authority RNG seed -> same keys; same client encryption RNG
        enc_s = client_serial.encrypt_images(digits.x, digits.y, 10, 3, 1, 1)
        enc_p = client_parallel.encrypt_images(digits.x, digits.y, 10, 3, 1, 1)
        model_s = build_lenet_small(np.random.default_rng(0), image_size=8)
        model_p = build_lenet_small(np.random.default_rng(0), image_size=8)
        trainer_s = CryptoCNNTrainer(model_s, auth_serial)
        trainer_p = CryptoCNNTrainer(model_p, auth_parallel)
        z_s = trainer_s.secure_input.forward(enc_s.images[:4], np.arange(4),
                                             training=False)
        z_p = trainer_p.secure_input.forward(enc_p.images[:4], np.arange(4),
                                             training=False)
        np.testing.assert_allclose(z_s, z_p, atol=1e-9)

    def test_parallel_training_step_runs(self, digits):
        authority, client = build_setup(workers=2)
        enc = client.encrypt_images(digits.x, digits.y, 10, 3, 1, 1)
        model = build_lenet_small(np.random.default_rng(1), image_size=8)
        trainer = CryptoCNNTrainer(model, authority)
        hist = trainer.fit(enc, SGD(0.3), epochs=1, batch_size=6,
                           rng=np.random.default_rng(2))
        assert len(hist.batch_loss) == 2
        assert all(np.isfinite(l) for l in hist.batch_loss)

    def test_counters_count_parallel_decrypts(self, digits):
        authority, client = build_setup(workers=2)
        enc = client.encrypt_images(digits.x[:3], digits.y[:3], 10, 3, 1, 1)
        model = build_lenet_small(np.random.default_rng(1), image_size=8,
                                  conv_channels=4)
        trainer = CryptoCNNTrainer(model, authority)
        trainer.secure_input.forward(enc.images, np.arange(3), training=False)
        assert trainer.counters.feip_decrypts == 3 * 64 * 4
