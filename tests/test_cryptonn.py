"""Integration tests for the CryptoNN trainer (Algorithm 2)."""

import random

import numpy as np
import pytest

from repro.core.config import CryptoNNConfig
from repro.core.cryptonn import CryptoNNTrainer
from repro.core.entities import Client, TrustedAuthority
from repro.data.preprocess import one_hot
from repro.data.tabular import load_clinics
from repro.nn.conv import Conv2D
from repro.nn.layers import Dense, ReLU, Sigmoid
from repro.nn.losses import MSELoss, SoftmaxCrossEntropyLoss
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD


@pytest.fixture()
def authority():
    return TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))


@pytest.fixture()
def clinic_data():
    shard = load_clinics(n_clinics=1, samples_per_clinic=80, n_features=4,
                         seed=7)[0]
    x = np.clip(shard.x / (np.abs(shard.x).max() + 1e-9), -1, 1)
    return x, shard.y


def make_model(np_rng, in_features=4, hidden=6, classes=2):
    return Sequential([
        Dense(in_features, hidden, rng=np_rng),
        ReLU(),
        Dense(hidden, classes, rng=np_rng),
    ])


class TestConstruction:
    def test_requires_dense_first_layer(self, authority, np_rng):
        model = Sequential([Conv2D(1, 1, 2, rng=np_rng)])
        with pytest.raises(TypeError):
            CryptoNNTrainer(model, authority)

    def test_unknown_loss(self, authority, np_rng):
        with pytest.raises(ValueError):
            CryptoNNTrainer(make_model(np_rng), authority, loss="hinge")


class TestTrainingMatchesPlaintextTwin:
    def test_cross_entropy_twin_identical_trajectory(self, authority,
                                                     clinic_data, np_rng):
        """The headline claim: training over encrypted data produces the
        same model (up to fixed-point noise) as plaintext training."""
        x, y = clinic_data
        client = Client(authority)
        enc = client.encrypt_tabular(x, y, num_classes=2)
        model = make_model(np_rng)
        twin = make_model(np.random.default_rng(999))
        twin.set_weights(model.get_weights())
        trainer = CryptoNNTrainer(model, authority)
        hist_secure = trainer.fit(enc, SGD(0.5), epochs=2, batch_size=16,
                                  rng=np.random.default_rng(1))
        hist_plain = twin.fit(x, one_hot(y, 2), SoftmaxCrossEntropyLoss(),
                              SGD(0.5), epochs=2, batch_size=16,
                              rng=np.random.default_rng(1))
        # identical batch order + near-identical numerics -> same accuracies
        np.testing.assert_allclose(hist_secure.batch_accuracy,
                                   hist_plain.batch_accuracy, atol=0.15)
        assert trainer.evaluate(enc) == pytest.approx(
            twin.evaluate(x, one_hot(y, 2)), abs=0.1
        )

    def test_mse_training_learns(self, authority, clinic_data, np_rng):
        x, y = clinic_data
        client = Client(authority)
        enc = client.encrypt_tabular(x, y, num_classes=2)
        model = Sequential([
            Dense(4, 6, rng=np_rng), Sigmoid(),
            Dense(6, 2, rng=np_rng), Sigmoid(),
        ])
        trainer = CryptoNNTrainer(model, authority, loss="mse")
        # sigmoid + MSE needs momentum to escape its plateau quickly
        trainer.fit(enc, SGD(2.0, momentum=0.9), epochs=6, batch_size=16,
                    rng=np.random.default_rng(2))
        assert trainer.evaluate(enc) > 0.7


class TestMechanics:
    def test_history_and_max_batches(self, authority, clinic_data, np_rng):
        x, y = clinic_data
        enc = Client(authority).encrypt_tabular(x, y, num_classes=2)
        trainer = CryptoNNTrainer(make_model(np_rng), authority)
        hist = trainer.fit(enc, SGD(0.1), epochs=5, batch_size=16,
                           max_batches=3, rng=np.random.default_rng(0))
        assert len(hist.batch_loss) == 3

    def test_max_batches_leaves_rng_stream_clean(self, authority,
                                                 clinic_data, np_rng):
        """Once the cap is hit, residual epochs must not draw shuffle
        permutations (that would silently perturb the resume-critical
        RNG stream) nor record a partial epoch's mean as a full epoch."""
        x, y = clinic_data
        enc = Client(authority).encrypt_tabular(x, y, num_classes=2)
        # 80 samples / batch 16 = 5 batches per epoch; cap mid-epoch 2
        rng = np.random.default_rng(7)
        hist = CryptoNNTrainer(make_model(np_rng), authority).fit(
            enc, SGD(0.1), epochs=5, batch_size=16, max_batches=7, rng=rng)
        assert len(hist.batch_loss) == 7
        assert len(hist.epoch_loss) == 1  # epoch 1 full, epoch 2 partial
        expected = np.random.default_rng(7)
        expected.shuffle(np.arange(len(enc)))
        expected.shuffle(np.arange(len(enc)))
        assert rng.bit_generator.state == expected.bit_generator.state

    def test_max_batches_on_epoch_boundary_records_epoch(self, authority,
                                                         clinic_data,
                                                         np_rng):
        x, y = clinic_data
        enc = Client(authority).encrypt_tabular(x, y, num_classes=2)
        rng = np.random.default_rng(7)
        hist = CryptoNNTrainer(make_model(np_rng), authority).fit(
            enc, SGD(0.1), epochs=5, batch_size=16, max_batches=5, rng=rng)
        assert len(hist.batch_loss) == 5
        assert len(hist.epoch_loss) == 1  # the completed epoch counts
        expected = np.random.default_rng(7)
        expected.shuffle(np.arange(len(enc)))  # exactly ONE draw
        assert rng.bit_generator.state == expected.bit_generator.state

    def test_evaluate_rejects_empty_indices(self, authority, clinic_data,
                                            np_rng):
        x, y = clinic_data
        enc = Client(authority).encrypt_tabular(x, y, num_classes=2)
        trainer = CryptoNNTrainer(make_model(np_rng), authority)
        with pytest.raises(ValueError, match="at least one"):
            trainer.evaluate(enc, indices=np.array([], dtype=np.int64))

    def test_counters_accumulate(self, authority, clinic_data, np_rng):
        x, y = clinic_data
        enc = Client(authority).encrypt_tabular(x, y, num_classes=2)
        trainer = CryptoNNTrainer(make_model(np_rng), authority)
        trainer.fit(enc, SGD(0.1), epochs=1, batch_size=20, max_batches=1,
                    rng=np.random.default_rng(0))
        snap = trainer.counters.snapshot()
        assert snap["feip_decrypts"] == 20 * 6 + 20   # dot products + losses
        assert snap["febo_decrypts"] == 20 * 2 + 20 * 4  # P-Y + reconstruction

    def test_predict_returns_probabilities(self, authority, clinic_data,
                                           np_rng):
        x, y = clinic_data
        enc = Client(authority).encrypt_tabular(x, y, num_classes=2)
        trainer = CryptoNNTrainer(make_model(np_rng), authority)
        probs = trainer.predict(enc, np.arange(5))
        assert probs.shape == (5, 2)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))

    def test_on_batch_callback(self, authority, clinic_data, np_rng):
        x, y = clinic_data
        enc = Client(authority).encrypt_tabular(x, y, num_classes=2)
        trainer = CryptoNNTrainer(make_model(np_rng), authority)
        seen = []
        trainer.fit(enc, SGD(0.1), epochs=1, batch_size=40,
                    rng=np.random.default_rng(0),
                    on_batch=lambda i, l, a: seen.append(i))
        assert seen == [0, 1]

    def test_evaluate_requires_eval_labels(self, authority, clinic_data,
                                           np_rng):
        x, y = clinic_data
        enc = Client(authority).encrypt_tabular(x, y, num_classes=2)
        enc.eval_labels = None
        trainer = CryptoNNTrainer(make_model(np_rng), authority)
        with pytest.raises(ValueError):
            trainer.evaluate(enc)
