"""Tests for the Pollard kangaroo discrete-log solver."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mathutils.dlog import DiscreteLogError, DlogSolver
from repro.mathutils.kangaroo import KangarooSolver


class TestKangaroo:
    def test_solves_zero_and_edges(self, group):
        solver = KangarooSolver(group, bound=500)
        for m in (0, 1, -1, 500, -500):
            assert solver.solve(group.gexp(m)) == m

    def test_solves_interior_values(self, group):
        solver = KangarooSolver(group, bound=10_000)
        for m in (17, -4242, 9999, -1, 5000):
            assert solver.solve(group.gexp(m)) == m

    def test_out_of_bound_raises(self, group):
        solver = KangarooSolver(group, bound=100, max_retries=4)
        with pytest.raises(DiscreteLogError):
            solver.solve(group.gexp(100_000))

    def test_rejects_negative_bound(self, group):
        with pytest.raises(ValueError):
            KangarooSolver(group, bound=-5)

    def test_rejects_window_wider_than_group(self, group):
        with pytest.raises(ValueError):
            KangarooSolver(group, bound=group.q)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.integers(min_value=-2000, max_value=2000))
    def test_property_agrees_with_bsgs(self, group, m):
        kangaroo = KangarooSolver(group, bound=2000)
        bsgs = DlogSolver(group, bound=2000)
        h = group.gexp(m)
        assert kangaroo.solve(h) == bsgs.solve(h) == m

    def test_result_always_verified(self, group):
        """solve() cross-checks g^result == h, so a returned value is
        always correct even if a walk were to alias."""
        solver = KangarooSolver(group, bound=300)
        for m in range(-300, 301, 37):
            result = solver.solve(group.gexp(m))
            assert group.gexp(result) == group.gexp(m)
