"""Unit tests for the unified retry/backoff policy (repro.rpc.retry).

The policy is pure bookkeeping over injectable sleep/clock/rng hooks, so
everything here runs at full speed with fake time -- only the
wait_for_port tests touch a real socket.
"""

from __future__ import annotations

import random
import socket
import time

import pytest

from repro.rpc.retry import (
    DEFAULT_POLICY,
    SERVICE_POLICY,
    STAT_KEYS,
    RetryPolicy,
    RetryStats,
    call_with_retry,
    merge_stats,
)
from repro.rpc.runtime import free_port, wait_for_port


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_backoff_without_jitter_is_capped_exponential(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, multiplier=2.0,
                             jitter=False)
        assert [policy.backoff(k) for k in range(1, 6)] == \
            [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_backoff_with_jitter_is_seeded_uniform(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, multiplier=2.0)
        draws_a = [policy.backoff(k, random.Random(7)) for k in range(1, 5)]
        draws_b = [policy.backoff(k, random.Random(7)) for k in range(1, 5)]
        assert draws_a == draws_b  # same seed, same schedule
        for k, delay in enumerate(draws_a, start=1):
            assert 0.0 <= delay <= 0.1 * 2.0 ** (k - 1)

    def test_attempts_yields_and_backs_off_between(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0,
                             jitter=False)
        slept = []
        attempts = list(policy.attempts(sleep=slept.append))
        assert attempts == [1, 2, 3, 4]
        # 3 sleeps for 4 attempts, exponential, none zero-length
        assert slept == [0.1, 0.2, 0.4]

    def test_attempts_deadline_bounds_the_loop(self):
        clock = {"now": 0.0}

        def fake_clock():
            return clock["now"]

        def fake_sleep(seconds):
            clock["now"] += seconds

        policy = RetryPolicy(max_attempts=1_000_000, base_delay=0.5,
                             max_delay=0.5, jitter=False, deadline=2.0)
        attempts = list(policy.attempts(sleep=fake_sleep, clock=fake_clock))
        # 0.5s backoff per retry against a 2s budget: the generator
        # stops within a handful of attempts, never the million
        assert 2 <= len(attempts) <= 6
        assert clock["now"] <= 2.5

    def test_attempt_timeout_clipped_by_deadline(self):
        policy = RetryPolicy(deadline=10.0)
        clock = lambda: 107.0  # noqa: E731 - 7s after start
        assert policy.attempt_timeout_for(100.0, default=60.0,
                                          clock=clock) == pytest.approx(3.0)
        # no deadline: the caller's default passes through untouched
        assert RetryPolicy().attempt_timeout_for(100.0, default=60.0,
                                                 clock=clock) == 60.0
        # explicit per-attempt timeout wins over the default
        assert RetryPolicy(attempt_timeout=5.0).attempt_timeout_for(
            0.0, default=60.0, clock=lambda: 0.0) == 5.0

    def test_defaults_are_sane(self):
        assert DEFAULT_POLICY.max_attempts < SERVICE_POLICY.max_attempts
        assert DEFAULT_POLICY.jitter and SERVICE_POLICY.jitter


class TestRetryStats:
    def test_snapshot_speaks_the_shared_vocabulary(self):
        stats = RetryStats()
        assert tuple(stats.snapshot()) == STAT_KEYS
        assert all(v == 0 for v in stats.snapshot().values())

    def test_merge_stats_sums_and_keeps_extra_keys(self):
        merged = merge_stats({"attempts": 2, "drops": 1},
                             {"attempts": 3, "injected_stall": 4})
        assert merged["attempts"] == 5
        assert merged["drops"] == 1
        assert merged["timeouts"] == 0
        assert merged["injected_stall"] == 4


class TestCallWithRetry:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionError("weather")
            return "ok"

        stats = RetryStats()
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=False)
        assert call_with_retry(policy, flaky, stats=stats,
                               sleep=lambda s: None) == "ok"
        assert stats.attempts == 3
        assert stats.retries == 2
        assert stats.drops == 2
        assert stats.giveups == 0

    def test_giveup_reraises_last_error_and_counts(self):
        stats = RetryStats()
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=False)

        def always_fails():
            raise ConnectionError("down")

        with pytest.raises(ConnectionError):
            call_with_retry(policy, always_fails, stats=stats,
                            sleep=lambda s: None)
        assert stats.attempts == 2
        assert stats.giveups == 1

    def test_non_retryable_error_escapes_immediately(self):
        calls = {"n": 0}

        def boom():
            calls["n"] += 1
            raise ValueError("logic bug, not weather")

        with pytest.raises(ValueError):
            call_with_retry(RetryPolicy(max_attempts=5, base_delay=0.0),
                            boom, retry_on=(ConnectionError,))
        assert calls["n"] == 1


@pytest.mark.timeout_guard(30)
class TestWaitForPort:
    def test_returns_once_listening(self):
        with socket.socket() as server:
            server.bind(("127.0.0.1", 0))
            server.listen(1)
            host, port = server.getsockname()
            wait_for_port(host, port, timeout=5.0)

    def test_times_out_on_silent_port(self):
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            wait_for_port("127.0.0.1", free_port(), timeout=0.4)
        # honors the budget: no runaway polling, no premature raise
        assert 0.2 <= time.monotonic() - start < 5.0
