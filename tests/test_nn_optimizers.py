"""Tests for SGD / momentum / Adam optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.optimizers import SGD, Adam


def make_layer_with_grads(np_rng):
    layer = Dense(2, 2, rng=np_rng)
    layer.grads = {"W": np.ones_like(layer.params["W"]),
                   "b": np.ones_like(layer.params["b"])}
    return layer


class TestSGD:
    def test_plain_step(self, np_rng):
        layer = make_layer_with_grads(np_rng)
        before = layer.params["W"].copy()
        SGD(learning_rate=0.1).step([layer])
        np.testing.assert_allclose(layer.params["W"], before - 0.1)

    def test_momentum_accumulates(self, np_rng):
        layer = make_layer_with_grads(np_rng)
        before = layer.params["W"].copy()
        opt = SGD(learning_rate=0.1, momentum=0.9)
        opt.step([layer])
        opt.step([layer])
        # first step: -0.1; second step: -0.1 + 0.9 * (-0.1) = -0.19
        np.testing.assert_allclose(layer.params["W"], before - 0.29)

    def test_missing_gradient_raises(self, np_rng):
        layer = Dense(2, 2, rng=np_rng)
        with pytest.raises(RuntimeError):
            SGD(0.1).step([layer])

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, momentum=1.0)

    def test_minimizes_quadratic(self, np_rng):
        """SGD on f(w) = ||w||^2 converges toward zero."""
        layer = Dense(1, 4, rng=np_rng)
        opt = SGD(0.2)
        for _ in range(100):
            layer.grads = {"W": 2 * layer.params["W"],
                           "b": 2 * layer.params["b"]}
            opt.step([layer])
        assert np.abs(layer.params["W"]).max() < 1e-6


class TestStateDicts:
    """state_dict/load_state_dict must restore the exact trajectory."""

    def _step_pair(self, opt_a, opt_b, layer_a, layer_b):
        for layer in (layer_a, layer_b):
            layer.grads = {"W": layer.params["W"] * 0.5,
                           "b": layer.params["b"] * 0.5 + 1.0}
        opt_a.step([layer_a])
        opt_b.step([layer_b])

    def _clone_layer(self, layer):
        twin = Dense(2, 2)
        twin.params = {k: v.copy() for k, v in layer.params.items()}
        return twin

    def test_sgd_resume_is_exact(self, np_rng):
        layer = make_layer_with_grads(np_rng)
        opt = SGD(learning_rate=0.1, momentum=0.9)
        opt.step([layer])
        opt.step([layer])
        state = opt.state_dict()
        twin_layer = self._clone_layer(layer)
        # deliberately different hyperparameters: load restores them
        twin_opt = SGD(learning_rate=5.0, momentum=0.0)
        twin_opt.load_state_dict(state)
        assert twin_opt.learning_rate == 0.1
        assert twin_opt.momentum == 0.9
        for _ in range(3):
            self._step_pair(opt, twin_opt, layer, twin_layer)
        assert np.array_equal(layer.params["W"], twin_layer.params["W"])
        assert np.array_equal(layer.params["b"], twin_layer.params["b"])

    def test_adam_resume_is_exact(self, np_rng):
        layer = make_layer_with_grads(np_rng)
        opt = Adam(learning_rate=0.01)
        opt.step([layer])
        opt.step([layer])
        state = opt.state_dict()
        assert state["t"] == 2  # bias-correction timestep is state too
        twin_layer = self._clone_layer(layer)
        twin_opt = Adam(learning_rate=9.9)
        twin_opt.load_state_dict(state)
        for _ in range(3):
            self._step_pair(opt, twin_opt, layer, twin_layer)
        assert np.array_equal(layer.params["W"], twin_layer.params["W"])
        assert np.array_equal(layer.params["b"], twin_layer.params["b"])

    def test_state_dict_returns_copies(self, np_rng):
        layer = make_layer_with_grads(np_rng)
        opt = SGD(learning_rate=0.1, momentum=0.9)
        opt.step([layer])
        state = opt.state_dict()
        state["velocity"]["0.W"][...] = 1e9
        assert np.abs(opt._velocity[(0, "W")]).max() < 1e9

    def test_wrong_optimizer_type_rejected(self):
        with pytest.raises(ValueError):
            SGD(0.1).load_state_dict(Adam().state_dict())
        with pytest.raises(ValueError):
            Adam().load_state_dict(SGD(0.1).state_dict())


class TestAdam:
    def test_first_step_size_is_lr(self, np_rng):
        layer = make_layer_with_grads(np_rng)
        before = layer.params["W"].copy()
        Adam(learning_rate=0.01).step([layer])
        np.testing.assert_allclose(layer.params["W"], before - 0.01,
                                   atol=1e-8)

    def test_minimizes_quadratic(self, np_rng):
        layer = Dense(1, 4, rng=np_rng)
        opt = Adam(0.1)
        for _ in range(300):
            layer.grads = {"W": 2 * layer.params["W"],
                           "b": 2 * layer.params["b"]}
            opt.step([layer])
        assert np.abs(layer.params["W"]).max() < 1e-4

    def test_missing_gradient_raises(self, np_rng):
        layer = Dense(2, 2, rng=np_rng)
        with pytest.raises(RuntimeError):
            Adam().step([layer])
