"""Tests for SGD / momentum / Adam optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.optimizers import SGD, Adam


def make_layer_with_grads(np_rng):
    layer = Dense(2, 2, rng=np_rng)
    layer.grads = {"W": np.ones_like(layer.params["W"]),
                   "b": np.ones_like(layer.params["b"])}
    return layer


class TestSGD:
    def test_plain_step(self, np_rng):
        layer = make_layer_with_grads(np_rng)
        before = layer.params["W"].copy()
        SGD(learning_rate=0.1).step([layer])
        np.testing.assert_allclose(layer.params["W"], before - 0.1)

    def test_momentum_accumulates(self, np_rng):
        layer = make_layer_with_grads(np_rng)
        before = layer.params["W"].copy()
        opt = SGD(learning_rate=0.1, momentum=0.9)
        opt.step([layer])
        opt.step([layer])
        # first step: -0.1; second step: -0.1 + 0.9 * (-0.1) = -0.19
        np.testing.assert_allclose(layer.params["W"], before - 0.29)

    def test_missing_gradient_raises(self, np_rng):
        layer = Dense(2, 2, rng=np_rng)
        with pytest.raises(RuntimeError):
            SGD(0.1).step([layer])

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, momentum=1.0)

    def test_minimizes_quadratic(self, np_rng):
        """SGD on f(w) = ||w||^2 converges toward zero."""
        layer = Dense(1, 4, rng=np_rng)
        opt = SGD(0.2)
        for _ in range(100):
            layer.grads = {"W": 2 * layer.params["W"],
                           "b": 2 * layer.params["b"]}
            opt.step([layer])
        assert np.abs(layer.params["W"]).max() < 1e-6


class TestAdam:
    def test_first_step_size_is_lr(self, np_rng):
        layer = make_layer_with_grads(np_rng)
        before = layer.params["W"].copy()
        Adam(learning_rate=0.01).step([layer])
        np.testing.assert_allclose(layer.params["W"], before - 0.01,
                                   atol=1e-8)

    def test_minimizes_quadratic(self, np_rng):
        layer = Dense(1, 4, rng=np_rng)
        opt = Adam(0.1)
        for _ in range(300):
            layer.grads = {"W": 2 * layer.params["W"],
                           "b": 2 * layer.params["b"]}
            opt.step([layer])
        assert np.abs(layer.params["W"]).max() < 1e-4

    def test_missing_gradient_raises(self, np_rng):
        layer = Dense(2, 2, rng=np_rng)
        with pytest.raises(RuntimeError):
            Adam().step([layer])
