"""Tests for the Sequential container, training loop and metrics."""

import numpy as np
import pytest

from repro.data.preprocess import one_hot
from repro.nn.layers import Dense, ReLU, Sigmoid
from repro.nn.losses import MSELoss, SoftmaxCrossEntropyLoss
from repro.nn.metrics import accuracy, confusion_matrix
from repro.nn.model import Sequential, TrainingHistory, iterate_batches
from repro.nn.optimizers import SGD


def separable_data(np_rng, n=300):
    x = np_rng.normal(size=(n, 2))
    labels = (x[:, 0] + x[:, 1] > 0).astype(int)
    return x, labels


class TestIterateBatches:
    def test_covers_all_samples(self, np_rng):
        x = np.arange(10).reshape(10, 1).astype(float)
        y = np.arange(10)
        seen = []
        for xb, yb in iterate_batches(x, y, batch_size=3, rng=np_rng):
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_final_partial_batch(self, np_rng):
        x = np.zeros((7, 1))
        y = np.zeros(7)
        sizes = [len(xb) for xb, _ in
                 iterate_batches(x, y, 3, np_rng, shuffle=False)]
        assert sizes == [3, 3, 1]

    def test_no_shuffle_preserves_order(self):
        x = np.arange(6).reshape(6, 1).astype(float)
        y = np.arange(6)
        batches = list(iterate_batches(x, y, 2, shuffle=False))
        assert batches[0][1].tolist() == [0, 1]


class TestSequential:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_fit_learns_separable_problem(self, np_rng):
        x, labels = separable_data(np_rng)
        y = one_hot(labels, 2)
        model = Sequential([Dense(2, 8, rng=np_rng), ReLU(),
                            Dense(8, 2, rng=np_rng)])
        history = model.fit(x, y, SoftmaxCrossEntropyLoss(), SGD(0.5),
                            epochs=20, batch_size=32, rng=np_rng)
        assert model.evaluate(x, y) > 0.9
        assert history.epoch_loss[-1] < history.epoch_loss[0]

    def test_history_lengths(self, np_rng):
        x, labels = separable_data(np_rng, n=64)
        y = one_hot(labels, 2)
        model = Sequential([Dense(2, 2, rng=np_rng)])
        history = model.fit(x, y, SoftmaxCrossEntropyLoss(), SGD(0.1),
                            epochs=3, batch_size=16, rng=np_rng)
        assert len(history.batch_loss) == 3 * 4
        assert len(history.epoch_loss) == 3

    def test_on_batch_callback(self, np_rng):
        x, labels = separable_data(np_rng, n=32)
        y = one_hot(labels, 2)
        calls = []
        model = Sequential([Dense(2, 2, rng=np_rng)])
        model.fit(x, y, SoftmaxCrossEntropyLoss(), SGD(0.1), epochs=1,
                  batch_size=16, rng=np_rng,
                  on_batch=lambda i, l, a: calls.append((i, l, a)))
        assert [c[0] for c in calls] == [0, 1]

    def test_mse_training(self, np_rng):
        x, labels = separable_data(np_rng)
        y = one_hot(labels, 2)
        model = Sequential([Dense(2, 8, rng=np_rng), Sigmoid(),
                            Dense(8, 2, rng=np_rng), Sigmoid()])
        model.fit(x, y, MSELoss(), SGD(1.0), epochs=30, batch_size=32,
                  rng=np_rng)
        assert model.evaluate(x, y) > 0.85

    def test_get_set_weights_roundtrip(self, np_rng):
        model = Sequential([Dense(3, 4, rng=np_rng), ReLU(),
                            Dense(4, 2, rng=np_rng)])
        weights = model.get_weights()
        twin = Sequential([Dense(3, 4), ReLU(), Dense(4, 2)])
        twin.set_weights(weights)
        x = np_rng.normal(size=(5, 3))
        np.testing.assert_allclose(model.predict(x), twin.predict(x))

    def test_set_weights_wrong_length(self, np_rng):
        model = Sequential([Dense(2, 2, rng=np_rng)])
        with pytest.raises(ValueError):
            model.set_weights([])

    def test_predict_does_not_mutate_state(self, np_rng):
        model = Sequential([Dense(2, 2, rng=np_rng), Sigmoid()])
        x = np_rng.normal(size=(4, 2))
        model.predict(x)
        with pytest.raises(RuntimeError):
            model.backward(np.ones((4, 2)))


class TestTrainingHistory:
    def test_averaged_batch_accuracy_windows(self):
        history = TrainingHistory(batch_accuracy=[0.0, 1.0, 0.5, 0.5, 1.0])
        assert history.averaged_batch_accuracy(2) == [0.5, 0.5, 1.0]


class TestMetrics:
    def test_accuracy_one_hot_and_indices(self):
        preds = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        labels = np.array([0, 1, 1])
        assert accuracy(preds, labels) == pytest.approx(2 / 3)
        assert accuracy(preds, one_hot(labels, 2)) == pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((3, 2)), np.zeros(4))

    def test_confusion_matrix(self):
        preds = np.array([0, 1, 1, 0])
        labels = np.array([0, 1, 0, 0])
        cm = confusion_matrix(preds, labels, 2)
        np.testing.assert_array_equal(cm, [[2, 1], [0, 1]])
        assert cm.sum() == 4
