"""Property tests for the fast-exponentiation subsystem.

``FixedBaseExp`` and ``multiexp`` must agree with plain ``pow`` on every
input class the crypto layers feed them: small, full-width, negative and
``>= q`` exponents.  The pooled path additionally must be bit-identical
to the sequential ``SecureMatrixScheme`` computations.
"""

import random

import numpy as np
import pytest

from repro.fe.feip import Feip
from repro.matrix.parallel import SecureComputePool
from repro.matrix.secure_matrix import (
    SecureMatrixScheme,
    as_int_matrix,
    matrix_bound_dot,
    matrix_bound_elementwise,
)
from repro.mathutils.fastexp import (
    SHARED_FIXED_BASE_MIN_ROWS,
    FixedBaseExp,
    SharedBaseMultiExp,
    amortized_comb_window,
    multiexp,
)
from repro.mathutils.group import (
    FIXED_BASE_MIN_BITS,
    GroupParams,
    SchnorrGroup,
)
from repro.mathutils.modarith import batch_inverse, mod_inverse


def reference_product(bases, exponents, p, q):
    result = 1
    for base, e in zip(bases, exponents):
        result = result * pow(base, e % q, p) % p
    return result


class TestFixedBaseExp:
    @pytest.mark.parametrize("bits", [32, 64, 128])
    @pytest.mark.parametrize("window", [None, 1, 3, 8])
    def test_agrees_with_pow(self, bits, window):
        params = GroupParams.predefined(bits)
        rng = random.Random(bits)
        table = FixedBaseExp(params.g, params.p, params.q, window=window)
        exponents = [0, 1, 2, params.q - 1, params.q, params.q + 1,
                     -1, -params.q, 2 * params.q + 3]
        exponents += [rng.randrange(-3 * params.q, 3 * params.q)
                      for _ in range(40)]
        for e in exponents:
            assert table.pow(e) == pow(params.g, e % params.q, params.p), e

    def test_arbitrary_base(self, params, group, rng):
        base = group.random_element()
        table = FixedBaseExp(base, params.p, params.q)
        for _ in range(25):
            e = rng.randrange(-2 * params.q, 2 * params.q)
            assert table.pow(e) == pow(base, e % params.q, params.p)

    def test_group_cache_reuses_tables(self, params):
        group = SchnorrGroup(params)
        base = group.random_element()
        assert group.fixed_base(base) is group.fixed_base(base)

    def test_exp_cached_budget_falls_back_to_pow(self, monkeypatch, rng):
        """Past the memory budget new bases must compute correctly via
        plain pow instead of building (or evicting) tables."""
        import repro.mathutils.group as group_mod
        p = GroupParams.predefined(64)
        group = SchnorrGroup(p, rng=rng)
        first, second = group.random_element(), group.random_element()
        e = rng.randrange(p.q)
        assert group.exp_cached(first, e) == pow(first, e, p.p)  # cached
        tables_before = len(group._fixed_bases)
        monkeypatch.setattr(group_mod, "FIXED_BASE_CACHE_ENTRIES", 1)
        assert group.exp_cached(second, e) == pow(second, e, p.p)  # pow path
        assert len(group._fixed_bases) == tables_before  # no table built
        # already-cached bases keep using their tables
        assert group.exp_cached(first, e) == pow(first, e, p.p)

    def test_gexp_unchanged_by_routing(self, params, rng):
        """gexp must give identical results above and below the table
        threshold (toy groups take the plain-pow branch)."""
        for bits in (32, FIXED_BASE_MIN_BITS):
            p = GroupParams.predefined(bits)
            group = SchnorrGroup(p)
            for _ in range(20):
                e = rng.randrange(-2 * p.q, 2 * p.q)
                assert group.gexp(e) == pow(p.g, e % p.q, p.p)

    def test_rejects_bad_parameters(self, params):
        with pytest.raises(ValueError):
            FixedBaseExp(params.g, 1, params.q)
        with pytest.raises(ValueError):
            FixedBaseExp(params.g, params.p, 0)
        with pytest.raises(ValueError):
            FixedBaseExp(params.g, params.p, params.q, window=0)


class TestMultiexp:
    @pytest.mark.parametrize("bits", [32, 64, 128])
    @pytest.mark.parametrize("length", [1, 2, 7, 40])
    def test_signed_small_exponents(self, bits, length):
        params = GroupParams.predefined(bits)
        group = SchnorrGroup(params, rng=random.Random(length))
        rng = random.Random(bits * 1000 + length)
        bases = [group.random_element() for _ in range(length)]
        exponents = [rng.randrange(-500, 501) for _ in range(length)]
        assert multiexp(bases, exponents, params.p, order=params.q) == \
            reference_product(bases, exponents, params.p, params.q)

    @pytest.mark.parametrize("length", [1, 3, 12])
    def test_full_width_exponents(self, params, group, rng, length):
        bases = [group.random_element() for _ in range(length)]
        exponents = [rng.randrange(-2 * params.q, 2 * params.q)
                     for _ in range(length)]
        assert multiexp(bases, exponents, params.p, order=params.q) == \
            reference_product(bases, exponents, params.p, params.q)

    def test_mixed_magnitudes_above_naive_threshold(self, params, group, rng):
        """Exercise the interleaved-window path (>16-bit exponents)."""
        bases = [group.random_element() for _ in range(6)]
        exponents = [3, -7, rng.randrange(1 << 20), -(1 << 19),
                     params.q - 2, 0]
        assert multiexp(bases, exponents, params.p, order=params.q) == \
            reference_product(bases, exponents, params.p, params.q)

    def test_empty_and_zero(self, params, group):
        assert multiexp([], [], params.p, order=params.q) == 1
        bases = [group.random_element(), group.random_element()]
        assert multiexp(bases, [0, 0], params.p, order=params.q) == 1

    def test_without_order_uses_raw_exponents(self, params, group):
        base = group.random_element()
        assert multiexp([base], [10], params.p) == pow(base, 10, params.p)

    def test_length_mismatch(self, params, group):
        with pytest.raises(ValueError):
            multiexp([group.random_element()], [1, 2], params.p)

    def test_group_wrapper(self, params, group, rng):
        bases = [group.random_element() for _ in range(5)]
        exponents = [rng.randrange(-300, 300) for _ in range(5)]
        assert group.multiexp(bases, exponents) == \
            reference_product(bases, exponents, params.p, params.q)


class TestSharedBaseMultiExp:
    """eval_many must equal per-row multiexp must equal naive pow."""

    @pytest.mark.parametrize("bits", [32, 64, 128])
    @pytest.mark.parametrize("shape", [(1, 1), (3, 4), (12, 6), (2, 40)])
    def test_matches_per_row_multiexp_and_pow(self, bits, shape):
        params = GroupParams.predefined(bits)
        group = SchnorrGroup(params, rng=random.Random(bits))
        rng = random.Random(bits * 100 + shape[0])
        m, eta = shape
        bases = [group.random_element() for _ in range(eta)]
        rows = [[rng.randrange(-500, 501) for _ in range(eta)]
                for _ in range(m)]
        context = SharedBaseMultiExp(bases, params.p, order=params.q,
                                     rows_hint=m)
        results = context.eval_many(rows)
        for row, got in zip(rows, results):
            assert got == multiexp(bases, row, params.p, order=params.q)
            assert got == reference_product(bases, row, params.p, params.q)

    @pytest.mark.parametrize("window", [1, 2, 5])
    def test_forced_window_exercises_tables_on_toy_group(self, params, group,
                                                         window):
        """Toy groups normally fall back to per-row multiexp; a forced
        window must run the shared-table walk with identical results."""
        rng = random.Random(window)
        bases = [group.random_element() for _ in range(5)]
        rows = [[rng.randrange(-300, 301) for _ in range(5)]
                for _ in range(6)]
        forced = SharedBaseMultiExp(bases, params.p, order=params.q,
                                    window=window)
        auto = SharedBaseMultiExp(bases, params.p, order=params.q)
        assert forced.eval_many(rows) == auto.eval_many(rows)

    def test_full_width_and_oversized_exponents(self, params, group, rng):
        bases = [group.random_element() for _ in range(4)]
        rows = [
            [rng.randrange(-2 * params.q, 2 * params.q) for _ in range(4)]
            for _ in range(5)
        ]
        context = SharedBaseMultiExp(bases, params.p, order=params.q)
        for row, got in zip(rows, context.eval_many(rows)):
            assert got == reference_product(bases, row, params.p, params.q)

    def test_zero_rows_and_zero_exponents(self, params, group):
        bases = [group.random_element() for _ in range(3)]
        context = SharedBaseMultiExp(bases, params.p, order=params.q)
        assert context.eval_many([]) == []
        assert context.eval_many([[0, 0, 0]]) == [1]
        assert context.eval([0, 5, 0]) == pow(bases[1], 5, params.p)

    def test_fixed_base_combines_per_row(self, params, group, rng):
        """ct0-style fixed base: full-width exponent folded per row."""
        eta, m = 3, SHARED_FIXED_BASE_MIN_ROWS + 2
        bases = [group.random_element() for _ in range(eta)]
        fixed = group.random_element()
        rows = [[rng.randrange(-200, 201) for _ in range(eta)]
                for _ in range(m)]
        fixed_exps = [rng.randrange(-params.q, params.q) for _ in range(m)]
        context = SharedBaseMultiExp(bases, params.p, order=params.q,
                                     fixed_base=fixed, rows_hint=m)
        results = context.eval_many(rows, fixed_exponents=fixed_exps)
        for row, fe, got in zip(rows, fixed_exps, results):
            expected = reference_product(bases, row, params.p, params.q)
            expected = expected * pow(fixed, fe % params.q, params.p) \
                % params.p
            assert got == expected

    def test_fixed_base_comb_engages_above_threshold(self, rng):
        """>= SHARED_FIXED_BASE_MIN_ROWS rows on a big group build the
        amortized comb; results must not depend on which path ran."""
        params = GroupParams.predefined(FIXED_BASE_MIN_BITS)
        group = SchnorrGroup(params, rng=rng)
        fixed = group.random_element()
        few, many = 2, SHARED_FIXED_BASE_MIN_ROWS
        for m in (few, many):
            context = SharedBaseMultiExp([], params.p, order=params.q,
                                         fixed_base=fixed, rows_hint=m)
            exps = [rng.randrange(params.q) for _ in range(m)]
            got = context.eval_many([[] for _ in range(m)],
                                    fixed_exponents=exps)
            assert got == [pow(fixed, e, params.p) for e in exps]
            engaged = context._fixed_table is not None
            assert engaged == (m >= SHARED_FIXED_BASE_MIN_ROWS)

    def test_errors(self, params, group):
        bases = [group.random_element() for _ in range(2)]
        context = SharedBaseMultiExp(bases, params.p, order=params.q)
        with pytest.raises(ValueError):
            context.eval_many([[1, 2, 3]])  # row length mismatch
        with pytest.raises(ValueError):
            context.eval_many([[1, 2]], fixed_exponents=[3])  # no fixed base
        ctx_fixed = SharedBaseMultiExp(bases, params.p, order=params.q,
                                       fixed_base=group.random_element())
        with pytest.raises(ValueError):
            ctx_fixed.eval_many([[1, 2], [3, 4]], fixed_exponents=[1])
        with pytest.raises(ValueError):
            SharedBaseMultiExp(bases, 1)
        with pytest.raises(ValueError):
            SharedBaseMultiExp(bases, params.p, window=0)


class TestAmortizedCombWindow:
    def test_monotone_in_uses(self):
        """More uses justify wider windows (more precomputation)."""
        widths = [amortized_comb_window(256, uses)
                  for uses in (1, 8, 64, 4096)]
        assert widths == sorted(widths)
        assert 1 <= widths[0] <= widths[-1] <= 10


class TestBatchInverse:
    def test_matches_mod_inverse(self, params, group, rng):
        values = [group.random_element() for _ in range(17)]
        assert batch_inverse(values, params.p) == \
            [mod_inverse(v, params.p) for v in values]

    def test_empty(self, params):
        assert batch_inverse([], params.p) == []

    def test_non_invertible_raises(self, params):
        with pytest.raises(ValueError):
            batch_inverse([1, params.p], params.p)


class TestFeipUsesFastExp:
    def test_negative_weights_roundtrip(self, params, rng, solver_cache):
        """decrypt_raw's multiexp must handle signed weight vectors."""
        feip = Feip(params, rng=rng, solver_cache=solver_cache)
        mpk, msk = feip.setup(6)
        x = [rng.randrange(-40, 41) for _ in range(6)]
        y = [rng.randrange(-40, 41) for _ in range(6)]
        key = feip.key_derive(msk, y)
        ct = feip.encrypt(mpk, x)
        expected = sum(a * b for a, b in zip(x, y))
        assert feip.decrypt(mpk, ct, key, bound=6 * 40 * 40 + 1) == expected


class TestAsIntMatrix:
    def test_vectorized_matches_semantics(self):
        out = as_int_matrix([[1.0, 2], [np.float64(3.5), 4]])
        assert out.dtype == object
        assert out.tolist() == [[1, 2], [3, 4]]
        assert all(type(v) is int for v in out.ravel())

    def test_empty_rows(self):
        out = as_int_matrix(np.empty((0, 3), dtype=object))
        assert out.shape == (0, 3)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            as_int_matrix([1, 2, 3])


class TestPoolMatchesSequential:
    def test_pool_reuse_identical_results(self, params, rng, solver_cache):
        """One persistent pool, many calls: results must equal the
        sequential scheme path and no executor may be respawned."""
        scheme = SecureMatrixScheme(params, rng=rng, solver_cache=solver_cache)
        msk_ip, msk_bo = scheme.setup(column_length=3)
        x = np.array([[rng.randrange(-9, 10) for _ in range(5)]
                      for _ in range(3)], dtype=object)
        y = np.array([[rng.randrange(-9, 10) for _ in range(3)]
                      for _ in range(2)], dtype=object)
        enc = scheme.pre_process_encryption(x)
        dot_keys = scheme.derive_dot_keys(msk_ip, y)
        ew_keys = scheme.derive_elementwise_keys(msk_bo, "+", x,
                                                 enc.commitments())
        dot_bound = matrix_bound_dot(9, 9, 3)
        ew_bound = matrix_bound_elementwise("+", 9, 9)
        serial_dot = scheme.secure_dot(enc, dot_keys, dot_bound)
        serial_ew = scheme.secure_elementwise(enc, ew_keys, ew_bound)
        with SecureComputePool(workers=2) as pool:
            pooled = SecureMatrixScheme(
                params, feip_mpk=scheme.feip_mpk, febo_mpk=scheme.febo_mpk,
                rng=rng, solver_cache=solver_cache, pool=pool,
            )
            for _ in range(2):  # reuse across repeated calls
                np.testing.assert_array_equal(
                    pooled.secure_dot(enc, dot_keys, dot_bound), serial_dot
                )
                np.testing.assert_array_equal(
                    pooled.secure_elementwise(enc, ew_keys, ew_bound),
                    serial_ew,
                )
            assert pool.executors_created == 1
            assert pool.dispatches == 4
