"""Property tests for the fast-exponentiation subsystem.

``FixedBaseExp`` and ``multiexp`` must agree with plain ``pow`` on every
input class the crypto layers feed them: small, full-width, negative and
``>= q`` exponents.  The pooled path additionally must be bit-identical
to the sequential ``SecureMatrixScheme`` computations.
"""

import random

import numpy as np
import pytest

from repro.fe.feip import Feip
from repro.matrix.parallel import SecureComputePool
from repro.matrix.secure_matrix import (
    SecureMatrixScheme,
    as_int_matrix,
    matrix_bound_dot,
    matrix_bound_elementwise,
)
from repro.mathutils.fastexp import FixedBaseExp, multiexp
from repro.mathutils.group import (
    FIXED_BASE_MIN_BITS,
    GroupParams,
    SchnorrGroup,
)


def reference_product(bases, exponents, p, q):
    result = 1
    for base, e in zip(bases, exponents):
        result = result * pow(base, e % q, p) % p
    return result


class TestFixedBaseExp:
    @pytest.mark.parametrize("bits", [32, 64, 128])
    @pytest.mark.parametrize("window", [None, 1, 3, 8])
    def test_agrees_with_pow(self, bits, window):
        params = GroupParams.predefined(bits)
        rng = random.Random(bits)
        table = FixedBaseExp(params.g, params.p, params.q, window=window)
        exponents = [0, 1, 2, params.q - 1, params.q, params.q + 1,
                     -1, -params.q, 2 * params.q + 3]
        exponents += [rng.randrange(-3 * params.q, 3 * params.q)
                      for _ in range(40)]
        for e in exponents:
            assert table.pow(e) == pow(params.g, e % params.q, params.p), e

    def test_arbitrary_base(self, params, group, rng):
        base = group.random_element()
        table = FixedBaseExp(base, params.p, params.q)
        for _ in range(25):
            e = rng.randrange(-2 * params.q, 2 * params.q)
            assert table.pow(e) == pow(base, e % params.q, params.p)

    def test_group_cache_reuses_tables(self, params):
        group = SchnorrGroup(params)
        base = group.random_element()
        assert group.fixed_base(base) is group.fixed_base(base)

    def test_exp_cached_budget_falls_back_to_pow(self, monkeypatch, rng):
        """Past the memory budget new bases must compute correctly via
        plain pow instead of building (or evicting) tables."""
        import repro.mathutils.group as group_mod
        p = GroupParams.predefined(64)
        group = SchnorrGroup(p, rng=rng)
        first, second = group.random_element(), group.random_element()
        e = rng.randrange(p.q)
        assert group.exp_cached(first, e) == pow(first, e, p.p)  # cached
        tables_before = len(group._fixed_bases)
        monkeypatch.setattr(group_mod, "FIXED_BASE_CACHE_ENTRIES", 1)
        assert group.exp_cached(second, e) == pow(second, e, p.p)  # pow path
        assert len(group._fixed_bases) == tables_before  # no table built
        # already-cached bases keep using their tables
        assert group.exp_cached(first, e) == pow(first, e, p.p)

    def test_gexp_unchanged_by_routing(self, params, rng):
        """gexp must give identical results above and below the table
        threshold (toy groups take the plain-pow branch)."""
        for bits in (32, FIXED_BASE_MIN_BITS):
            p = GroupParams.predefined(bits)
            group = SchnorrGroup(p)
            for _ in range(20):
                e = rng.randrange(-2 * p.q, 2 * p.q)
                assert group.gexp(e) == pow(p.g, e % p.q, p.p)

    def test_rejects_bad_parameters(self, params):
        with pytest.raises(ValueError):
            FixedBaseExp(params.g, 1, params.q)
        with pytest.raises(ValueError):
            FixedBaseExp(params.g, params.p, 0)
        with pytest.raises(ValueError):
            FixedBaseExp(params.g, params.p, params.q, window=0)


class TestMultiexp:
    @pytest.mark.parametrize("bits", [32, 64, 128])
    @pytest.mark.parametrize("length", [1, 2, 7, 40])
    def test_signed_small_exponents(self, bits, length):
        params = GroupParams.predefined(bits)
        group = SchnorrGroup(params, rng=random.Random(length))
        rng = random.Random(bits * 1000 + length)
        bases = [group.random_element() for _ in range(length)]
        exponents = [rng.randrange(-500, 501) for _ in range(length)]
        assert multiexp(bases, exponents, params.p, order=params.q) == \
            reference_product(bases, exponents, params.p, params.q)

    @pytest.mark.parametrize("length", [1, 3, 12])
    def test_full_width_exponents(self, params, group, rng, length):
        bases = [group.random_element() for _ in range(length)]
        exponents = [rng.randrange(-2 * params.q, 2 * params.q)
                     for _ in range(length)]
        assert multiexp(bases, exponents, params.p, order=params.q) == \
            reference_product(bases, exponents, params.p, params.q)

    def test_mixed_magnitudes_above_naive_threshold(self, params, group, rng):
        """Exercise the interleaved-window path (>16-bit exponents)."""
        bases = [group.random_element() for _ in range(6)]
        exponents = [3, -7, rng.randrange(1 << 20), -(1 << 19),
                     params.q - 2, 0]
        assert multiexp(bases, exponents, params.p, order=params.q) == \
            reference_product(bases, exponents, params.p, params.q)

    def test_empty_and_zero(self, params, group):
        assert multiexp([], [], params.p, order=params.q) == 1
        bases = [group.random_element(), group.random_element()]
        assert multiexp(bases, [0, 0], params.p, order=params.q) == 1

    def test_without_order_uses_raw_exponents(self, params, group):
        base = group.random_element()
        assert multiexp([base], [10], params.p) == pow(base, 10, params.p)

    def test_length_mismatch(self, params, group):
        with pytest.raises(ValueError):
            multiexp([group.random_element()], [1, 2], params.p)

    def test_group_wrapper(self, params, group, rng):
        bases = [group.random_element() for _ in range(5)]
        exponents = [rng.randrange(-300, 300) for _ in range(5)]
        assert group.multiexp(bases, exponents) == \
            reference_product(bases, exponents, params.p, params.q)


class TestFeipUsesFastExp:
    def test_negative_weights_roundtrip(self, params, rng, solver_cache):
        """decrypt_raw's multiexp must handle signed weight vectors."""
        feip = Feip(params, rng=rng, solver_cache=solver_cache)
        mpk, msk = feip.setup(6)
        x = [rng.randrange(-40, 41) for _ in range(6)]
        y = [rng.randrange(-40, 41) for _ in range(6)]
        key = feip.key_derive(msk, y)
        ct = feip.encrypt(mpk, x)
        expected = sum(a * b for a, b in zip(x, y))
        assert feip.decrypt(mpk, ct, key, bound=6 * 40 * 40 + 1) == expected


class TestAsIntMatrix:
    def test_vectorized_matches_semantics(self):
        out = as_int_matrix([[1.0, 2], [np.float64(3.5), 4]])
        assert out.dtype == object
        assert out.tolist() == [[1, 2], [3, 4]]
        assert all(type(v) is int for v in out.ravel())

    def test_empty_rows(self):
        out = as_int_matrix(np.empty((0, 3), dtype=object))
        assert out.shape == (0, 3)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            as_int_matrix([1, 2, 3])


class TestPoolMatchesSequential:
    def test_pool_reuse_identical_results(self, params, rng, solver_cache):
        """One persistent pool, many calls: results must equal the
        sequential scheme path and no executor may be respawned."""
        scheme = SecureMatrixScheme(params, rng=rng, solver_cache=solver_cache)
        msk_ip, msk_bo = scheme.setup(column_length=3)
        x = np.array([[rng.randrange(-9, 10) for _ in range(5)]
                      for _ in range(3)], dtype=object)
        y = np.array([[rng.randrange(-9, 10) for _ in range(3)]
                      for _ in range(2)], dtype=object)
        enc = scheme.pre_process_encryption(x)
        dot_keys = scheme.derive_dot_keys(msk_ip, y)
        ew_keys = scheme.derive_elementwise_keys(msk_bo, "+", x,
                                                 enc.commitments())
        dot_bound = matrix_bound_dot(9, 9, 3)
        ew_bound = matrix_bound_elementwise("+", 9, 9)
        serial_dot = scheme.secure_dot(enc, dot_keys, dot_bound)
        serial_ew = scheme.secure_elementwise(enc, ew_keys, ew_bound)
        with SecureComputePool(workers=2) as pool:
            pooled = SecureMatrixScheme(
                params, feip_mpk=scheme.feip_mpk, febo_mpk=scheme.febo_mpk,
                rng=rng, solver_cache=solver_cache, pool=pool,
            )
            for _ in range(2):  # reuse across repeated calls
                np.testing.assert_array_equal(
                    pooled.secure_dot(enc, dot_keys, dot_bound), serial_dot
                )
                np.testing.assert_array_equal(
                    pooled.secure_elementwise(enc, ew_keys, ew_bound),
                    serial_ew,
                )
            assert pool.executors_created == 1
            assert pool.dispatches == 4
