"""Tests for model / encrypted-dataset persistence."""

import random

import numpy as np
import pytest

from repro.core.checkpoint import (
    load_encrypted_tabular,
    load_model_weights,
    save_encrypted_tabular,
    save_model_weights,
)
from repro.core.config import CryptoNNConfig
from repro.core.cryptonn import CryptoNNTrainer
from repro.core.entities import Client, TrustedAuthority
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD


class TestModelWeights:
    def test_roundtrip(self, tmp_path, np_rng):
        model = Sequential([Dense(3, 4, rng=np_rng), ReLU(),
                            Dense(4, 2, rng=np_rng)])
        path = tmp_path / "weights.npz"
        save_model_weights(model, path)
        twin = Sequential([Dense(3, 4), ReLU(), Dense(4, 2)])
        load_model_weights(twin, path)
        x = np_rng.normal(size=(5, 3))
        np.testing.assert_allclose(model.predict(x), twin.predict(x))

    def test_architecture_mismatch_detected(self, tmp_path, np_rng):
        model = Sequential([Dense(3, 4, rng=np_rng)])
        path = tmp_path / "weights.npz"
        save_model_weights(model, path)
        wrong = Sequential([Dense(3, 5)])
        with pytest.raises(ValueError):
            load_model_weights(wrong, path)

    def test_missing_key_detected(self, tmp_path, np_rng):
        model = Sequential([Dense(3, 4, rng=np_rng)])
        path = tmp_path / "weights.npz"
        save_model_weights(model, path)
        bigger = Sequential([Dense(3, 4), ReLU(), Dense(4, 2)])
        with pytest.raises(KeyError):
            load_model_weights(bigger, path)


class TestEncryptedDataset:
    @pytest.fixture()
    def authority(self):
        return TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))

    def test_roundtrip_preserves_everything(self, tmp_path, authority, np_rng):
        client = Client(authority)
        x = np_rng.uniform(-1, 1, size=(6, 3))
        y = np_rng.integers(0, 2, size=6)
        dataset = client.encrypt_tabular(x, y, num_classes=2)
        path = tmp_path / "dataset.json"
        save_encrypted_tabular(dataset, path)
        restored = load_encrypted_tabular(path)
        assert len(restored) == 6
        assert restored.n_features == 3
        assert restored.scale == dataset.scale
        assert restored.eval_labels.tolist() == dataset.eval_labels.tolist()
        assert restored.samples[0].features_ip == dataset.samples[0].features_ip
        assert restored.labels[0].onehot_bo == dataset.labels[0].onehot_bo

    def test_restored_dataset_trains(self, tmp_path, authority, np_rng):
        """The true test: the reloaded ciphertexts decrypt correctly in
        a full training iteration."""
        client = Client(authority)
        x = np_rng.uniform(-1, 1, size=(12, 3))
        y = (x[:, 0] > 0).astype(int)
        dataset = client.encrypt_tabular(x, y, num_classes=2)
        path = tmp_path / "dataset.json"
        save_encrypted_tabular(dataset, path)
        restored = load_encrypted_tabular(path)
        model = Sequential([Dense(3, 4, rng=np_rng), ReLU(),
                            Dense(4, 2, rng=np_rng)])
        trainer = CryptoNNTrainer(model, authority)
        hist = trainer.fit(restored, SGD(0.5), epochs=1, batch_size=6,
                           rng=np.random.default_rng(0))
        assert len(hist.batch_loss) == 2

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_encrypted_tabular(path)

    def test_none_eval_labels_roundtrip(self, tmp_path, authority, np_rng):
        client = Client(authority)
        x = np_rng.uniform(-1, 1, size=(2, 2))
        dataset = client.encrypt_tabular(x, np.array([0, 1]), num_classes=2)
        dataset.eval_labels = None
        path = tmp_path / "noeval.json"
        save_encrypted_tabular(dataset, path)
        assert load_encrypted_tabular(path).eval_labels is None
