"""Tests for model / encrypted-dataset persistence."""

import random

import numpy as np
import pytest

from repro.core.checkpoint import (
    TrainerCheckpoint,
    load_encrypted_tabular,
    load_model_weights,
    save_encrypted_tabular,
    save_model_weights,
)
from repro.core.config import CryptoNNConfig
from repro.core.cryptonn import CryptoNNTrainer
from repro.core.entities import Client, TrustedAuthority
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential, TrainingHistory
from repro.nn.optimizers import SGD, Adam


class TestModelWeights:
    def test_roundtrip(self, tmp_path, np_rng):
        model = Sequential([Dense(3, 4, rng=np_rng), ReLU(),
                            Dense(4, 2, rng=np_rng)])
        path = tmp_path / "weights.npz"
        save_model_weights(model, path)
        twin = Sequential([Dense(3, 4), ReLU(), Dense(4, 2)])
        load_model_weights(twin, path)
        x = np_rng.normal(size=(5, 3))
        np.testing.assert_allclose(model.predict(x), twin.predict(x))

    def test_architecture_mismatch_detected(self, tmp_path, np_rng):
        model = Sequential([Dense(3, 4, rng=np_rng)])
        path = tmp_path / "weights.npz"
        save_model_weights(model, path)
        wrong = Sequential([Dense(3, 5)])
        with pytest.raises(ValueError):
            load_model_weights(wrong, path)

    def test_missing_key_detected(self, tmp_path, np_rng):
        model = Sequential([Dense(3, 4, rng=np_rng)])
        path = tmp_path / "weights.npz"
        save_model_weights(model, path)
        bigger = Sequential([Dense(3, 4), ReLU(), Dense(4, 2)])
        with pytest.raises(KeyError):
            load_model_weights(bigger, path)

    def test_extra_keys_rejected(self, tmp_path, np_rng):
        """A checkpoint from a deeper model must not load silently
        truncated into a shallower one."""
        deeper = Sequential([Dense(3, 4, rng=np_rng), ReLU(),
                             Dense(4, 2, rng=np_rng)])
        path = tmp_path / "weights.npz"
        save_model_weights(deeper, path)
        shallow = Sequential([Dense(3, 4)])
        with pytest.raises(ValueError, match="does not have"):
            load_model_weights(shallow, path)

    def test_no_tmp_file_left_behind(self, tmp_path, np_rng):
        model = Sequential([Dense(3, 4, rng=np_rng)])
        path = tmp_path / "weights.npz"
        save_model_weights(model, path)
        assert [p.name for p in tmp_path.iterdir()] == ["weights.npz"]

    def test_suffixless_path_gains_npz_like_numpy(self, tmp_path, np_rng):
        """np.savez appends .npz to suffix-less paths; the atomic writer
        must keep that contract (the CLI documents model.json ->
        model.json.npz)."""
        model = Sequential([Dense(3, 4, rng=np_rng)])
        save_model_weights(model, tmp_path / "model.json")
        assert (tmp_path / "model.json.npz").exists()
        twin = Sequential([Dense(3, 4)])
        load_model_weights(twin, tmp_path / "model.json.npz")


class TestTrainerCheckpoint:
    def _model(self, np_rng):
        return Sequential([Dense(3, 4, rng=np_rng), ReLU(),
                           Dense(4, 2, rng=np_rng)])

    def _stepped_optimizer(self, model, opt):
        for layer in model.layers:
            layer.grads = {name: np.ones_like(p)
                           for name, p in layer.params.items()}
        opt.step(model.layers)
        return opt

    def test_roundtrip_preserves_everything(self, tmp_path, np_rng):
        model = self._model(np_rng)
        opt = self._stepped_optimizer(model, SGD(0.1, momentum=0.9))
        rng = np.random.default_rng(42)
        rng.shuffle(np.arange(17))  # advance the stream
        history = TrainingHistory(batch_loss=[0.5, 0.25],
                                  batch_accuracy=[0.5, float("nan")],
                                  epoch_loss=[0.375],
                                  epoch_accuracy=[0.5])
        order = np.asarray([4, 2, 0, 1, 3])
        ckpt = TrainerCheckpoint.capture(
            model, opt, rng, epoch=1, batch_in_epoch=2, batch_counter=7,
            history=history, epoch_order=order,
            run_meta={"batch_size": 5, "loss": "cross_entropy"})
        path = tmp_path / "trainer.npz"
        ckpt.save(path)
        restored = TrainerCheckpoint.load(path)

        assert restored.epoch == 1
        assert restored.batch_in_epoch == 2
        assert restored.batch_counter == 7
        assert restored.completed is False
        assert restored.run_meta == {"batch_size": 5,
                                     "loss": "cross_entropy"}
        assert np.array_equal(restored.epoch_order, order)
        assert restored.history.batch_loss == history.batch_loss
        assert np.isnan(restored.history.batch_accuracy[1])
        assert restored.history.epoch_loss == history.epoch_loss

        # model params restore bit-exactly into a differently-seeded twin
        twin = self._model(np.random.default_rng(999))
        restored.restore_model(twin)
        for mine, theirs in zip(model.get_weights(), twin.get_weights()):
            for name in mine:
                assert np.array_equal(mine[name], theirs[name])

        # optimizer slots restore bit-exactly
        twin_opt = SGD(9.0)
        twin_opt.load_state_dict(restored.optimizer_state)
        assert twin_opt.momentum == 0.9
        assert np.array_equal(twin_opt._velocity[(0, "W")],
                              opt._velocity[(0, "W")])

        # the RNG stream continues identically
        twin_rng = np.random.default_rng(0)
        restored.restore_rng(twin_rng)
        assert twin_rng.integers(0, 2**62) == rng.integers(0, 2**62)

    def test_adam_state_roundtrips(self, tmp_path, np_rng):
        model = self._model(np_rng)
        opt = self._stepped_optimizer(model, Adam(0.01))
        ckpt = TrainerCheckpoint.capture(
            model, opt, None, epoch=0, batch_in_epoch=1, batch_counter=1,
            history=TrainingHistory())
        path = tmp_path / "adam.npz"
        ckpt.save(path)
        restored = TrainerCheckpoint.load(path)
        assert restored.rng_state is None
        twin = Adam()
        twin.load_state_dict(restored.optimizer_state)
        assert twin._t == 1
        assert np.array_equal(twin._m[(2, "W")], opt._m[(2, "W")])
        assert np.array_equal(twin._v[(2, "b")], opt._v[(2, "b")])

    def test_save_is_atomic(self, tmp_path, np_rng):
        model = self._model(np_rng)
        ckpt = TrainerCheckpoint.capture(
            model, SGD(0.1), np.random.default_rng(0), epoch=0,
            batch_in_epoch=0, batch_counter=0, history=TrainingHistory())
        path = tmp_path / "trainer.npz"
        ckpt.save(path)
        ckpt.save(path)  # overwrite goes through the same tmp+rename
        assert [p.name for p in tmp_path.iterdir()] == ["trainer.npz"]

    def test_capture_is_a_deep_snapshot(self, tmp_path, np_rng):
        model = self._model(np_rng)
        history = TrainingHistory(batch_loss=[1.0])
        ckpt = TrainerCheckpoint.capture(
            model, SGD(0.1), None, epoch=0, batch_in_epoch=1,
            batch_counter=1, history=history)
        model.layers[0].params["W"][...] = 7.0
        history.batch_loss.append(2.0)
        assert not np.any(ckpt.model_weights[0]["W"] == 7.0)
        assert ckpt.history.batch_loss == [1.0]

    def test_restore_model_rejects_mismatch(self, tmp_path, np_rng):
        model = self._model(np_rng)
        ckpt = TrainerCheckpoint.capture(
            model, SGD(0.1), None, epoch=0, batch_in_epoch=0,
            batch_counter=0, history=TrainingHistory())
        with pytest.raises(ValueError):
            ckpt.restore_model(Sequential([Dense(3, 4)]))
        with pytest.raises(ValueError):
            ckpt.restore_model(Sequential([Dense(3, 5), ReLU(),
                                           Dense(5, 2)]))

    def test_bad_file_rejected(self, tmp_path, np_rng):
        path = tmp_path / "weights.npz"
        save_model_weights(self._model(np_rng), path)
        with pytest.raises(ValueError, match="not a trainer checkpoint"):
            TrainerCheckpoint.load(path)

    def test_peek_meta(self, tmp_path, np_rng):
        model = self._model(np_rng)
        ckpt = TrainerCheckpoint.capture(
            model, SGD(0.1), None, epoch=2, batch_in_epoch=3,
            batch_counter=11, history=TrainingHistory(), completed=True)
        path = tmp_path / "trainer.npz"
        ckpt.save(path)
        assert TrainerCheckpoint.peek_meta(path) == {
            "epoch": 2, "batch_in_epoch": 3, "batch_counter": 11,
            "completed": True}


class TestEncryptedDataset:
    @pytest.fixture()
    def authority(self):
        return TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))

    def test_roundtrip_preserves_everything(self, tmp_path, authority, np_rng):
        client = Client(authority)
        x = np_rng.uniform(-1, 1, size=(6, 3))
        y = np_rng.integers(0, 2, size=6)
        dataset = client.encrypt_tabular(x, y, num_classes=2)
        path = tmp_path / "dataset.json"
        save_encrypted_tabular(dataset, path)
        restored = load_encrypted_tabular(path)
        assert len(restored) == 6
        assert restored.n_features == 3
        assert restored.scale == dataset.scale
        assert restored.eval_labels.tolist() == dataset.eval_labels.tolist()
        assert restored.samples[0].features_ip == dataset.samples[0].features_ip
        assert restored.labels[0].onehot_bo == dataset.labels[0].onehot_bo

    def test_restored_dataset_trains(self, tmp_path, authority, np_rng):
        """The true test: the reloaded ciphertexts decrypt correctly in
        a full training iteration."""
        client = Client(authority)
        x = np_rng.uniform(-1, 1, size=(12, 3))
        y = (x[:, 0] > 0).astype(int)
        dataset = client.encrypt_tabular(x, y, num_classes=2)
        path = tmp_path / "dataset.json"
        save_encrypted_tabular(dataset, path)
        restored = load_encrypted_tabular(path)
        model = Sequential([Dense(3, 4, rng=np_rng), ReLU(),
                            Dense(4, 2, rng=np_rng)])
        trainer = CryptoNNTrainer(model, authority)
        hist = trainer.fit(restored, SGD(0.5), epochs=1, batch_size=6,
                           rng=np.random.default_rng(0))
        assert len(hist.batch_loss) == 2

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_encrypted_tabular(path)

    def test_none_eval_labels_roundtrip(self, tmp_path, authority, np_rng):
        client = Client(authority)
        x = np_rng.uniform(-1, 1, size=(2, 2))
        dataset = client.encrypt_tabular(x, np.array([0, 1]), num_classes=2)
        dataset.eval_labels = None
        path = tmp_path / "noeval.json"
        save_encrypted_tabular(dataset, path)
        assert load_encrypted_tabular(path).eval_labels is None
