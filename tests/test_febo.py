"""Unit + property tests for the FEBO basic-operations scheme."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fe.errors import FunctionKeyError, UnsupportedOperationError
from repro.fe.febo import Febo, FeboOp
from repro.mathutils.dlog import DiscreteLogError

values = st.integers(min_value=-500, max_value=500)


def roundtrip(febo, mpk, msk, x, op, y, bound=10 ** 6):
    ct = febo.encrypt(mpk, x)
    key = febo.key_derive(msk, ct.cmt, op, y)
    return febo.decrypt(mpk, key, ct, bound=bound)


class TestOps:
    @pytest.fixture()
    def keys(self, febo):
        return febo.setup()

    def test_addition(self, febo, keys):
        mpk, msk = keys
        assert roundtrip(febo, mpk, msk, 17, "+", 25) == 42

    def test_subtraction(self, febo, keys):
        mpk, msk = keys
        assert roundtrip(febo, mpk, msk, 17, "-", 25) == -8

    def test_multiplication(self, febo, keys):
        mpk, msk = keys
        assert roundtrip(febo, mpk, msk, -6, "*", 7) == -42

    def test_exact_division(self, febo, keys):
        mpk, msk = keys
        assert roundtrip(febo, mpk, msk, 84, "/", 7) == 12
        assert roundtrip(febo, mpk, msk, 84, "/", -7) == -12

    def test_multiply_by_zero(self, febo, keys):
        mpk, msk = keys
        assert roundtrip(febo, mpk, msk, 99, "*", 0) == 0

    def test_multiply_by_one_reveals_plaintext(self, febo, keys):
        """The direct-inference capability the paper concedes: an
        authorized decryptor recovers x from x * 1."""
        mpk, msk = keys
        assert roundtrip(febo, mpk, msk, -123, "*", 1) == -123

    def test_add_negative_operand(self, febo, keys):
        mpk, msk = keys
        assert roundtrip(febo, mpk, msk, 10, "+", -25) == -15

    @settings(max_examples=40, deadline=None)
    @given(x=values, y=values, op=st.sampled_from(["+", "-", "*"]))
    def test_property_add_sub_mul(self, params, solver_cache, x, y, op):
        febo = Febo(params, rng=random.Random(0), solver_cache=solver_cache)
        mpk, msk = febo.setup()
        expected = {"+": x + y, "-": x - y, "*": x * y}[op]
        assert roundtrip(febo, mpk, msk, x, op, y) == expected

    @settings(max_examples=30, deadline=None)
    @given(quotient=st.integers(min_value=-50, max_value=50),
           y=st.integers(min_value=1, max_value=50))
    def test_property_exact_division(self, params, solver_cache, quotient, y):
        febo = Febo(params, rng=random.Random(0), solver_cache=solver_cache)
        mpk, msk = febo.setup()
        assert roundtrip(febo, mpk, msk, quotient * y, "/", y) == quotient


class TestFailureModes:
    @pytest.fixture()
    def keys(self, febo):
        return febo.setup()

    def test_division_by_zero_rejected(self, febo, keys):
        mpk, msk = keys
        ct = febo.encrypt(mpk, 10)
        with pytest.raises(FunctionKeyError):
            febo.key_derive(msk, ct.cmt, "/", 0)

    def test_inexact_division_fails_dlog(self, febo, keys):
        mpk, msk = keys
        ct = febo.encrypt(mpk, 10)
        key = febo.key_derive(msk, ct.cmt, "/", 3)
        with pytest.raises(DiscreteLogError):
            febo.decrypt(mpk, key, ct, bound=10 ** 6)

    def test_unknown_operation(self, febo, keys):
        mpk, msk = keys
        ct = febo.encrypt(mpk, 1)
        with pytest.raises(UnsupportedOperationError):
            febo.key_derive(msk, ct.cmt, "%", 2)

    def test_key_bound_to_ciphertext(self, febo, keys):
        """FEBO keys are per-ciphertext; reusing one on another ciphertext
        must fail loudly, not decrypt to garbage."""
        mpk, msk = keys
        ct_a = febo.encrypt(mpk, 1)
        ct_b = febo.encrypt(mpk, 2)
        key_a = febo.key_derive(msk, ct_a.cmt, "+", 5)
        with pytest.raises(FunctionKeyError):
            febo.decrypt(mpk, key_a, ct_b, bound=100)

    def test_result_outside_bound(self, febo, keys):
        mpk, msk = keys
        assert roundtrip(febo, mpk, msk, 50, "*", 50, bound=2501) == 2500
        ct = febo.encrypt(mpk, 51)
        key = febo.key_derive(msk, ct.cmt, "*", 50)
        with pytest.raises(DiscreteLogError):
            febo.decrypt(mpk, key, ct, bound=2500)


class TestSemanticBehaviour:
    def test_fresh_randomness_per_encryption(self, febo):
        mpk, _ = febo.setup()
        a = febo.encrypt(mpk, 7)
        b = febo.encrypt(mpk, 7)
        assert (a.cmt, a.ct) != (b.cmt, b.ct)

    def test_op_coerce(self):
        assert FeboOp.coerce("+") is FeboOp.ADD
        assert FeboOp.coerce(FeboOp.DIV) is FeboOp.DIV
        with pytest.raises(UnsupportedOperationError):
            FeboOp.coerce("pow")

    def test_correctness_follows_paper_equations(self, febo):
        """Explicitly verify the four decryption equations of Section
        III-B against the group-element forms."""
        mpk, msk = febo.setup()
        g = febo.group
        x, y = 9, 4
        ct = febo.encrypt(mpk, x)
        for op, expected in (("+", x + y), ("-", x - y), ("*", x * y)):
            key = febo.key_derive(msk, ct.cmt, op, y)
            assert febo.decrypt_raw(mpk, key, ct) == g.gexp(expected)


class TestDecryptMany:
    """Batched decryption (shared dlog walk) vs per-pair decrypt."""

    def test_matches_per_pair_decrypt(self, febo, rng):
        mpk, msk = febo.setup()
        items = []
        expected = []
        for op in ("+", "-", "*"):
            for _ in range(5):
                x = rng.randrange(-50, 51)
                y = rng.randrange(-50, 51)
                ct = febo.encrypt(mpk, x)
                key = febo.key_derive(msk, ct.cmt, op, y)
                items.append((key, ct))
                expected.append({"+": x + y, "-": x - y, "*": x * y}[op])
        bound = 50 * 50 + 101
        assert febo.decrypt_many(mpk, items, bound) == expected
        assert febo.decrypt_many(mpk, items, bound) == [
            febo.decrypt(mpk, key, ct, bound) for key, ct in items
        ]

    def test_empty(self, febo):
        mpk, _ = febo.setup()
        assert febo.decrypt_many(mpk, [], bound=10) == []

    def test_out_of_bound_raises(self, febo):
        mpk, msk = febo.setup()
        good = febo.encrypt(mpk, 3)
        bad = febo.encrypt(mpk, 40)
        items = [
            (febo.key_derive(msk, good.cmt, "+", 1), good),
            (febo.key_derive(msk, bad.cmt, "*", 40), bad),  # 1600 > bound
        ]
        with pytest.raises(DiscreteLogError):
            febo.decrypt_many(mpk, items, bound=100)
