"""Tests for the secure convolution scheme (Algorithm 3)."""

import random

import numpy as np
import pytest

from repro.fe.errors import CiphertextError
from repro.fe.feip import Feip
from repro.matrix.secure_conv import (
    SecureConvolution,
    conv_output_shape,
    extract_windows,
)


@pytest.fixture()
def conv(params, rng, solver_cache):
    return SecureConvolution(Feip(params, rng=rng, solver_cache=solver_cache))


def plain_convolve(image, kernel, stride, padding):
    """Reference convolution on object arrays."""
    if image.ndim == 2:
        image = image[np.newaxis]
    c, h, w = image.shape
    f = kernel.shape[-1]
    out_h, out_w = conv_output_shape(h, w, f, stride, padding)
    padded = np.zeros((c, h + 2 * padding, w + 2 * padding), dtype=object)
    padded[:, padding:padding + h, padding:padding + w] = image
    out = np.empty((out_h, out_w), dtype=object)
    kernel3 = kernel if kernel.ndim == 3 else kernel[np.newaxis]
    for i in range(out_h):
        for j in range(out_w):
            window = padded[:, i * stride:i * stride + f, j * stride:j * stride + f]
            out[i, j] = int((window * kernel3).sum())
    return out


def rand_img(rng, c, h, w, lo=0, hi=9):
    return np.array(
        [[[rng.randrange(lo, hi + 1) for _ in range(w)] for _ in range(h)]
         for _ in range(c)], dtype=object)


class TestGeometry:
    def test_paper_fig2_example(self):
        """5x5 image, padding 1, filter 3, stride 2 -> 3x3 output."""
        assert conv_output_shape(5, 5, 3, 2, 1) == (3, 3)

    def test_filter_too_big_raises(self):
        with pytest.raises(ValueError):
            conv_output_shape(4, 4, 7, 1, 0)

    def test_extract_windows_count_and_order(self):
        image = np.arange(16, dtype=object).reshape(4, 4)
        windows, out_shape = extract_windows(image, 2, 2, 0)
        assert out_shape == (2, 2)
        assert len(windows) == 4
        assert windows[0] == [0, 1, 4, 5]       # top-left
        assert windows[3] == [10, 11, 14, 15]   # bottom-right

    def test_extract_windows_padding_zeros(self):
        image = np.ones((2, 2), dtype=object)
        windows, out_shape = extract_windows(image, 2, 2, 1)
        assert out_shape == (2, 2)
        assert windows[0] == [0, 0, 0, 1]  # corner window mostly padding

    def test_extract_windows_multichannel(self):
        image = np.stack([np.ones((3, 3), dtype=object),
                          np.full((3, 3), 2, dtype=object)])
        windows, _ = extract_windows(image, 3, 1, 0)
        assert len(windows) == 1
        assert windows[0] == [1] * 9 + [2] * 9  # channel-major flattening

    def test_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            extract_windows(np.zeros((2, 2, 2, 2), dtype=object), 2, 1, 0)


class TestSecureConvolve:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (1, 1)])
    def test_matches_reference(self, conv, rng, stride, padding):
        img = rand_img(rng, 1, 5, 5)
        kernel = np.array(
            [[rng.randrange(-3, 4) for _ in range(3)] for _ in range(3)],
            dtype=object)
        msk = conv.setup(window_length=9)
        enc = conv.pre_process_encryption(img, 3, stride, padding)
        key = conv.derive_filter_key(msk, kernel)
        out = conv.secure_convolve(enc, key, bound=9 * 9 * 3 + 1)
        np.testing.assert_array_equal(out, plain_convolve(img, kernel, stride, padding))

    def test_multichannel_filter_bank(self, conv, rng):
        img = rand_img(rng, 2, 4, 4)
        kernels = [
            np.array([[[rng.randrange(-2, 3) for _ in range(3)]
                       for _ in range(3)] for _ in range(2)], dtype=object)
            for _ in range(3)
        ]
        msk = conv.setup(window_length=2 * 9)
        enc = conv.pre_process_encryption(img, 3, 1, 0)
        keys = conv.derive_filter_bank_keys(msk, kernels)
        out = conv.secure_convolve_bank(enc, keys, bound=18 * 9 * 2 + 1)
        assert out.shape == (3, 2, 2)
        for f, kernel in enumerate(kernels):
            np.testing.assert_array_equal(out[f], plain_convolve(img, kernel, 1, 0))

    def test_setup_required(self, conv, rng):
        with pytest.raises(CiphertextError):
            conv.pre_process_encryption(rand_img(rng, 1, 4, 4), 3, 1, 0)

    def test_window_length_mismatch(self, conv, rng):
        conv.setup(window_length=4)  # 2x2 windows only
        with pytest.raises(CiphertextError):
            conv.pre_process_encryption(rand_img(rng, 1, 5, 5), 3, 1, 0)

    def test_all_zero_image(self, conv):
        img = np.zeros((1, 4, 4), dtype=object)
        kernel = np.ones((2, 2), dtype=object)
        msk = conv.setup(window_length=4)
        enc = conv.pre_process_encryption(img, 2, 2, 0)
        key = conv.derive_filter_key(msk, kernel)
        out = conv.secure_convolve(enc, key, bound=100)
        assert (out == 0).all()
