"""Supervisor tests: crash-loop backoff, giveup latching, SIGKILL healing.

The crash-loop tests drive :class:`~repro.rpc.supervisor.Supervisor`
against trivially-dying children and pin the restart schedule: backoff
floors grow exponentially, a child that keeps dying latches ``giveup``
after its restart budget (no restart storms), and a child that stays up
past ``stable_seconds`` earns its failure budget back.

The e2e test is the acceptance bar for the self-healing runtime:
``kill -9`` BOTH the training server and the authority mid-run under
the supervisor; the healed run's final weights must be byte-identical
(``np.array_equal``) to an uninterrupted run's, because the authority
restarts from its key file and the trainer resumes from its durable
checkpoint.  Its supervision report lands in
``benchmarks/results/SUPERVISOR_e2e.json`` for CI artifact upload.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import signal
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.checkpoint import load_model_weights, save_authority
from repro.core.config import CryptoNNConfig
from repro.core.encdata import merge_encrypted_tabular
from repro.core.entities import Client, TrustedAuthority
from repro.data.preprocess import normalize_features, shared_feature_scale
from repro.data.tabular import load_clinics
from repro.rpc import (
    ChildSpec,
    RetryPolicy,
    RpcError,
    Supervisor,
    build_mlp,
    fetch_status,
    free_port,
    repro_argv,
    run_training,
    upload_shard,
    wait_for_port,
)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent \
    / "benchmarks" / "results"

HIDDEN, EPOCHS, BATCH_SIZE, LR, SEED = 6, 2, 10, 0.5, 0


def _crasher_spec(exit_code: int = 13) -> ChildSpec:
    return ChildSpec(
        name="crasher",
        argv=[sys.executable, "-c", f"import sys; sys.exit({exit_code})"])


def _drive(supervisor: Supervisor, until, timeout: float) -> None:
    """Poll the supervisor on the test thread until ``until()``."""
    deadline = time.monotonic() + timeout
    while not until():
        assert time.monotonic() < deadline, "supervisor never converged"
        supervisor.poll_once()
        time.sleep(0.02)


@pytest.mark.timeout_guard(120)
class TestCrashLoop:
    def test_crash_loop_backs_off_then_gives_up(self, monkeypatch):
        """Instantly-dying child: restarts are spaced by growing backoff
        and stop for good at the policy's budget -- counted, latched,
        no restart storm."""
        spawn_times: list[float] = []
        orig_spawn = Supervisor._spawn

        def spying_spawn(self, child):
            spawn_times.append(time.monotonic())
            orig_spawn(self, child)

        monkeypatch.setattr(Supervisor, "_spawn", spying_spawn)
        supervisor = Supervisor(
            [_crasher_spec()],
            restart_policy=RetryPolicy(max_attempts=3, base_delay=0.2,
                                       max_delay=1.0, jitter=False),
            stable_seconds=30.0, poll_interval=0.02)
        try:
            supervisor.start()
            _drive(supervisor, supervisor.all_gave_up, timeout=60)
            child = supervisor.status()["crasher"]
            assert child["gave_up"] is True
            assert child["alive"] is False
            assert child["restarts"] == 2  # 3 spawns total, then latch
            assert child["crashes"] == 3
            assert child["last_exit"] == 13
            counters = supervisor.stats_snapshot()["counters"]
            assert counters["repro_supervisor_spawns_total"] == 3
            assert counters["repro_supervisor_restarts_total"] == 2
            assert counters["repro_supervisor_crashes_total"] == 3
            assert counters["repro_supervisor_giveups_total"] == 1
            # deterministic backoff floors: >=0.2s before the first
            # restart, >=0.4s before the second (gap includes the
            # child's own lifetime, so these are lower bounds)
            gaps = [b - a for a, b in zip(spawn_times, spawn_times[1:])]
            assert len(gaps) == 2
            assert gaps[0] >= 0.2
            assert gaps[1] >= 0.4
            # latched: further polls never spawn again
            for _ in range(20):
                supervisor.poll_once()
            assert len(spawn_times) == 3
        finally:
            supervisor.stop()

    def test_stable_uptime_resets_the_failure_budget(self):
        """A child that stays up past stable_seconds gets its restart
        budget back: occasional crashes spaced by healthy uptime never
        accumulate into a giveup."""
        spec = ChildSpec(
            name="flapper",
            argv=[sys.executable, "-c",
                  "import sys, time; time.sleep(0.6); sys.exit(7)"])
        supervisor = Supervisor(
            [spec],
            restart_policy=RetryPolicy(max_attempts=2, base_delay=0.05,
                                       max_delay=0.1, jitter=False),
            stable_seconds=0.3, poll_interval=0.02)
        try:
            supervisor.start()
            # max_attempts=2 allows one restart per streak; three spawns
            # can only happen if healthy uptime reset the streak
            _drive(supervisor,
                   lambda: supervisor.status()["flapper"]["restarts"] >= 2,
                   timeout=60)
            assert not supervisor.all_gave_up()
            assert supervisor.status()["flapper"]["gave_up"] is False
        finally:
            supervisor.stop()


# ---------------------------------------------------------------------------
# acceptance: kill -9 both services mid-run, heal to byte-exact weights
# ---------------------------------------------------------------------------

def _make_shards(n_clients=2, samples=15, features=4):
    shards = load_clinics(n_clinics=n_clients, samples_per_clinic=samples,
                          n_features=features, seed=3)
    scale = shared_feature_scale([s.x for s in shards])
    return [(normalize_features(s.x, scale), s.y) for s in shards]


def _weights_of(trainer):
    return [
        {name: np.array(value, copy=True)
         for name, value in layer.params.items()}
        for layer in trainer.model.layers
        if getattr(layer, "params", None)
    ]


@pytest.mark.timeout_guard(600)
class TestSupervisedHealing:
    def test_sigkill_both_services_heals_to_byte_exact_model(self, tmp_path):
        shards = _make_shards()
        n_features = shards[0][0].shape[1]

        # ---- uninterrupted reference, same authority key file --------
        authority = TrustedAuthority(CryptoNNConfig(),
                                     rng=random.Random(SEED))
        authority_file = str(tmp_path / "authority.json")
        save_authority(authority, authority_file)
        parts = [
            Client(authority, name=f"clinic-{i}").encrypt_tabular(x, y, 2)
            for i, (x, y) in enumerate(shards)
        ]
        ref_trainer, ref_history, ref_accuracy = run_training(
            merge_encrypted_tabular(parts), authority, hidden=HIDDEN,
            epochs=EPOCHS, batch_size=BATCH_SIZE, learning_rate=LR,
            seed=SEED)
        ref_weights = _weights_of(ref_trainer)

        # ---- the supervised deployment -------------------------------
        auth_port, train_port = free_port(), free_port()
        checkpoint = str(tmp_path / "job.npz")
        model_out = str(tmp_path / "healed_model.npz")
        supervisor = Supervisor(
            [
                ChildSpec(
                    name="authority",
                    argv=repro_argv(
                        "serve-authority", "--port", str(auth_port),
                        "--authority", authority_file),
                    port=auth_port),
                ChildSpec(
                    name="trainer",
                    argv=repro_argv(
                        "serve-train", "--port", str(train_port),
                        "--authority-port", str(auth_port),
                        "--expected-clients", "2",
                        "--hidden", str(HIDDEN),
                        "--epochs", str(EPOCHS),
                        "--batch-size", str(BATCH_SIZE),
                        "--learning-rate", str(LR),
                        "--seed", str(SEED),
                        "--checkpoint", checkpoint,
                        "--checkpoint-every", "1",
                        "--model-out", model_out,
                        "--authority-timeout", "5",
                        "--resume", "--stay"),
                    port=train_port),
            ],
            restart_policy=RetryPolicy(max_attempts=5, base_delay=0.2,
                                       max_delay=2.0, jitter=False),
            stable_seconds=2.0, poll_interval=0.05)
        loop = threading.Thread(target=supervisor.run, daemon=True)
        try:
            supervisor.start()
            loop.start()
            wait_for_port("127.0.0.1", auth_port, timeout=30)
            wait_for_port("127.0.0.1", train_port, timeout=30)

            # resumable chunked uploads (different nonce rngs than the
            # reference: decryption is exact, so results match anyway)
            for i, (x, y) in enumerate(shards):
                result = upload_shard(
                    ("127.0.0.1", auth_port), ("127.0.0.1", train_port),
                    x, y, 2, name=f"clinic-{i}",
                    rng=random.Random(100 + i), chunk_bytes=256)
                assert result["ack"]["complete"] is True

            # kill -9 the trainer as soon as the first checkpoint lands
            # (mid-epoch: 6 batches total, checkpointed every batch)
            deadline = time.monotonic() + 120
            while not os.path.exists(checkpoint):
                assert time.monotonic() < deadline, "no checkpoint appeared"
                time.sleep(0.02)
            trainer_pid = supervisor._children["trainer"].proc.pid
            os.kill(trainer_pid, signal.SIGKILL)
            # ... and kill -9 the authority while the trainer is down,
            # so the healed trainer must also ride out the authority's
            # own death and restart
            authority_pid = supervisor._children["authority"].proc.pid
            os.kill(authority_pid, signal.SIGKILL)

            # the supervisor heals both: restarted authority re-derives
            # identical keys from its file, restarted trainer resumes
            # the job from the durable dataset + checkpoint
            status = None
            deadline = time.monotonic() + 420
            while time.monotonic() < deadline:
                try:
                    status = fetch_status(("127.0.0.1", train_port),
                                          timeout=5.0)
                except RpcError:
                    time.sleep(0.2)
                    continue
                if status.state in ("done", "failed"):
                    break
                time.sleep(0.2)
            assert status is not None, "trainer never came back"
            assert status.state == "done", status.detail

            child_status = supervisor.status()
            assert child_status["trainer"]["restarts"] >= 1
            assert child_status["authority"]["restarts"] >= 1
            assert not supervisor.all_gave_up()

            # byte-exact healing: accuracy, loss curves, and weights
            assert status.accuracy == ref_accuracy
            assert status.detail["epoch_loss"] == ref_history.epoch_loss
            assert status.detail["epoch_accuracy"] == \
                ref_history.epoch_accuracy
            deadline = time.monotonic() + 30
            while not os.path.exists(model_out):
                assert time.monotonic() < deadline, "model file missing"
                time.sleep(0.05)
            healed = build_mlp(n_features, HIDDEN, 2, SEED)
            load_model_weights(healed, model_out)
            healed_weights = [
                {name: np.asarray(value)
                 for name, value in layer.params.items()}
                for layer in healed.layers
                if getattr(layer, "params", None)
            ]
            assert len(healed_weights) == len(ref_weights)
            for got_layer, ref_layer in zip(healed_weights, ref_weights):
                assert set(got_layer) == set(ref_layer)
                for name in ref_layer:
                    assert np.array_equal(got_layer[name],
                                          ref_layer[name])

            RESULTS_DIR.mkdir(parents=True, exist_ok=True)
            payload = supervisor.stats_snapshot()
            payload["scenario"] = "sigkill_trainer_and_authority_mid_run"
            payload["byte_exact"] = True
            payload["accuracy"] = status.accuracy
            (RESULTS_DIR / "SUPERVISOR_e2e.json").write_text(
                json.dumps(payload, indent=2, sort_keys=True))
        finally:
            supervisor.stop()
            loop.join(timeout=10)
