"""The exact-resume guarantee, in-process and across process death.

The paper's core claim (decryption recovers exact integers, so the
secure run's float trajectory equals plaintext training) only survives
deployment if a crashed training run can resume *bit-exactly*.  These
tests interrupt ``fit()`` mid-epoch, resume from the durable
:class:`~repro.core.checkpoint.TrainerCheckpoint`, and assert the final
weights, loss curve and batch schedule equal the uninterrupted run's
byte-for-byte (``np.array_equal`` / ``==``, never ``allclose``) -- both
in-process and through a SIGKILLed-and-restarted ``serve-train``.
"""

import dataclasses
import multiprocessing
import os
import random
import time

import numpy as np
import pytest

from repro.core.config import CryptoNNConfig
from repro.core.cryptonn import CryptoNNTrainer
from repro.core.entities import Client, TrustedAuthority
from repro.data.preprocess import normalize_features, shared_feature_scale
from repro.data.tabular import load_clinics
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD, Adam
from repro.rpc import (
    AuthorityService,
    RpcRemoteError,
    ServiceThread,
    TrainingService,
    fetch_status,
    free_port,
    request_checkpoint,
    run_training,
    upload_shard,
    wait_for_port,
)


class Interrupted(Exception):
    """Stand-in for a crash inside the training loop."""


@pytest.fixture()
def authority():
    return TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))


@pytest.fixture()
def enc_dataset(authority):
    shard = load_clinics(n_clinics=1, samples_per_clinic=40, n_features=4,
                         seed=7)[0]
    x = np.clip(shard.x / (np.abs(shard.x).max() + 1e-9), -1, 1)
    return Client(authority).encrypt_tabular(x, shard.y, num_classes=2)


def make_model(seed):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(4, 6, rng=rng), ReLU(), Dense(6, 2, rng=rng)])


def weights_equal(a, b):
    return all(
        set(la) == set(lb) and all(np.array_equal(la[k], lb[k]) for k in la)
        for la, lb in zip(a, b)
    )


def assert_histories_identical(got, expected):
    assert got.batch_loss == expected.batch_loss
    assert got.batch_accuracy == expected.batch_accuracy
    assert got.epoch_loss == expected.epoch_loss
    assert got.epoch_accuracy == expected.epoch_accuracy


FIT_KW = dict(epochs=3, batch_size=16)  # 40 samples -> 3 batches/epoch


class TestInProcessResume:
    def _reference(self, authority, enc_dataset, optimizer):
        trainer = CryptoNNTrainer(make_model(0), authority)
        history = trainer.fit(enc_dataset, optimizer,
                              rng=np.random.default_rng(1), **FIT_KW)
        return trainer.model.get_weights(), history

    def _interrupt_at(self, authority, enc_dataset, optimizer, path, batch):
        trainer = CryptoNNTrainer(make_model(0), authority)

        def crash(i, loss, acc):
            if i == batch:
                raise Interrupted

        with pytest.raises(Interrupted):
            trainer.fit(enc_dataset, optimizer, rng=np.random.default_rng(1),
                        checkpoint_every=1, checkpoint_path=path,
                        on_batch=crash, **FIT_KW)

    @pytest.mark.parametrize("interrupt_batch", [4, 6])
    def test_resume_equals_uninterrupted(self, authority, enc_dataset,
                                         tmp_path, interrupt_batch):
        """Interrupt so the last checkpoint lands mid-epoch (batch 4) or
        exactly on an epoch boundary (batch 6, with 3 batches/epoch);
        either way the resumed run is byte-identical."""
        ref_weights, ref_history = self._reference(
            authority, enc_dataset, SGD(0.5, momentum=0.9))
        path = tmp_path / "trainer.npz"
        self._interrupt_at(authority, enc_dataset, SGD(0.5, momentum=0.9),
                           path, interrupt_batch)
        # resume on a DIFFERENTLY-initialized model and optimizer: every
        # piece of state must come from the checkpoint
        resumed = CryptoNNTrainer(make_model(999), authority)
        history = resumed.fit(enc_dataset, SGD(0.01),
                              rng=np.random.default_rng(555),
                              checkpoint_path=path, resume=True, **FIT_KW)
        assert weights_equal(resumed.model.get_weights(), ref_weights)
        assert_histories_identical(history, ref_history)

    def test_resume_with_adam(self, authority, enc_dataset, tmp_path):
        """Adam's moments and bias-correction timestep checkpoint too."""
        ref_weights, ref_history = self._reference(
            authority, enc_dataset, Adam(0.05))
        path = tmp_path / "trainer.npz"
        self._interrupt_at(authority, enc_dataset, Adam(0.05), path, 4)
        resumed = CryptoNNTrainer(make_model(999), authority)
        history = resumed.fit(enc_dataset, Adam(9.9),
                              rng=np.random.default_rng(2),
                              checkpoint_path=path, resume=True, **FIT_KW)
        assert weights_equal(resumed.model.get_weights(), ref_weights)
        assert_histories_identical(history, ref_history)

    def test_resume_from_completed_checkpoint_is_a_noop(self, authority,
                                                        enc_dataset,
                                                        tmp_path):
        path = tmp_path / "trainer.npz"
        trainer = CryptoNNTrainer(make_model(0), authority)
        history = trainer.fit(enc_dataset, SGD(0.5),
                              rng=np.random.default_rng(1),
                              checkpoint_path=path, **FIT_KW)
        final = trainer.model.get_weights()
        again = CryptoNNTrainer(make_model(999), authority)
        rerun = again.fit(enc_dataset, SGD(0.5),
                          rng=np.random.default_rng(1),
                          checkpoint_path=path, resume=True, **FIT_KW)
        assert weights_equal(again.model.get_weights(), final)
        assert_histories_identical(rerun, history)

    def test_resume_without_checkpoint_file_starts_fresh(self, authority,
                                                         enc_dataset,
                                                         tmp_path):
        """A crash before the first periodic write leaves no file; the
        resumed run must simply train from scratch, identically."""
        ref_weights, ref_history = self._reference(
            authority, enc_dataset, SGD(0.5))
        trainer = CryptoNNTrainer(make_model(0), authority)
        history = trainer.fit(enc_dataset, SGD(0.5),
                              rng=np.random.default_rng(1),
                              checkpoint_path=tmp_path / "none.npz",
                              resume=True, **FIT_KW)
        assert weights_equal(trainer.model.get_weights(), ref_weights)
        assert_histories_identical(history, ref_history)

    def test_resume_rejects_mismatched_run(self, authority, enc_dataset,
                                           tmp_path):
        path = tmp_path / "trainer.npz"
        self._interrupt_at(authority, enc_dataset, SGD(0.5), path, 4)
        trainer = CryptoNNTrainer(make_model(0), authority)
        with pytest.raises(ValueError, match="different run"):
            trainer.fit(enc_dataset, SGD(0.5),
                        rng=np.random.default_rng(1), epochs=3,
                        batch_size=20,  # != the checkpointed batch_size
                        checkpoint_path=path, resume=True)
        with pytest.raises(ValueError, match="different run"):
            trainer.fit(enc_dataset, Adam(0.5),  # optimizer type changed
                        rng=np.random.default_rng(1),
                        checkpoint_path=path, resume=True, **FIT_KW)

    def test_checkpoint_args_validated(self, authority, enc_dataset):
        trainer = CryptoNNTrainer(make_model(0), authority)
        with pytest.raises(ValueError, match="checkpoint_path"):
            trainer.fit(enc_dataset, SGD(0.5), checkpoint_every=1, **FIT_KW)
        with pytest.raises(ValueError, match="checkpoint_every"):
            trainer.fit(enc_dataset, SGD(0.5), checkpoint_every=0,
                        checkpoint_path="x.npz", **FIT_KW)

    def test_periodic_checkpoints_observed(self, authority, enc_dataset,
                                           tmp_path):
        path = tmp_path / "trainer.npz"
        seen = []
        trainer = CryptoNNTrainer(make_model(0), authority)
        trainer.fit(enc_dataset, SGD(0.5), rng=np.random.default_rng(1),
                    epochs=1, batch_size=16, checkpoint_every=2,
                    checkpoint_path=path,
                    on_checkpoint=lambda c: seen.append(
                        (c.batch_counter, c.completed)))
        # 3 batches: one periodic write at batch 2, one final (completed)
        assert seen == [(2, False), (3, True)]
        assert os.path.exists(path)

    def test_checkpoint_trigger_writes_on_demand(self, authority,
                                                 enc_dataset, tmp_path):
        """The trigger is polled after every batch; a True poll writes a
        snapshot even with no periodic cadence configured."""
        path = tmp_path / "trainer.npz"
        polls = {"n": 0}

        def trigger():
            polls["n"] += 1
            return polls["n"] == 2

        seen = []
        trainer = CryptoNNTrainer(make_model(0), authority)
        trainer.fit(enc_dataset, SGD(0.5), rng=np.random.default_rng(1),
                    epochs=1, batch_size=16, checkpoint_path=path,
                    checkpoint_trigger=trigger,
                    on_checkpoint=lambda c: seen.append(
                        (c.batch_counter, c.completed)))
        assert polls["n"] == 3  # once per batch
        assert seen == [(2, False), (3, True)]


# ---------------------------------------------------------------------------
# the train-checkpoint control message (on-demand snapshots)
# ---------------------------------------------------------------------------

@pytest.mark.timeout_guard(120)
class TestTrainCheckpointMessage:
    def test_request_checkpoint_over_the_wire(self, tmp_path):
        authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))
        auth_thread = ServiceThread(AuthorityService(authority))
        auth_addr = auth_thread.start()
        service = TrainingService(
            *auth_addr, expected_clients=1, hidden=4, epochs=4,
            batch_size=5, seed=0,
            checkpoint_path=str(tmp_path / "job.npz"))
        train_thread = ServiceThread(service)
        train_addr = train_thread.start()
        try:
            x, y = _make_shard()
            upload_shard(auth_addr, train_addr, x, y, 2, name="clinic-0",
                         rng=random.Random(1))
            infos = []
            deadline = time.monotonic() + 90
            while True:
                info = request_checkpoint(train_addr, name="driver")
                infos.append(info)
                if info["state"] in ("done", "failed"):
                    break
                assert time.monotonic() < deadline
                time.sleep(0.05)
            # either we caught the run mid-flight (snapshot scheduled,
            # then written by the training thread) or it finished first
            assert (any(i["scheduled"] for i in infos)
                    or infos[-1]["state"] == "done")
            train_thread.call(lambda: service.wait_done(timeout=90),
                              timeout=100)
            assert service.state == "done", service.error
            assert os.path.exists(tmp_path / "job.npz")
            assert service.last_checkpoint["completed"] is True
        finally:
            train_thread.stop()
            auth_thread.stop()

    def test_unconfigured_server_refuses(self):
        service = TrainingService("127.0.0.1", free_port(),
                                  expected_clients=1)
        thread = ServiceThread(service)
        addr = thread.start()
        try:
            with pytest.raises(RpcRemoteError, match="checkpoint path"):
                request_checkpoint(addr)
        finally:
            thread.stop()


# ---------------------------------------------------------------------------
# killed-and-restarted training service (the deployment shape)
# ---------------------------------------------------------------------------

HIDDEN, EPOCHS, BATCH_SIZE, LR, SEED = 4, 6, 5, 0.5, 0


def _make_shard():
    shards = load_clinics(n_clinics=1, samples_per_clinic=10, n_features=4,
                          seed=3)
    scale = shared_feature_scale([s.x for s in shards])
    return normalize_features(shards[0].x, scale), shards[0].y


def _serve_authority_proc(port):
    from repro.cli import main
    main(["serve-authority", "--port", str(port), "--seed", str(SEED)])


def _serve_train_proc(port, authority_port, checkpoint, resume):
    from repro.cli import main
    argv = ["serve-train", "--port", str(port),
            "--authority-port", str(authority_port),
            "--expected-clients", "1", "--hidden", str(HIDDEN),
            "--epochs", str(EPOCHS), "--batch-size", str(BATCH_SIZE),
            "--learning-rate", str(LR), "--seed", str(SEED),
            "--checkpoint", checkpoint, "--checkpoint-every", "1", "--stay"]
    if resume:
        argv.append("--resume")
    main(argv)


@pytest.mark.timeout_guard(300)
class TestKilledAndRestartedService:
    def test_resumed_service_matches_uninterrupted_run(self, tmp_path):
        """SIGKILL the training server mid-run, restart it with
        ``--resume``: final accuracy and the full epoch curves must equal
        the uninterrupted run's exactly."""
        x, y = _make_shard()
        ref_authority = TrustedAuthority(CryptoNNConfig(),
                                         rng=random.Random(SEED))
        enc = Client(ref_authority, name="clinic-0").encrypt_tabular(x, y, 2)
        config = dataclasses.replace(ref_authority.config,
                                     batch_key_requests=True)
        _, ref_history, ref_accuracy = run_training(
            enc, ref_authority, hidden=HIDDEN, epochs=EPOCHS,
            batch_size=BATCH_SIZE, learning_rate=LR, seed=SEED,
            config=config)

        checkpoint = str(tmp_path / "job.npz")
        ctx = multiprocessing.get_context("fork")
        auth_port = free_port()
        authority_proc = ctx.Process(
            target=_serve_authority_proc, args=(auth_port,), daemon=True)
        first_port = free_port()
        first_proc = ctx.Process(
            target=_serve_train_proc,
            args=(first_port, auth_port, checkpoint, False), daemon=True)
        second_proc = None
        try:
            authority_proc.start()
            wait_for_port("127.0.0.1", auth_port, timeout=30)
            first_proc.start()
            wait_for_port("127.0.0.1", first_port, timeout=30)
            upload_shard(("127.0.0.1", auth_port),
                         ("127.0.0.1", first_port), x, y, 2,
                         name="clinic-0", rng=random.Random(100))

            # kill -9 as soon as the first checkpoint lands (mid-run:
            # 12 batches total, checkpoints every batch)
            deadline = time.monotonic() + 120
            while not os.path.exists(checkpoint):
                assert time.monotonic() < deadline, "no checkpoint appeared"
                time.sleep(0.02)
            first_proc.kill()
            first_proc.join(timeout=10)
            assert os.path.exists(checkpoint + ".dataset.json")

            # restart with --resume: no re-uploads, training continues
            second_port = free_port()
            second_proc = ctx.Process(
                target=_serve_train_proc,
                args=(second_port, auth_port, checkpoint, True), daemon=True)
            second_proc.start()
            wait_for_port("127.0.0.1", second_port, timeout=30)

            # a client retrying its upload (its ack died with the first
            # server) must get a duplicate-ack, not an error: the
            # resumed job already holds the shard durably on disk
            resend = upload_shard(("127.0.0.1", auth_port),
                                  ("127.0.0.1", second_port), x, y, 2,
                                  name="clinic-0", rng=random.Random(101))
            assert resend["ack"]["duplicate"] is True

            deadline = time.monotonic() + 240
            while True:
                status = fetch_status(("127.0.0.1", second_port))
                if status.state in ("done", "failed"):
                    break
                assert time.monotonic() < deadline, status.state
                time.sleep(0.2)

            assert status.state == "done", status.detail
            assert status.accuracy == ref_accuracy
            assert status.detail["epoch_loss"] == ref_history.epoch_loss
            assert status.detail["epoch_accuracy"] == \
                ref_history.epoch_accuracy
            assert status.detail["checkpoint"]["resumable"] is True
            assert status.detail["checkpoint"]["written"] is True
        finally:
            for proc in (second_proc, first_proc, authority_proc):
                if proc is not None and proc.is_alive():
                    proc.kill()
                    proc.join(timeout=10)
