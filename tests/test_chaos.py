"""Chaos-hardening tests: deterministic fault injection over real sockets.

The crypto-grade acceptance bar: a training run through a
:class:`~repro.rpc.chaos.ChaosProxy` dropping/stalling a double-digit
percentage of authority exchanges must reproduce the clean run's
weights, loss curve and accuracy **byte-for-byte** -- key derivation is
deterministic and idempotent, so transport retries cannot perturb the
floating-point trajectory.  Same bar across an authority process
kill-and-restart mid-run.

The chaos e2e test also writes its fault-counter summary to
``benchmarks/results/CHAOS_fault_counters.json`` so CI can upload it as
a workflow artifact next to the ``BENCH_*.json`` files.
"""

from __future__ import annotations

import json
import pathlib
import random
import time

import numpy as np
import pytest

from repro.core.checkpoint import load_authority, save_authority
from repro.core.config import CryptoNNConfig
from repro.core.encdata import merge_encrypted_tabular
from repro.core.entities import Client, TrustedAuthority
from repro.data.preprocess import normalize_features, shared_feature_scale
from repro.data.tabular import load_clinics
from repro.rpc import (
    AuthorityService,
    ChaosConfig,
    ChaosProxy,
    ChaosSchedule,
    MetricsRequest,
    RemoteAuthority,
    RetryPolicy,
    RpcEndpoint,
    ServiceThread,
    TrainingService,
    run_training,
    upload_shard,
)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent \
    / "benchmarks" / "results"

HIDDEN, EPOCHS, BATCH_SIZE, LR, SEED = 6, 2, 10, 0.5, 0


# ---------------------------------------------------------------------------
# the deterministic schedule
# ---------------------------------------------------------------------------

class TestChaosSchedule:
    def test_same_seed_same_decisions(self):
        config = ChaosConfig.uniform(0.5)
        a = ChaosSchedule(seed=42, config=config).preview(64)
        b = ChaosSchedule(seed=42, config=config).preview(64)
        assert a == b
        assert ChaosSchedule(seed=43, config=config).preview(64) != a

    def test_fault_for_is_memoized_pure(self):
        sched = ChaosSchedule(seed=1, config=ChaosConfig.uniform(0.9))
        # out-of-order queries answer identically to in-order ones
        late = sched.fault_for(10)
        assert sched.preview(11)[10] == late
        assert sched.fault_for(10) == late

    def test_rates_realized_approximately(self):
        sched = ChaosSchedule(seed=0, config=ChaosConfig(reset_before=0.25))
        draws = sched.preview(2000)
        rate = sum(d == "reset-before" for d in draws) / len(draws)
        assert 0.18 <= rate <= 0.32
        assert set(draws) <= {None, "reset-before"}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(reset_before=0.7, stall=0.7)  # sums past 1
        with pytest.raises(ValueError):
            ChaosConfig(corrupt=-0.1)


# ---------------------------------------------------------------------------
# per-fault proxy behavior against a live authority
# ---------------------------------------------------------------------------

class _ScriptedSchedule:
    """Fixed decision list (then clean) -- for per-fault assertions."""

    def __init__(self, decisions, config: ChaosConfig | None = None):
        self._decisions = list(decisions)
        self.config = config if config is not None else ChaosConfig()

    def fault_for(self, index: int):
        if index < len(self._decisions):
            return self._decisions[index]
        return None


@pytest.fixture()
def proxied_authority():
    """A live authority with a chaos proxy in front, scripted per test."""
    authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))
    auth_thread = ServiceThread(AuthorityService(authority))
    auth_host, auth_port = auth_thread.start()
    proxy = ChaosProxy(auth_host, auth_port)
    proxy_thread = ServiceThread(proxy)
    proxy_addr = proxy_thread.start()
    yield authority, proxy, proxy_addr
    proxy_thread.stop()
    auth_thread.stop()


@pytest.mark.timeout_guard(120)
class TestChaosProxyFaults:
    def _remote(self, addr, **kwargs):
        kwargs.setdefault("policy", RetryPolicy(max_attempts=6,
                                                base_delay=0.01,
                                                max_delay=0.1))
        return RemoteAuthority(*addr, name="server", **kwargs)

    def test_clean_proxy_is_transparent(self, proxied_authority):
        authority, proxy, addr = proxied_authority
        with self._remote(addr) as remote:
            assert remote.params == authority.params
            keys = remote.derive_feip_keys_batch([[1, 2, 3]])
            assert keys == authority.derive_feip_keys_batch([[1, 2, 3]])
        assert proxy.stats["exchanges"] >= 2
        assert proxy.fault_summary()["drops"] == 0

    @pytest.mark.parametrize("fault", ["reset-before", "reset-after",
                                       "truncate", "corrupt"])
    def test_drop_faults_are_retried_through(self, proxied_authority, fault):
        authority, proxy, addr = proxied_authority
        # fault the 2nd and 3rd exchanges; handshake and the rest clean
        proxy.schedule = _ScriptedSchedule([None, fault, fault])
        with self._remote(addr) as remote:
            keys = remote.derive_feip_keys_batch([[5, -6, 7]])
            assert keys == authority.derive_feip_keys_batch([[5, -6, 7]])
            stats = remote.endpoint.stats.snapshot()
        assert proxy.stats[fault] == 2
        assert stats["retries"] >= 2
        assert stats["drops"] >= 2
        assert stats["giveups"] == 0

    def test_stall_converts_into_timeout_then_retry(self, proxied_authority):
        authority, proxy, addr = proxied_authority
        proxy.schedule = _ScriptedSchedule(
            [None, "stall"], ChaosConfig(stall_s=5.0))
        with self._remote(addr, timeout=0.5) as remote:
            keys = remote.derive_feip_keys_batch([[1, 1]])
            assert keys == authority.derive_feip_keys_batch([[1, 1]])
            stats = remote.endpoint.stats.snapshot()
        assert stats["timeouts"] >= 1
        assert stats["giveups"] == 0
        assert proxy.fault_summary()["timeouts"] == 1

    def test_delay_fault_only_adds_latency(self, proxied_authority):
        authority, proxy, addr = proxied_authority
        proxy.schedule = _ScriptedSchedule(
            [None, "delay"], ChaosConfig(delay_s=0.3))
        with self._remote(addr) as remote:
            start = time.monotonic()
            keys = remote.derive_feip_keys_batch([[2, 2]])
            elapsed = time.monotonic() - start
            assert keys == authority.derive_feip_keys_batch([[2, 2]])
            assert elapsed >= 0.3
            assert remote.endpoint.stats.retries == 0

    def test_exhausted_policy_gives_up_with_counters(self, proxied_authority):
        _, proxy, addr = proxied_authority
        proxy.schedule = _ScriptedSchedule([None] + ["reset-before"] * 50)
        with self._remote(addr) as remote:
            with pytest.raises(Exception):
                remote.derive_feip_keys_batch([[1]])
            assert remote.endpoint.stats.giveups == 1
            # 1 handshake attempt + the policy's 6 for the failed request
            assert remote.endpoint.stats.attempts == 7
            assert remote.endpoint.stats.drops == 6


# ---------------------------------------------------------------------------
# end-to-end: training through weather is byte-for-byte clean
# ---------------------------------------------------------------------------

def _make_shards(n_clients=2, samples=15, features=4):
    shards = load_clinics(n_clinics=n_clients, samples_per_clinic=samples,
                          n_features=features, seed=3)
    scale = shared_feature_scale([s.x for s in shards])
    return [(normalize_features(s.x, scale), s.y) for s in shards]


def _clean_reference(shards):
    """The in-process run every chaos scenario must reproduce exactly."""
    authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(SEED))
    parts = [
        Client(authority, name=f"clinic-{i}").encrypt_tabular(x, y, 2)
        for i, (x, y) in enumerate(shards)
    ]
    merged = merge_encrypted_tabular(parts)
    trainer, history, accuracy = run_training(
        merged, authority, hidden=HIDDEN, epochs=EPOCHS,
        batch_size=BATCH_SIZE, learning_rate=LR, seed=SEED)
    return _weights_of(trainer), history, accuracy


def _weights_of(trainer):
    return [
        {name: np.array(value, copy=True)
         for name, value in layer.params.items()}
        for layer in trainer.model.layers
        if getattr(layer, "params", None)
    ]


def _assert_identical_run(service, ref_weights, ref_history, ref_accuracy):
    assert service.state == "done", service.error
    assert service.accuracy == ref_accuracy
    got = _weights_of(service.trainer)
    assert len(got) == len(ref_weights)
    for got_layer, ref_layer in zip(got, ref_weights):
        assert set(got_layer) == set(ref_layer)
        for name in ref_layer:
            assert np.array_equal(got_layer[name], ref_layer[name])
    assert service.history.batch_loss == ref_history.batch_loss
    assert service.history.epoch_loss == ref_history.epoch_loss


@pytest.mark.timeout_guard(420)
class TestChaosTraining:
    def test_training_through_weather_is_byte_exact(self):
        """Seeded chaos on the authority link (>=10% resets+stalls, plus
        truncation/corruption/latency): the run retries through every
        fault and lands on the clean run's exact weights and history."""
        shards = _make_shards()
        ref_weights, ref_history, ref_accuracy = _clean_reference(shards)

        authority = TrustedAuthority(CryptoNNConfig(),
                                     rng=random.Random(SEED))
        auth_thread = ServiceThread(AuthorityService(authority))
        auth_addr = auth_thread.start()
        # >= 10% resets+stalls on the authority link, plus every other
        # fault kind at a lower rate; stalls resolve fast via the short
        # authority timeout below
        chaos = ChaosConfig(reset_before=0.06, reset_after=0.05, stall=0.04,
                            truncate=0.03, corrupt=0.03, delay=0.03,
                            stall_s=3.0)
        proxy = ChaosProxy(*auth_addr, seed=7, config=chaos)
        proxy_thread = ServiceThread(proxy)
        proxy_addr = proxy_thread.start()

        service = TrainingService(
            *proxy_addr, expected_clients=len(shards), hidden=HIDDEN,
            epochs=EPOCHS, batch_size=BATCH_SIZE, learning_rate=LR,
            seed=SEED, authority_timeout=1.5,
            retry_policy=RetryPolicy(max_attempts=10, base_delay=0.02,
                                     max_delay=0.3),
            chaos_proxy=proxy)
        train_thread = ServiceThread(service)
        train_addr = train_thread.start()
        try:
            # uploads go straight to the authority (clean link): chaos
            # is scripted on the server->authority key-request link
            for i, (x, y) in enumerate(shards):
                upload_shard(auth_addr, train_addr, x, y, 2,
                             name=f"clinic-{i}", rng=random.Random(100 + i))
            train_thread.call(lambda: service.wait_done(timeout=360),
                              timeout=380)

            _assert_identical_run(service, ref_weights, ref_history,
                                  ref_accuracy)

            summary = proxy.fault_summary()
            endpoint_stats = service.authority.endpoint.stats.snapshot()
            # the schedule must actually have injected faults, and the
            # endpoint must actually have retried through them
            assert summary["drops"] + summary["timeouts"] > 0
            assert endpoint_stats["retries"] > 0
            assert endpoint_stats["giveups"] == 0

            # fault counters surface on the ops surface (train-status);
            # the service-hosted proxy's weather is merged in too
            faults = service._status().detail["faults"]
            assert faults["authority_endpoint"] == endpoint_stats
            assert faults["degraded"] is False
            assert faults["chaos_proxy"]["drops"] + \
                faults["chaos_proxy"]["timeouts"] > 0

            # the same counters are scrapeable over the wire: the
            # metrics probe needs no handshake and works mid-lifecycle
            with RpcEndpoint(*train_addr, name="scraper",
                             peer="server") as endpoint:
                scraped = endpoint.request(
                    MetricsRequest(requester="scraper")).metrics
            counters = scraped["counters"]
            assert counters["repro_rpc_retries_total"] > 0
            assert counters["repro_trainer_feip_decrypts_total"] > 0
            phase_hists = {
                name: hist
                for name, hist in scraped["histograms"].items()
                if name.startswith("repro_phase_seconds")
            }
            assert phase_hists, "phase spans never reached the registry"

            RESULTS_DIR.mkdir(parents=True, exist_ok=True)
            payload = {
                "scenario": "training_through_chaos_proxy",
                "chaos_seed": 7,
                "proxy": summary,
                "authority_endpoint": endpoint_stats,
                "byte_exact": True,
            }
            (RESULTS_DIR / "CHAOS_fault_counters.json").write_text(
                json.dumps(payload, indent=2, sort_keys=True))
            # CI uploads this scrape as an artifact and asserts the
            # fault counters it carries are nonzero
            (RESULTS_DIR / "METRICS_chaos_run.json").write_text(
                json.dumps({
                    "scenario": "training_through_chaos_proxy",
                    "counters": counters,
                    "gauges": scraped["gauges"],
                    "phase_histograms": {
                        name: {"count": hist["count"], "sum": hist["sum"]}
                        for name, hist in phase_hists.items()
                    },
                }, indent=2, sort_keys=True))
        finally:
            train_thread.stop()
            proxy_thread.stop()
            auth_thread.stop()

    def test_authority_kill_and_restart_mid_run_is_byte_exact(self, tmp_path):
        """Kill the authority process mid-training and restart it from
        its persisted master keys on the same port: the training run
        rides out the outage on retries and still reproduces the clean
        run byte-for-byte."""
        shards = _make_shards()
        ref_weights, ref_history, ref_accuracy = _clean_reference(shards)

        authority = TrustedAuthority(CryptoNNConfig(),
                                     rng=random.Random(SEED))
        auth_thread = ServiceThread(AuthorityService(authority))
        auth_host, auth_port = auth_thread.start()

        service = TrainingService(
            auth_host, auth_port, expected_clients=len(shards),
            hidden=HIDDEN, epochs=EPOCHS, batch_size=BATCH_SIZE,
            learning_rate=LR, seed=SEED, authority_timeout=5.0,
            checkpoint_path=str(tmp_path / "job.npz"), checkpoint_every=1)
        train_thread = ServiceThread(service)
        train_addr = train_thread.start()
        second_thread = None
        try:
            for i, (x, y) in enumerate(shards):
                upload_shard((auth_host, auth_port), train_addr, x, y, 2,
                             name=f"clinic-{i}", rng=random.Random(100 + i))
            # wait until training is demonstrably mid-run (>= 1 batch
            # done) -- one full batch touches every eta the architecture
            # uses, so all master keys have materialized and the
            # persisted authority is complete
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                last = service.last_checkpoint
                if last is not None and last["batch_counter"] >= 1:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("training never reached batch 1")

            # persist the master keys, then kill the authority mid-run
            auth_file = tmp_path / "authority.json"
            save_authority(authority, auth_file)
            auth_thread.stop()

            # restart on the SAME port from the persisted master keys;
            # key derivation is deterministic, so the reborn authority
            # answers every re-sent request identically
            restored = load_authority(auth_file, rng=random.Random(999))
            second_thread = ServiceThread(
                AuthorityService(restored, host=auth_host, port=auth_port))
            second_thread.start()

            train_thread.call(lambda: service.wait_done(timeout=300),
                              timeout=320)
            _assert_identical_run(service, ref_weights, ref_history,
                                  ref_accuracy)
            stats = service.authority.endpoint.stats
            assert stats.reconnects >= 1  # the outage really happened
            assert stats.giveups == 0
        finally:
            train_thread.stop()
            if second_thread is not None:
                second_thread.stop()
            auth_thread.stop()
