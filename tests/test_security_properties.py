"""Statistical / structural security sanity checks (paper Section IV-A).

These are not proofs -- IND-CPA rests on DDH -- but they verify the
mechanical properties the proofs rely on: fresh randomness per
encryption, ciphertexts living in the right subgroup, keys revealing only
the function value, and the label-mapping mitigation actually hiding the
logical labels.
"""

import random

import numpy as np
import pytest

from repro.core.config import CryptoNNConfig
from repro.core.entities import Client, TrustedAuthority
from repro.data.preprocess import LabelMapper
from repro.fe.febo import Febo
from repro.fe.feip import Feip


class TestCiphertextFreshness:
    def test_feip_equal_plaintexts_distinct_ciphertexts(self, feip):
        mpk, _ = feip.setup(3)
        cts = [feip.encrypt(mpk, [1, 2, 3]) for _ in range(20)]
        assert len({ct.ct0 for ct in cts}) == 20
        assert len({ct.ct for ct in cts}) == 20

    def test_febo_equal_plaintexts_distinct_ciphertexts(self, febo):
        mpk, _ = febo.setup()
        cts = [febo.encrypt(mpk, 7) for _ in range(20)]
        assert len({(c.cmt, c.ct) for c in cts}) == 20

    def test_identical_labels_encrypt_differently(self):
        """Paper Section IV-A: 'the encrypted result is uniformly
        distributed in the ciphertext space at random for each same
        label'."""
        authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))
        client = Client(authority)
        x = np.zeros((4, 2))
        y = np.zeros(4, dtype=int)  # all the same label
        enc = client.encrypt_tabular(x, y, num_classes=2)
        ip_cts = {label.onehot_ip.ct0 for label in enc.labels}
        assert len(ip_cts) == 4


class TestSubgroupMembership:
    def test_feip_ciphertext_elements_in_subgroup(self, feip):
        mpk, _ = feip.setup(2)
        ct = feip.encrypt(mpk, [5, -5])
        assert feip.group.contains(ct.ct0)
        assert all(feip.group.contains(c) for c in ct.ct)

    def test_febo_ciphertext_elements_in_subgroup(self, febo):
        mpk, _ = febo.setup()
        ct = febo.encrypt(mpk, 9)
        assert febo.group.contains(ct.cmt)
        assert febo.group.contains(ct.ct)


class TestFunctionKeyLeakage:
    def test_feip_decrypt_reveals_only_inner_product(self, feip):
        """Two plaintexts with equal <x, y> decrypt identically -- the
        function key cannot distinguish them."""
        mpk, msk = feip.setup(2)
        key = feip.key_derive(msk, [1, 1])
        ct_a = feip.encrypt(mpk, [3, 7])   # sum 10
        ct_b = feip.encrypt(mpk, [6, 4])   # sum 10
        assert feip.decrypt(mpk, ct_a, key, 100) == \
               feip.decrypt(mpk, ct_b, key, 100) == 10

    def test_febo_direct_inference_is_real(self, febo):
        """The attack the paper concedes: knowing y and x*y reveals x.
        Kept as an executable statement of the threat model."""
        mpk, msk = febo.setup()
        secret_x = 37
        ct = febo.encrypt(mpk, secret_x)
        y = 5
        key = febo.key_derive(msk, ct.cmt, "*", y)
        product = febo.decrypt(mpk, key, ct, bound=10_000)
        assert product // y == secret_x


class TestLabelMappingMitigation:
    def test_wire_labels_hide_logical_labels(self):
        rng = np.random.default_rng(11)
        mapper = LabelMapper(10, rng)
        logical = np.arange(10)
        wire = mapper.map_labels(logical)
        # at least some labels must move (overwhelming probability); and
        # the mapping must be invertible only with the secret permutation
        assert (wire != logical).any()
        assert sorted(wire.tolist()) == list(range(10))

    def test_two_mappers_disagree(self):
        a = LabelMapper(10, np.random.default_rng(1))
        b = LabelMapper(10, np.random.default_rng(2))
        assert (a.permutation != b.permutation).any()


class TestDlogBoundAsIntegrityCheck:
    def test_random_group_element_fails_decryption(self, feip):
        """A ciphertext element replaced by a random group element produces
        an out-of-window dlog with overwhelming probability."""
        from repro.mathutils.dlog import DiscreteLogError
        mpk, msk = feip.setup(2)
        key = feip.key_derive(msk, [1, 2])
        ct = feip.encrypt(mpk, [1, 1])
        forged = type(ct)(ct0=ct.ct0, ct=(feip.group.random_element(),
                                          ct.ct[1]))
        with pytest.raises(DiscreteLogError):
            feip.decrypt(mpk, forged, key, bound=10_000)
