"""Pool-lifecycle smoke guard.

Runs a tiny 32-bit-group secure dot product through the persistent
:class:`SecureComputePool` under a hard timeout, so regressions that
hang the pool (deadlocked configure, leaked executors, workers that
never install state) fail the tier-1 suite fast instead of wedging a
training run.
"""

import threading

import numpy as np
import pytest

from repro.matrix import parallel
from repro.matrix.secure_matrix import SecureMatrixScheme, matrix_bound_dot

#: Generous wall-clock budget: the computation itself is milliseconds,
#: so hitting this means the pool lifecycle is broken, not slow.
TIMEOUT_S = 60


def run_with_timeout(fn, timeout=TIMEOUT_S):
    """Run ``fn`` on a daemon thread; fail (not wedge) if it never returns.

    A daemon thread keeps a hung pool call from blocking the test
    process at interpreter exit, which an executor-based guard would.
    """
    outcome = {}

    def target():
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            outcome["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        pytest.fail(f"pool call did not complete within {timeout}s")
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


@pytest.fixture()
def dot_fixture(params, rng, solver_cache):
    scheme = SecureMatrixScheme(params, rng=rng, solver_cache=solver_cache)
    msk_ip, _ = scheme.setup(column_length=2)
    x = np.array([[rng.randrange(0, 8) for _ in range(3)]
                  for _ in range(2)], dtype=object)
    y = np.array([[rng.randrange(0, 8) for _ in range(2)]], dtype=object)
    enc = scheme.pre_process_encryption(x, with_febo=False)
    keys = scheme.derive_dot_keys(msk_ip, y)
    return scheme, enc, keys, matrix_bound_dot(8, 8, 2), y @ x


def test_persistent_pool_dot_under_timeout(params, dot_fixture):
    scheme, enc, keys, bound, expected = dot_fixture
    with parallel.SecureComputePool(workers=1) as pool:
        for _ in range(3):  # reuse is the regression surface
            out = run_with_timeout(
                lambda: pool.secure_dot(params, scheme.feip_mpk,
                                        enc.require_feip(), keys, bound)
            )
            np.testing.assert_array_equal(out, expected)
        assert pool.executors_created == 1


def test_module_wrappers_share_persistent_pool(params, dot_fixture):
    """secure_dot_parallel must not build an executor per call."""
    scheme, enc, keys, bound, expected = dot_fixture
    parallel.shutdown_compute_pools()
    try:
        for _ in range(2):
            out = run_with_timeout(
                lambda: parallel.secure_dot_parallel(
                    params, scheme.feip_mpk, enc, keys, bound, workers=1
                )
            )
            np.testing.assert_array_equal(out, expected)
        pool = parallel.get_compute_pool(workers=1)
        assert pool.executors_created == 1
        assert pool.dispatches == 2
    finally:
        parallel.shutdown_compute_pools()


def test_pool_recovers_from_worker_crash(params, dot_fixture):
    """A killed worker must not wedge the persistent pool for the run."""
    import os
    import signal
    import time

    scheme, enc, keys, bound, expected = dot_fixture
    with parallel.SecureComputePool(workers=1) as pool:
        run_with_timeout(
            lambda: pool.secure_dot(params, scheme.feip_mpk,
                                    enc.require_feip(), keys, bound)
        )
        os.kill(next(iter(pool._executor._processes)), signal.SIGKILL)
        time.sleep(0.2)
        out = run_with_timeout(
            lambda: pool.secure_dot(params, scheme.feip_mpk,
                                    enc.require_feip(), keys, bound)
        )
        np.testing.assert_array_equal(out, expected)
        assert pool.executors_created == 2


def test_pool_restarts_after_close(params, dot_fixture):
    scheme, enc, keys, bound, expected = dot_fixture
    pool = parallel.SecureComputePool(workers=1)
    try:
        run_with_timeout(
            lambda: pool.secure_dot(params, scheme.feip_mpk,
                                    enc.require_feip(), keys, bound)
        )
        pool.close()
        assert not pool.started
        out = run_with_timeout(
            lambda: pool.secure_dot(params, scheme.feip_mpk,
                                    enc.require_feip(), keys, bound)
        )
        np.testing.assert_array_equal(out, expected)
        assert pool.executors_created == 2
    finally:
        pool.close()


def test_disabled_tracer_is_near_free():
    """Instrumented hot loops must stay fast with tracing off.

    The training loop calls ``GLOBAL_TRACER.span()`` several times per
    batch; disabled, that must be one attribute check returning a
    shared no-op -- 50k calls in well under a second even on a loaded
    CI box.
    """
    import time

    from repro.obs.tracing import GLOBAL_TRACER

    assert not GLOBAL_TRACER.enabled
    recorded_before = len(GLOBAL_TRACER.spans())
    start = time.perf_counter()
    for _ in range(50_000):
        with GLOBAL_TRACER.span("noop"):
            pass
    elapsed = time.perf_counter() - start
    assert elapsed < 1.0, f"disabled spans cost {elapsed:.3f}s per 50k"
    assert len(GLOBAL_TRACER.spans()) == recorded_before
