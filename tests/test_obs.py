"""Observability layer: registry, tracer, and the wire-level ops surface.

Covers the three properties the layer promises:

* **correctness under concurrency** -- counters never lose increments,
  the compute pool's stats stay exact when hammered from threads;
* **pull-time collectors** -- readings sum across instances and vanish
  with their owners (weakref semantics);
* **a live wire surface** -- every framed service answers
  ``service-metrics`` / ``service-health`` over a real socket without
  any handshake, and the training server's readiness reflects its
  actual ability to do work.
"""

import json
import random
import threading

import numpy as np
import pytest

from repro.matrix import parallel
from repro.matrix.secure_matrix import SecureMatrixScheme, matrix_bound_dot
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.tracing import SpanTracer
from repro.rpc import (
    HealthRequest,
    MetricsRequest,
    RpcEndpoint,
    ServiceThread,
    free_port,
)
from repro.rpc.authority_service import AuthorityService
from repro.rpc.training_service import TrainingService
from repro.core.config import CryptoNNConfig
from repro.core.entities import TrustedAuthority


class TestRegistry:
    def test_counter_exact_under_threads(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_hits_total")
        n_threads, n_incs = 8, 2_000

        def work():
            for _ in range(n_incs):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * n_incs
        snap = registry.snapshot()
        assert snap["counters"]["repro_test_hits_total"] == n_threads * n_incs

    def test_histogram_buckets_and_exactness(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_test_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.1, 0.5, 2.0):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["le"] == [0.1, 1.0, "+Inf"]
        # cumulative (Prometheus le) semantics: <=0.1 -> 2, <=1.0 -> 3
        assert snap["counts"] == [2, 3, 4]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(2.65)

    def test_histogram_exact_under_threads(self):
        hist = MetricsRegistry().histogram("h", buckets=DEFAULT_BUCKETS)
        n_threads, n_obs = 6, 1_000

        def work():
            for i in range(n_obs):
                hist.observe(0.001 * (i % 50))

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == n_threads * n_obs

    def test_collectors_sum_and_die_with_their_instance(self):
        registry = MetricsRegistry()

        class Pool:
            def __init__(self, n):
                self.n = n

            def _collect(self):
                return {"repro_test_dispatches_total": self.n,
                        "repro_test_workers": 1}

        a, b = Pool(3), Pool(4)
        registry.register_collector("a", a._collect)
        registry.register_collector("b", b._collect)
        snap = registry.snapshot()
        # same metric name from two collectors aggregates by summing
        assert snap["counters"]["repro_test_dispatches_total"] == 7
        assert snap["gauges"]["repro_test_workers"] == 2

        del b  # dead instances silently drop out of the scrape
        snap = registry.snapshot()
        assert snap["counters"]["repro_test_dispatches_total"] == 3
        assert snap["gauges"]["repro_test_workers"] == 1

    def test_broken_collector_never_breaks_the_scrape(self):
        registry = MetricsRegistry()
        registry.counter("repro_ok_total").inc(5)
        registry.register_collector("bad", lambda: 1 / 0)
        snap = registry.snapshot()
        assert snap["counters"]["repro_ok_total"] == 5

    def test_render_prometheus_smoke(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_hits_total").inc(2)
        registry.gauge("repro_test_depth").set(7)
        registry.histogram(
            'repro_phase_seconds{phase="secure-forward"}',
            buckets=(1.0,)).observe(0.5)
        text = registry.render_prometheus()
        assert "# TYPE repro_test_hits_total counter" in text
        assert "repro_test_hits_total 2" in text
        assert "repro_test_depth 7" in text
        # histogram labels merge with the le label on bucket lines
        assert ('repro_phase_seconds_bucket{phase="secure-forward",'
                'le="1.0"} 1') in text
        assert 'repro_phase_seconds_count{phase="secure-forward"} 1' in text
        # snapshots are JSON-safe by construction
        json.dumps(registry.snapshot())


class TestTracer:
    def test_spans_nest_and_record(self):
        tracer = SpanTracer()
        tracer.enable()
        try:
            with tracer.span("iteration", batch=4):
                with tracer.span("secure-forward"):
                    pass
        finally:
            tracer.disable()
        records = tracer.spans()
        assert [r["name"] for r in records] == ["secure-forward", "iteration"]
        inner, outer = records
        assert outer["depth"] == 0 and inner["depth"] == 1
        assert outer["batch"] == 4
        assert outer["dur_s"] >= inner["dur_s"] >= 0.0

    def test_trace_file_and_registry_folding(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        registry = MetricsRegistry()
        tracer = SpanTracer()
        tracer.enable(trace_file=str(path), registry=registry)
        try:
            for _ in range(3):
                with tracer.span("secure-forward"):
                    pass
        finally:
            tracer.disable()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert len(lines) == 3
        assert all(line["name"] == "secure-forward" for line in lines)
        hist = registry.snapshot()["histograms"][
            'repro_phase_seconds{phase="secure-forward"}']
        assert hist["count"] == 3
        totals = tracer.phase_totals()
        assert totals["secure-forward"]["count"] == 3

    def test_ring_buffer_is_bounded(self):
        tracer = SpanTracer(capacity=8)
        tracer.enable()
        try:
            for _ in range(50):
                with tracer.span("x"):
                    pass
        finally:
            tracer.disable()
        assert len(tracer.spans()) == 8


class TestPoolCounters:
    @pytest.fixture()
    def dot_fixture(self, params, rng, solver_cache):
        scheme = SecureMatrixScheme(params, rng=rng,
                                    solver_cache=solver_cache)
        msk_ip, _ = scheme.setup(column_length=2)
        x = np.array([[rng.randrange(0, 8) for _ in range(3)]
                      for _ in range(2)], dtype=object)
        y = np.array([[rng.randrange(0, 8) for _ in range(2)]],
                     dtype=object)
        enc = scheme.pre_process_encryption(x, with_febo=False)
        keys = scheme.derive_dot_keys(msk_ip, y)
        return scheme, enc, keys, matrix_bound_dot(8, 8, 2), y @ x

    @pytest.mark.timeout_guard(120)
    def test_stats_exact_under_concurrent_dispatch(self, params, dot_fixture):
        """Concurrent secure_dot calls must not lose counter updates."""
        scheme, enc, keys, bound, expected = dot_fixture
        n_threads, n_calls = 4, 3
        errors = []
        with parallel.SecureComputePool(workers=1) as pool:
            def work():
                try:
                    for _ in range(n_calls):
                        out = pool.secure_dot(params, scheme.feip_mpk,
                                              enc.require_feip(), keys,
                                              bound)
                        np.testing.assert_array_equal(out, expected)
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=work)
                       for _ in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            stats = pool.stats  # consistent copy taken under the lock
            assert stats["dispatches"] == n_threads * n_calls
            assert stats["degraded_dispatches"] == 0
            assert not stats["degraded"]

    def test_pool_collector_reaches_global_registry(self, params,
                                                    dot_fixture):
        from repro.obs.metrics import GLOBAL_REGISTRY
        scheme, enc, keys, bound, expected = dot_fixture
        with parallel.SecureComputePool(workers=1) as pool:
            out = pool.secure_dot(params, scheme.feip_mpk,
                                  enc.require_feip(), keys, bound)
            np.testing.assert_array_equal(out, expected)
            snap = GLOBAL_REGISTRY.snapshot()
            assert snap["counters"]["repro_pool_dispatches_total"] >= 1
            assert snap["gauges"]["repro_pool_workers"] >= 1


@pytest.mark.timeout_guard(120)
class TestWireSurface:
    def test_metrics_and_health_round_trip(self):
        """Every framed service answers probes without any handshake."""
        authority = TrustedAuthority(CryptoNNConfig(),
                                     rng=random.Random(0))
        thread = ServiceThread(AuthorityService(authority))
        addr = thread.start()
        try:
            with RpcEndpoint(*addr, name="probe",
                             peer="authority") as endpoint:
                health = endpoint.request(HealthRequest(requester="probe"))
                assert health.ready
                assert health.state == "serving"
                resp = endpoint.request(MetricsRequest(requester="probe"))
                assert resp.service == "authority"
                counters = resp.metrics["counters"]
                # the probe itself is already on the books
                assert counters["repro_service_requests_total"] >= 1
                assert counters["repro_service_traffic_messages_total"] >= 1
                json.dumps(resp.metrics)  # snapshot survives the wire
        finally:
            thread.stop()

    def test_training_service_not_ready_while_waiting(self):
        """No handshake + no uploads + no durable job => not ready."""
        service = TrainingService("127.0.0.1", free_port(),
                                  expected_clients=1)
        thread = ServiceThread(service)
        addr = thread.start()
        try:
            with RpcEndpoint(*addr, name="probe",
                             peer="server") as endpoint:
                health = endpoint.request(HealthRequest(requester="probe"))
                assert not health.ready
                assert health.state == "waiting"
                assert not health.detail["keys_fetched"]
                assert not health.detail["job_configured"]
        finally:
            thread.stop()
