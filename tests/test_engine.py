"""Offline/online encryption engine: correctness and nonce hygiene.

The security-critical property is single-use: a precomputed nonce tuple
that is consumed twice breaks IND-CPA, so these tests pin (a) every
ciphertext the engine produces carries a distinct nonce, (b) a banked
tuple can never be handed out twice -- under thread concurrency and
under pool-parallel production -- and (c) the IND-CPA game harness
passes unchanged over the engine path.
"""

import random
import threading

import numpy as np
import pytest

from repro.fe.engine import (
    EncryptionEngine,
    make_febo_nonce,
    make_feip_nonce,
    resolve_engine,
)
from repro.fe.errors import CiphertextError
from repro.matrix import parallel
from repro.matrix.secure_matrix import SecureMatrixScheme, matrix_bound_dot
from repro.security.indcpa import (
    EngineFeboAdapter,
    EngineFeipAdapter,
    run_indcpa_game,
)

ETA = 4


@pytest.fixture()
def engine(params):
    return EncryptionEngine(params, rng=random.Random(777))


@pytest.fixture()
def feip_pair(feip):
    return feip.setup(ETA)


@pytest.fixture()
def febo_pair(febo):
    return febo.setup()


class TestOnlinePhaseCorrectness:
    def test_feip_nonce_encrypt_decrypts(self, engine, feip, feip_pair):
        mpk, msk = feip_pair
        key = feip.key_derive(msk, [1, 2, 3, 4])
        engine.prefill_feip(mpk, 1)
        ct = engine.encrypt_feip(mpk, [5, 6, 7, 8])
        assert feip.decrypt(mpk, ct, key, bound=1000) == 5 + 12 + 21 + 32

    def test_febo_nonce_encrypt_decrypts(self, engine, febo, febo_pair):
        bpk, bmsk = febo_pair
        engine.prefill_febo(bpk, 1)
        ct = engine.encrypt_febo(bpk, 9)
        skf = febo.key_derive(bmsk, ct.cmt, "+", 4)
        assert febo.decrypt(bpk, skf, ct, bound=100) == 13

    def test_miss_fallback_is_correct_and_counted(self, engine, feip,
                                                  feip_pair):
        mpk, msk = feip_pair
        key = feip.key_derive(msk, [1, 1, 1, 1])
        ct = engine.encrypt_feip(mpk, [1, 2, 3, 4])  # cold store
        assert engine.misses == 1 and engine.consumed == 0
        assert feip.decrypt(mpk, ct, key, bound=100) == 10

    def test_negative_entries_roundtrip(self, engine, feip, feip_pair):
        mpk, msk = feip_pair
        key = feip.key_derive(msk, [1, 1, 1, 1])
        engine.prefill_feip(mpk, 1)
        ct = engine.encrypt_feip(mpk, [-5, 3, -2, 1])
        assert feip.decrypt(mpk, ct, key, bound=100) == -3

    def test_engine_matches_direct_encrypt_semantics(self, params, feip,
                                                     feip_pair):
        """Engine and direct path decrypt to identical plaintexts."""
        mpk, msk = feip_pair
        key = feip.key_derive(msk, [2, 0, 1, 3])
        engine = EncryptionEngine(params, rng=random.Random(5))
        engine.prefill_feip(mpk, 1)
        direct = feip.encrypt(mpk, [4, 5, 6, 7])
        banked = engine.encrypt_feip(mpk, [4, 5, 6, 7])
        assert feip.decrypt(mpk, direct, key, bound=100) == \
            feip.decrypt(mpk, banked, key, bound=100) == 8 + 6 + 21


class TestNonceHygiene:
    def test_every_ciphertext_uses_distinct_nonce(self, engine, feip_pair):
        mpk, _ = feip_pair
        engine.prefill_feip(mpk, 10)
        cts = [engine.encrypt_feip(mpk, [1, 2, 3, 4]) for _ in range(25)]
        ct0s = [ct.ct0 for ct in cts]
        assert len(set(ct0s)) == len(ct0s)

    def test_prefilled_tuples_consumed_exactly_once(self, engine, feip_pair):
        mpk, _ = feip_pair
        engine.prefill_feip(mpk, 5)
        assert engine.available_feip(mpk) == 5
        for _ in range(5):
            engine.encrypt_feip(mpk, [0, 0, 0, 0])
        assert engine.available_feip(mpk) == 0
        assert engine.consumed == 5 and engine.misses == 0
        engine.encrypt_feip(mpk, [0, 0, 0, 0])
        assert engine.misses == 1

    def test_concurrent_consumption_never_reuses(self, engine, feip_pair):
        """T threads racing on one store: all nonces remain distinct."""
        mpk, _ = feip_pair
        n_threads, per_thread = 8, 12
        engine.prefill_feip(mpk, n_threads * per_thread)
        results: list[list] = [[] for _ in range(n_threads)]

        def consume(bucket):
            for _ in range(per_thread):
                bucket.append(engine.encrypt_feip(mpk, [1, 2, 3, 4]))

        threads = [threading.Thread(target=consume, args=(results[t],))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ct0s = [ct.ct0 for bucket in results for ct in bucket]
        assert len(ct0s) == n_threads * per_thread
        assert len(set(ct0s)) == len(ct0s), "a nonce was consumed twice"
        assert engine.consumed == n_threads * per_thread
        assert engine.misses == 0

    def test_cross_key_nonce_rejected_feip(self, feip, group, feip_pair):
        mpk, _ = feip_pair
        other_mpk, _ = feip.setup(ETA)
        nonce = make_feip_nonce(group, mpk)
        with pytest.raises(CiphertextError):
            feip.encrypt(other_mpk, [1, 2, 3, 4], nonce=nonce)

    def test_cross_key_nonce_rejected_febo(self, febo, group, febo_pair):
        bpk, _ = febo_pair
        other_bpk, _ = febo.setup()
        nonce = make_febo_nonce(group, bpk)
        with pytest.raises(CiphertextError):
            febo.encrypt(other_bpk, 3, nonce=nonce)

    def test_wrong_length_nonce_rejected(self, feip, group):
        mpk3, _ = feip.setup(3)
        mpk4, _ = feip.setup(4)
        nonce = make_feip_nonce(group, mpk3)
        with pytest.raises(CiphertextError):
            feip.encrypt(mpk4, [1, 2, 3, 4], nonce=nonce)

    def test_stores_are_per_key(self, engine, feip):
        mpk_a, _ = feip.setup(2)
        mpk_b, _ = feip.setup(2)
        engine.prefill_feip(mpk_a, 3)
        assert engine.available_feip(mpk_a) == 3
        assert engine.available_feip(mpk_b) == 0
        engine.encrypt_feip(mpk_b, [1, 2])
        assert engine.available_feip(mpk_a) == 3  # untouched
        assert engine.misses == 1


class TestPoolProduction:
    def test_pool_precompute_distinct_nonces(self, params, feip, febo):
        mpk, _ = feip.setup(3)
        bpk, _ = febo.setup()
        with parallel.SecureComputePool(workers=2) as pool:
            feip_nonces, febo_nonces = pool.precompute_encryption(
                params, feip_mpk=mpk, febo_mpk=bpk,
                feip_count=20, febo_count=20)
            # a second dispatch must not replay the first one's nonces
            more, _ = pool.precompute_encryption(
                params, feip_mpk=mpk, febo_mpk=bpk, feip_count=20)
        assert len(feip_nonces) == 20 and len(febo_nonces) == 20
        rs = [n.r for n in feip_nonces + more] + [n.r for n in febo_nonces]
        assert len(set(rs)) == len(rs), "nonce collision across pool workers"

    def test_pool_filled_engine_consumes_each_once(self, params, feip):
        mpk, msk = feip.setup(3)
        key = feip.key_derive(msk, [1, 1, 1])
        with parallel.SecureComputePool(workers=2) as pool:
            engine = EncryptionEngine(params, pool=pool)
            engine.prefill_feip(mpk, 6)
            cts = [engine.encrypt_feip(mpk, [i, i, i]) for i in range(9)]
        assert engine.consumed == 6 and engine.misses == 3
        ct0s = [ct.ct0 for ct in cts]
        assert len(set(ct0s)) == len(ct0s)
        for i, ct in enumerate(cts):
            assert feip.decrypt(mpk, ct, key, bound=100) == 3 * i

    def test_bulk_encrypt_columns_matches_serial(self, params, feip):
        mpk, msk = feip.setup(3)
        key = feip.key_derive(msk, [1, 2, 3])
        columns = [[1, 2, 3], [4, 5, 6], [0, 0, 7], [2, 2, 2]]
        expected = [sum(a * b for a, b in zip(col, [1, 2, 3]))
                    for col in columns]
        with parallel.SecureComputePool(workers=2) as pool:
            engine = EncryptionEngine(params, pool=pool)
            cts = engine.encrypt_feip_columns(mpk, columns)
        assert [feip.decrypt(mpk, ct, key, bound=1000) for ct in cts] \
            == expected

    def test_bulk_encrypt_values_febo(self, params, febo):
        bpk, bmsk = febo.setup()
        with parallel.SecureComputePool(workers=2) as pool:
            engine = EncryptionEngine(params, pool=pool)
            cts = engine.encrypt_febo_values(bpk, [3, 1, 4, 1, 5])
        for ct, x in zip(cts, [3, 1, 4, 1, 5]):
            skf = febo.key_derive(bmsk, ct.cmt, "+", 10)
            assert febo.decrypt(bpk, skf, ct, bound=100) == x + 10


class TestBackgroundPrefill:
    def test_async_prefill_fills_store(self, engine, feip_pair):
        mpk, _ = feip_pair
        engine.prefill_async(mpk, 8)
        engine.drain_async()
        assert engine.available_feip(mpk) == 8
        cts = [engine.encrypt_feip(mpk, [1, 0, 0, 0]) for _ in range(8)]
        assert engine.misses == 0
        assert len({ct.ct0 for ct in cts}) == 8

    def test_async_prefill_febo(self, engine, febo_pair):
        bpk, _ = febo_pair
        engine.prefill_async(bpk, 5)
        engine.drain_async()
        assert engine.available_febo(bpk) == 5


class TestSchemeAndEntityIntegration:
    def test_secure_matrix_scheme_with_engine(self, params, rng,
                                              solver_cache):
        scheme = SecureMatrixScheme(params, rng=rng,
                                    solver_cache=solver_cache)
        msk_ip, _ = scheme.setup(column_length=2)
        scheme.use_engine(EncryptionEngine(params, rng=random.Random(9)))
        x = np.array([[1, 2, 3], [4, 5, 6]], dtype=object)
        y = np.array([[1, 1]], dtype=object)
        enc = scheme.pre_process_encryption(x)
        keys = scheme.derive_dot_keys(msk_ip, y)
        out = scheme.secure_dot(enc, keys, matrix_bound_dot(6, 1, 2))
        np.testing.assert_array_equal(out, y @ x)
        assert scheme.engine.misses > 0  # cold store still correct

    def test_resolve_engine_policy(self, params):
        explicit = EncryptionEngine(params)
        assert resolve_engine(explicit, params) is explicit
        assert resolve_engine(None, params) is None
        try:
            engine = resolve_engine(None, params, workers=1)
            assert engine is not None and engine.pool is not None
        finally:
            parallel.shutdown_compute_pools()

    def test_client_with_engine_dataset_trains_identically(self, params):
        """Engine-encrypted datasets decrypt to the same integers."""
        from repro.core.config import CryptoNNConfig
        from repro.core.entities import Client, TrustedAuthority

        features = np.array([[0.5, -0.25], [0.125, 0.75]])
        labels = np.array([0, 1])
        authority = TrustedAuthority(CryptoNNConfig(security_bits=32),
                                     rng=random.Random(0))
        plain_client = Client(authority)
        engine_client = Client(
            authority, engine=EncryptionEngine(params,
                                               rng=random.Random(1)))
        ds_plain = plain_client.encrypt_tabular(features, labels, 2)
        ds_engine = engine_client.encrypt_tabular(features, labels, 2)
        # decrypt the first sample's feature vector both ways
        msk = authority._feip_pairs[2][1]
        mpk = authority.feip_public_key(2)
        key = authority.feip.key_derive(msk, [1, 1])
        for ds in (ds_plain, ds_engine):
            value = authority.feip.decrypt(
                mpk, ds.samples[0].features_ip, key, bound=1000)
            assert value == 50 + (-25)  # scale-100 fixed point


class TestIndCpaOverEnginePath:
    def test_feip_engine_path_resists_replay(self, params):
        adapter = EngineFeipAdapter(params, rng=random.Random(0))
        adv = run_indcpa_game(adapter, trials=400, rng=random.Random(2))
        assert adv < 0.2

    def test_febo_engine_path_resists_replay(self, params):
        adapter = EngineFeboAdapter(params, rng=random.Random(0))
        adv = run_indcpa_game(adapter, trials=400, rng=random.Random(3))
        assert adv < 0.2
