"""Integration tests for CryptoCNN (Section III-E)."""

import random

import numpy as np
import pytest

from repro.core.config import CryptoNNConfig
from repro.core.cryptocnn import CryptoCNNTrainer
from repro.core.entities import Client, TrustedAuthority
from repro.data.preprocess import one_hot
from repro.data.synth_digits import load_synth_digits
from repro.nn.layers import Dense
from repro.nn.lenet import build_lenet_small
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD


@pytest.fixture()
def authority():
    return TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))


@pytest.fixture(scope="module")
def digits():
    train, _ = load_synth_digits(n_train=60, n_test=10, canvas=8, seed=4)
    return train


class TestConstruction:
    def test_requires_conv_first_layer(self, authority, np_rng):
        model = Sequential([Dense(4, 2, rng=np_rng)])
        with pytest.raises(TypeError):
            CryptoCNNTrainer(model, authority)

    def test_geometry_mismatch_detected(self, authority, digits, np_rng):
        client = Client(authority)
        enc = client.encrypt_images(digits.x[:4], digits.y[:4], num_classes=10,
                                    filter_size=3, stride=1, padding=0)
        model = build_lenet_small(np_rng, image_size=8)  # expects padding=1
        trainer = CryptoCNNTrainer(model, authority)
        with pytest.raises(ValueError, match="geometry"):
            trainer.fit(enc, SGD(0.1), epochs=1, batch_size=4)


class TestTrainingMatchesPlaintextTwin:
    def test_twin_trajectories_agree(self, authority, digits, np_rng):
        client = Client(authority)
        n = 40
        enc = client.encrypt_images(digits.x[:n], digits.y[:n], num_classes=10,
                                    filter_size=3, stride=1, padding=1)
        model = build_lenet_small(np_rng, image_size=8)
        twin = build_lenet_small(np.random.default_rng(555), image_size=8)
        twin.set_weights(model.get_weights())
        trainer = CryptoCNNTrainer(model, authority)
        hist_secure = trainer.fit(enc, SGD(0.5), epochs=1, batch_size=10,
                                  rng=np.random.default_rng(3))
        hist_plain = twin.fit(digits.x[:n], one_hot(digits.y[:n], 10),
                              SoftmaxCrossEntropyLoss(), SGD(0.5), epochs=1,
                              batch_size=10, rng=np.random.default_rng(3))
        np.testing.assert_allclose(hist_secure.batch_loss,
                                   hist_plain.batch_loss, atol=0.1)

    def test_counters_match_expected_costs(self, authority, digits, np_rng):
        client = Client(authority)
        enc = client.encrypt_images(digits.x[:5], digits.y[:5], num_classes=10,
                                    filter_size=3, stride=1, padding=1)
        model = build_lenet_small(np_rng, image_size=8, conv_channels=4)
        trainer = CryptoCNNTrainer(model, authority)
        trainer.fit(enc, SGD(0.1), epochs=1, batch_size=5,
                    rng=np.random.default_rng(0))
        snap = trainer.counters.snapshot()
        # forward: 64 windows x 4 filters x 5 images + 5 loss decrypts
        assert snap["feip_decrypts"] == 64 * 4 * 5 + 5
        # backward: 10-class P-Y per sample + 64 pixels per image once
        assert snap["febo_decrypts"] == 5 * 10 + 5 * 64

    def test_prediction_shape(self, authority, digits, np_rng):
        client = Client(authority)
        enc = client.encrypt_images(digits.x[:6], digits.y[:6], num_classes=10,
                                    filter_size=3, stride=1, padding=1)
        model = build_lenet_small(np_rng, image_size=8)
        trainer = CryptoCNNTrainer(model, authority)
        probs = trainer.predict(enc, np.arange(3))
        assert probs.shape == (3, 10)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(3))
