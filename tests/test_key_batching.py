"""In-process key-request batching (``CryptoNNConfig.batch_key_requests``).

Batching must not change any numeric result -- only how the traffic is
accounted: one ``*-key-batch-*`` envelope per iteration step instead of
the per-request message fan-out the paper's Section IV-B2 formula
counts.
"""

import random

import numpy as np
import pytest

from repro.core import protocol
from repro.core import serialization as ser
from repro.core.config import CryptoNNConfig
from repro.core.cryptonn import CryptoNNTrainer
from repro.core.entities import Client, TrustedAuthority
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD


def _one_iteration(batch_key_requests: bool, k: int = 5, n: int = 4,
                   m: int = 12):
    config = CryptoNNConfig(batch_key_requests=batch_key_requests)
    authority = TrustedAuthority(config, rng=random.Random(0))
    client = Client(authority)
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, size=(m, n))
    y = rng.integers(0, 2, size=m)
    enc = client.encrypt_tabular(x, y, num_classes=2)
    model = Sequential([Dense(n, k, rng=np.random.default_rng(1)), ReLU(),
                        Dense(k, 2, rng=np.random.default_rng(1))])
    trainer = CryptoNNTrainer(model, authority, config=config)
    authority.traffic.clear()
    history = trainer.fit(enc, SGD(0.1), epochs=1, batch_size=m,
                          max_batches=1, rng=np.random.default_rng(2))
    return authority, trainer, history


class TestAuthorityBatchMethods:
    @pytest.fixture()
    def authority(self):
        return TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))

    def test_batch_records_one_envelope(self, authority):
        rows = [[1, 2, 3], [4, 5, 6]]
        keys = authority.derive_feip_keys_batch(rows)
        assert len(keys) == 2
        assert authority.traffic.message_count(
            protocol.KIND_FEIP_KEY_BATCH_REQUEST) == 1
        assert authority.traffic.total_bytes(
            kind=protocol.KIND_FEIP_KEY_BATCH_REQUEST) == \
            ser.feip_key_batch_request_wire_size(
                2, 3, authority.params, authority.config.key_weight_bytes)
        assert authority.traffic.total_bytes(
            kind=protocol.KIND_FEIP_KEY_BATCH_RESPONSE) == \
            ser.feip_key_batch_response_wire_size(
                2, 3, authority.params, authority.config.key_weight_bytes)

    def test_batch_keys_identical_to_unbatched(self, authority):
        rows = [[7, -8, 9]]
        assert authority.derive_feip_keys_batch(rows) == \
            authority.derive_feip_keys(rows)

    def test_febo_batch_envelope_sizes(self, authority):
        bpk = authority.febo_public_key()
        ct = authority.febo.encrypt(bpk, 5)
        keys = authority.derive_febo_keys_batch([(ct.cmt, "+", 2),
                                                 (ct.cmt, "-", 3)])
        assert len(keys) == 2
        assert authority.traffic.message_count(
            protocol.KIND_FEBO_KEY_BATCH_REQUEST) == 1
        assert authority.traffic.total_bytes(
            kind=protocol.KIND_FEBO_KEY_BATCH_REQUEST) == \
            ser.febo_key_batch_request_wire_size(
                2, authority.params, authority.config.key_weight_bytes)

    def test_empty_batches_are_silent(self, authority):
        assert authority.derive_feip_keys_batch([]) == []
        assert authority.derive_febo_keys_batch([]) == []
        assert authority.traffic.message_count() == 0


class TestBatchedTraining:
    def test_batched_run_matches_unbatched_exactly(self):
        """Batching changes accounting, never numerics."""
        _, trainer_a, history_a = _one_iteration(False)
        _, trainer_b, history_b = _one_iteration(True)
        assert history_a.batch_loss == history_b.batch_loss
        assert history_a.batch_accuracy == history_b.batch_accuracy
        np.testing.assert_array_equal(
            trainer_a.model.layers[0].params["W"],
            trainer_b.model.layers[0].params["W"])

    def test_batched_iteration_message_counts(self):
        k, n, m = 5, 4, 12
        authority, _, _ = _one_iteration(True, k, n, m)
        log = authority.traffic
        # first-layer rows + all per-sample loss keys: one envelope each
        assert log.message_count(protocol.KIND_FEIP_KEY_BATCH_REQUEST) == 2
        # label subtraction + first-epoch feature reconstruction batches
        assert log.message_count(protocol.KIND_FEBO_KEY_BATCH_REQUEST) == 1 + m
        # nothing recorded under the unbatched kinds
        assert log.message_count(protocol.KIND_FEIP_KEY_REQUEST) == 0
        assert log.message_count(protocol.KIND_FEBO_KEY_REQUEST) == 0

    def test_batched_bytes_are_payload_plus_headers(self):
        k, n, m = 5, 4, 12
        unbatched, _, _ = _one_iteration(False, k, n, m)
        batched, _, _ = _one_iteration(True, k, n, m)
        w = unbatched.config.key_weight_bytes
        plain_up = unbatched.traffic.total_bytes(
            kind=protocol.KIND_FEIP_KEY_REQUEST)
        batch_up = batched.traffic.total_bytes(
            kind=protocol.KIND_FEIP_KEY_BATCH_REQUEST)
        # paper formula payload is identical; batching adds one 8-byte
        # envelope header per coalesced message (2 feip envelopes here)
        assert plain_up == k * n * w + m * 2 * w
        assert batch_up == plain_up + 2 * ser.BATCH_HEADER_BYTES
        # the request fan-out collapses: 1 + m messages -> 2 envelopes
        assert unbatched.traffic.message_count(
            protocol.KIND_FEIP_KEY_REQUEST) == 1 + m
