"""Tests for the authority key-release policy."""

import random

import numpy as np
import pytest

from repro.core.config import CryptoNNConfig
from repro.core.cryptonn import CryptoNNTrainer
from repro.core.entities import Client, TrustedAuthority
from repro.core.policy import KeyReleasePolicy, PolicyViolation
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD


class TestUnitVectorCheck:
    def test_rejects_exact_unit_vector(self):
        policy = KeyReleasePolicy(forbid_unit_vectors=True)
        with pytest.raises(PolicyViolation, match="single coordinate"):
            policy.check_feip_request([[0, 0, 5, 0]])

    def test_rejects_near_unit_vector(self):
        policy = KeyReleasePolicy(forbid_unit_vectors=True,
                                  unit_mass_threshold=0.9)
        with pytest.raises(PolicyViolation):
            policy.check_feip_request([[100, 1, 1, 1]])

    def test_accepts_balanced_vector(self):
        policy = KeyReleasePolicy(forbid_unit_vectors=True)
        policy.check_feip_request([[3, -4, 5, 2]])
        assert len(policy.grants()) == 1

    def test_length_one_vectors_always_pass(self):
        # a length-1 key is the functionality, not an attack
        policy = KeyReleasePolicy(forbid_unit_vectors=True)
        policy.check_feip_request([[7]])

    def test_zero_vector_passes_mass_check(self):
        policy = KeyReleasePolicy(forbid_unit_vectors=True)
        policy.check_feip_request([[0, 0, 0]])


class TestVectorBudget:
    def test_budget_enforced(self):
        policy = KeyReleasePolicy(max_distinct_vectors=2)
        policy.check_feip_request([[1, 2], [3, 4]])
        with pytest.raises(PolicyViolation, match="budget"):
            policy.check_feip_request([[5, 6]])

    def test_repeated_vectors_are_free(self):
        policy = KeyReleasePolicy(max_distinct_vectors=1)
        policy.check_feip_request([[1, 2]])
        policy.check_feip_request([[1, 2]])  # same vector, no new budget

    def test_budget_is_per_length(self):
        policy = KeyReleasePolicy(max_distinct_vectors=1)
        policy.check_feip_request([[1, 2]])
        policy.check_feip_request([[1, 2, 3]])  # different eta, own budget


class TestFeboOps:
    def test_disallowed_op(self):
        policy = KeyReleasePolicy(allowed_febo_ops=frozenset("+-"))
        with pytest.raises(PolicyViolation):
            policy.check_febo_request("*")
        assert len(policy.refusals()) == 1

    def test_allowed_op(self):
        policy = KeyReleasePolicy()
        policy.check_febo_request("+")
        assert policy.grants()[-1].detail == "op '+'"


class TestPolicyInAuthority:
    def test_extraction_attempt_refused(self):
        policy = KeyReleasePolicy(forbid_unit_vectors=True)
        authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(0),
                                     policy=policy)
        with pytest.raises(PolicyViolation):
            authority.derive_feip_keys([[0, 0, 1]])
        assert authority.feip_keys_issued == 0

    def test_normal_training_passes_policy(self):
        """The default CryptoNN loop must not trip the unit-vector check:
        Xavier-initialized weight columns are never unit-like."""
        policy = KeyReleasePolicy(forbid_unit_vectors=True)
        authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(0),
                                     policy=policy)
        client = Client(authority)
        x = np.random.default_rng(0).uniform(-1, 1, size=(20, 4))
        y = (x[:, 0] > 0).astype(int)
        enc = client.encrypt_tabular(x, y, num_classes=2)
        rng = np.random.default_rng(1)
        model = Sequential([Dense(4, 6, rng=rng), ReLU(),
                            Dense(6, 2, rng=rng)])
        trainer = CryptoNNTrainer(model, authority)
        trainer.fit(enc, SGD(0.3), epochs=1, batch_size=10,
                    rng=np.random.default_rng(2))
        assert not policy.refusals()
        assert policy.grants()
