"""Unit tests for repro.mathutils.group."""

import random

import pytest

from repro.mathutils.group import GroupParams, SchnorrGroup, _PREDEFINED


@pytest.mark.parametrize("bits", sorted(_PREDEFINED))
def test_predefined_params_are_valid(bits):
    params = GroupParams.predefined(bits)
    params.validate()
    assert params.bits == bits


def test_predefined_unknown_size_raises():
    with pytest.raises(ValueError, match="supported sizes"):
        GroupParams.predefined(77)


def test_generate_fresh_params():
    params = GroupParams.generate(24, rng=random.Random(3))
    params.validate()


def test_validate_rejects_bad_generator():
    base = GroupParams.predefined(32)
    broken = GroupParams(p=base.p, q=base.q, g=1)
    with pytest.raises(ValueError):
        broken.validate()


def test_validate_rejects_wrong_q():
    base = GroupParams.predefined(32)
    broken = GroupParams(p=base.p, q=base.q - 1, g=base.g)
    with pytest.raises(ValueError):
        broken.validate()


class TestSchnorrGroupOps:
    def test_generator_has_order_q(self, group):
        assert group.exp(group.g, group.q) == 1
        assert group.gexp(0) == 1

    def test_exp_reduces_mod_q(self, group):
        assert group.gexp(group.q + 5) == group.gexp(5)

    def test_negative_exponent(self, group):
        a = group.gexp(10)
        assert group.mul(a, group.gexp(-10)) == 1

    def test_mul_div_inverse(self, group):
        a, b = group.random_element(), group.random_element()
        assert group.div(group.mul(a, b), b) == a
        assert group.mul(a, group.inv(a)) == 1

    def test_exp_inverse_in_exponent_ring(self, group):
        for y in (2, 3, 17, -5):
            inv = group.exp_inverse(y)
            assert (y * inv) % group.q == 1

    def test_random_element_in_subgroup(self, group):
        for _ in range(10):
            assert group.contains(group.random_element())

    def test_contains_rejects_non_members(self, group):
        # p-1 has order 2, not in the order-q subgroup
        assert not group.contains(group.p - 1)
        assert not group.contains(0)
        assert not group.contains(group.p)

    def test_homomorphism(self, group):
        assert group.mul(group.gexp(7), group.gexp(11)) == group.gexp(18)
