"""Shared fixtures.

Crypto tests run on the 32-bit toy group: the code path is identical to
the paper's 256-bit setting (see DESIGN.md substitution notes) and the
suite stays fast.  A handful of tests exercise larger groups explicitly.

The ``timeout_guard`` marker arms a SIGALRM watchdog around a test so
socket/service tests can never hang the suite: if the deadline passes,
the test fails with a TimeoutError instead of blocking forever.
"""

from __future__ import annotations

import random
import signal

import numpy as np
import pytest

from repro.fe.febo import Febo
from repro.fe.feip import Feip
from repro.mathutils.dlog import SolverCache
from repro.mathutils.group import GroupParams, SchnorrGroup

TEST_BITS = 32


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout_guard(seconds): fail the test if it runs longer than "
        "``seconds`` (SIGALRM watchdog; guards socket tests against hangs)",
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout_guard")
    if marker is None or not hasattr(signal, "SIGALRM"):
        return (yield)
    seconds = int(marker.args[0]) if marker.args else 60

    def _expired(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded its {seconds}s timeout guard")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def params() -> GroupParams:
    return GroupParams.predefined(TEST_BITS)


@pytest.fixture(scope="session")
def solver_cache() -> SolverCache:
    return SolverCache()


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture()
def np_rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def group(params, rng) -> SchnorrGroup:
    return SchnorrGroup(params, rng=rng)


@pytest.fixture()
def feip(params, rng, solver_cache) -> Feip:
    return Feip(params, rng=rng, solver_cache=solver_cache)


@pytest.fixture()
def febo(params, rng, solver_cache) -> Febo:
    return Febo(params, rng=rng, solver_cache=solver_cache)
