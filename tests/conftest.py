"""Shared fixtures.

Crypto tests run on the 32-bit toy group: the code path is identical to
the paper's 256-bit setting (see DESIGN.md substitution notes) and the
suite stays fast.  A handful of tests exercise larger groups explicitly.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.fe.febo import Febo
from repro.fe.feip import Feip
from repro.mathutils.dlog import SolverCache
from repro.mathutils.group import GroupParams, SchnorrGroup

TEST_BITS = 32


@pytest.fixture(scope="session")
def params() -> GroupParams:
    return GroupParams.predefined(TEST_BITS)


@pytest.fixture(scope="session")
def solver_cache() -> SolverCache:
    return SolverCache()


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture()
def np_rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def group(params, rng) -> SchnorrGroup:
    return SchnorrGroup(params, rng=rng)


@pytest.fixture()
def feip(params, rng, solver_cache) -> Feip:
    return Feip(params, rng=rng, solver_cache=solver_cache)


@pytest.fixture()
def febo(params, rng, solver_cache) -> Febo:
    return Febo(params, rng=rng, solver_cache=solver_cache)
