"""Tests for weight initializers."""

import numpy as np

from repro.nn.initializers import he_normal, xavier_uniform, zeros


class TestXavier:
    def test_bounds(self, np_rng):
        w = xavier_uniform(np_rng, (50, 60), fan_in=50, fan_out=60)
        limit = np.sqrt(6.0 / 110)
        assert np.abs(w).max() <= limit
        assert w.shape == (50, 60)

    def test_roughly_zero_mean(self, np_rng):
        w = xavier_uniform(np_rng, (200, 200), fan_in=200, fan_out=200)
        assert abs(w.mean()) < 0.01


class TestHeNormal:
    def test_variance_scales_with_fan_in(self, np_rng):
        w = he_normal(np_rng, (400, 400), fan_in=400)
        expected_std = np.sqrt(2.0 / 400)
        assert abs(w.std() - expected_std) / expected_std < 0.1

    def test_shape(self, np_rng):
        assert he_normal(np_rng, (3, 2, 4, 4), fan_in=32).shape == (3, 2, 4, 4)


def test_zeros():
    z = zeros((2, 3))
    assert z.shape == (2, 3)
    assert (z == 0).all()
    assert z.dtype == np.float64
