"""Tests for the encrypted-data containers and batching."""

import numpy as np
import pytest

from repro.core.encdata import DecryptionCounters, batch_indices


class TestBatchIndices:
    def test_partition_covers_everything(self, np_rng):
        batches = batch_indices(23, 5, np_rng)
        flat = np.concatenate(batches)
        assert sorted(flat.tolist()) == list(range(23))
        assert [len(b) for b in batches] == [5, 5, 5, 5, 3]

    def test_no_shuffle_is_ordered(self):
        batches = batch_indices(6, 4, shuffle=False)
        assert batches[0].tolist() == [0, 1, 2, 3]
        assert batches[1].tolist() == [4, 5]

    def test_shuffle_respects_rng(self):
        a = batch_indices(10, 3, np.random.default_rng(1))
        b = batch_indices(10, 3, np.random.default_rng(1))
        for x, y in zip(a, b):
            assert x.tolist() == y.tolist()

    def test_batch_larger_than_dataset(self):
        batches = batch_indices(3, 10, shuffle=False)
        assert len(batches) == 1
        assert len(batches[0]) == 3


class TestDecryptionCounters:
    def test_snapshot(self):
        counters = DecryptionCounters()
        counters.feip_decrypts += 3
        counters.febo_keys_requested += 2
        snap = counters.snapshot()
        assert snap == {"feip_decrypts": 3, "febo_decrypts": 0,
                        "feip_keys_requested": 0, "febo_keys_requested": 2}

    def test_snapshot_is_a_copy(self):
        counters = DecryptionCounters()
        snap = counters.snapshot()
        counters.feip_decrypts = 99
        assert snap["feip_decrypts"] == 0
