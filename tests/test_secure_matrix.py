"""Tests for the secure matrix computation scheme (Algorithm 1)."""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fe.errors import CiphertextError, UnsupportedOperationError
from repro.matrix.secure_matrix import (
    SecureMatrixScheme,
    as_int_matrix,
    matrix_bound_dot,
    matrix_bound_elementwise,
)


@pytest.fixture()
def scheme(params, rng, solver_cache):
    s = SecureMatrixScheme(params, rng=rng, solver_cache=solver_cache)
    return s


def random_matrix(rng, rows, cols, lo=-20, hi=20):
    return np.array(
        [[rng.randrange(lo, hi + 1) for _ in range(cols)] for _ in range(rows)],
        dtype=object,
    )


class TestHelpers:
    def test_as_int_matrix_normalizes(self):
        out = as_int_matrix([[1.0, 2], [3, np.int64(4)]])
        assert out.dtype == object
        assert all(isinstance(v, int) for v in out.ravel())

    def test_as_int_matrix_rejects_vector(self):
        with pytest.raises(ValueError):
            as_int_matrix([1, 2, 3])

    def test_bounds(self):
        assert matrix_bound_dot(10, 20, 5) == 1001
        assert matrix_bound_elementwise("+", 10, 20) == 31
        assert matrix_bound_elementwise("*", 10, 20) == 201
        assert matrix_bound_elementwise("/", 10, 20) == 11


class TestDotProduct:
    def test_matches_numpy(self, scheme, rng):
        msk_ip, _ = scheme.setup(column_length=4)
        x = random_matrix(rng, 4, 6)
        y = random_matrix(rng, 3, 4)
        enc = scheme.pre_process_encryption(x, with_febo=False)
        keys = scheme.derive_dot_keys(msk_ip, y)
        z = scheme.secure_dot(enc, keys, matrix_bound_dot(20, 20, 4))
        np.testing.assert_array_equal(z, y @ x)

    def test_single_row_and_column(self, scheme, rng):
        msk_ip, _ = scheme.setup(column_length=3)
        x = random_matrix(rng, 3, 1)
        y = random_matrix(rng, 1, 3)
        enc = scheme.pre_process_encryption(x, with_febo=False)
        keys = scheme.derive_dot_keys(msk_ip, y)
        z = scheme.secure_dot(enc, keys, matrix_bound_dot(20, 20, 3))
        assert z.shape == (1, 1)
        assert z[0, 0] == (y @ x)[0, 0]

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(rows=st.integers(2, 4), inner=st.integers(1, 4),
           cols=st.integers(1, 4), seed=st.integers(0, 1000))
    def test_property_random_shapes(self, params, solver_cache,
                                    rows, inner, cols, seed):
        rng = random.Random(seed)
        scheme = SecureMatrixScheme(params, rng=rng, solver_cache=solver_cache)
        msk_ip, _ = scheme.setup(column_length=inner)
        x = random_matrix(rng, inner, cols, -9, 9)
        y = random_matrix(rng, rows, inner, -9, 9)
        enc = scheme.pre_process_encryption(x, with_febo=False)
        keys = scheme.derive_dot_keys(msk_ip, y)
        z = scheme.secure_dot(enc, keys, matrix_bound_dot(9, 9, inner))
        np.testing.assert_array_equal(z, y @ x)


class TestElementwise:
    @pytest.mark.parametrize("op,func", [
        ("+", lambda x, y: x + y),
        ("-", lambda x, y: x - y),
        ("*", lambda x, y: x * y),
    ])
    def test_matches_numpy(self, scheme, rng, op, func):
        _, msk_bo = scheme.setup(column_length=3)
        x = random_matrix(rng, 3, 4)
        y = random_matrix(rng, 3, 4)
        enc = scheme.pre_process_encryption(x, with_feip=False)
        keys = scheme.derive_elementwise_keys(msk_bo, op, y, enc.commitments())
        z = scheme.secure_elementwise(enc, keys,
                                      matrix_bound_elementwise(op, 20, 20))
        np.testing.assert_array_equal(z, func(x, y))

    def test_exact_division(self, scheme, rng):
        _, msk_bo = scheme.setup(column_length=2)
        y = random_matrix(rng, 2, 2, 1, 9)
        quotients = random_matrix(rng, 2, 2, -9, 9)
        x = y * quotients
        enc = scheme.pre_process_encryption(x, with_feip=False)
        keys = scheme.derive_elementwise_keys(msk_bo, "/", y, enc.commitments())
        z = scheme.secure_elementwise(enc, keys,
                                      matrix_bound_elementwise("/", 100, 9))
        np.testing.assert_array_equal(z, quotients)

    def test_key_shape_mismatch(self, scheme, rng):
        _, msk_bo = scheme.setup(column_length=2)
        x = random_matrix(rng, 2, 2)
        enc = scheme.pre_process_encryption(x, with_feip=False)
        keys = scheme.derive_elementwise_keys(msk_bo, "+", x, enc.commitments())
        with pytest.raises(UnsupportedOperationError):
            scheme.secure_elementwise(enc, [keys[0]], 100)


class TestEncryptedMatrix:
    def test_partial_encryption_guards(self, scheme, rng):
        scheme.setup(column_length=2)
        x = random_matrix(rng, 2, 2)
        only_ip = scheme.pre_process_encryption(x, with_febo=False)
        with pytest.raises(CiphertextError):
            only_ip.require_febo()
        only_bo = scheme.pre_process_encryption(x, with_feip=False)
        with pytest.raises(CiphertextError):
            only_bo.require_feip()

    def test_commitments_shape(self, scheme, rng):
        scheme.setup(column_length=3)
        x = random_matrix(rng, 3, 5)
        enc = scheme.pre_process_encryption(x)
        cmts = enc.commitments()
        assert len(cmts) == 3 and len(cmts[0]) == 5

    def test_wrong_column_length_rejected(self, scheme, rng):
        scheme.setup(column_length=3)
        with pytest.raises(CiphertextError):
            scheme.pre_process_encryption(random_matrix(rng, 4, 2))

    def test_setup_required(self, params, rng, solver_cache):
        scheme = SecureMatrixScheme(params, rng=rng, solver_cache=solver_cache)
        with pytest.raises(CiphertextError):
            scheme.pre_process_encryption(random_matrix(rng, 2, 2))
