"""Tests for the secure feed-forward / back-propagation layers.

The invariant throughout: the secure computation must agree with its
plaintext counterpart up to fixed-point quantization (absolute error
bounded by a small multiple of 1/scale).
"""

import random

import numpy as np
import pytest

from repro.core.config import CryptoNNConfig
from repro.core.entities import Client, TrustedAuthority
from repro.core.secure_layers import (
    SecureConvInput,
    SecureLinearInput,
    SecureMSE,
    SecureSoftmaxCrossEntropy,
)
from repro.nn.activations import softmax, log_softmax
from repro.nn.conv import Conv2D
from repro.nn.layers import Dense
from repro.nn.losses import MSELoss, SoftmaxCrossEntropyLoss

QUANT_TOL = 0.05  # generous envelope for scale=100 quantization


@pytest.fixture()
def authority():
    return TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))


@pytest.fixture()
def client(authority):
    return Client(authority)


def quantize(values, scale=100):
    """The values the secure path actually sees after encoding."""
    return np.rint(np.asarray(values) * scale) / scale


class TestSecureLinearInput:
    def test_forward_matches_plaintext(self, authority, client, np_rng):
        x = np_rng.uniform(-1, 1, size=(5, 4))
        y = np_rng.integers(0, 2, size=5)
        enc = client.encrypt_tabular(x, y, num_classes=2)
        dense = Dense(4, 3, rng=np_rng)
        secure = SecureLinearInput(dense, authority, authority.config)
        z_secure = secure.forward(enc.samples, np.arange(5))
        z_plain = quantize(x) @ quantize(dense.params["W"]) + dense.params["b"]
        np.testing.assert_allclose(z_secure, z_plain, atol=QUANT_TOL)

    def test_backward_weight_gradient(self, authority, client, np_rng):
        x = np_rng.uniform(-1, 1, size=(4, 3))
        y = np_rng.integers(0, 2, size=4)
        enc = client.encrypt_tabular(x, y, num_classes=2)
        dense = Dense(3, 2, rng=np_rng)
        secure = SecureLinearInput(dense, authority, authority.config)
        secure.forward(enc.samples, np.arange(4))
        grad_z = np_rng.normal(size=(4, 2))
        secure.backward(grad_z)
        expected_w = quantize(x).T @ grad_z
        np.testing.assert_allclose(dense.grads["W"], expected_w, atol=1e-9)
        np.testing.assert_allclose(dense.grads["b"], grad_z.sum(axis=0))

    def test_backward_before_forward(self, authority, np_rng):
        dense = Dense(3, 2, rng=np_rng)
        secure = SecureLinearInput(dense, authority, authority.config)
        with pytest.raises(RuntimeError):
            secure.backward(np.zeros((1, 2)))

    def test_feature_cache_avoids_rework(self, authority, client, np_rng):
        x = np_rng.uniform(-1, 1, size=(3, 2))
        enc = client.encrypt_tabular(x, np.zeros(3, dtype=int), num_classes=2)
        dense = Dense(2, 2, rng=np_rng)
        secure = SecureLinearInput(dense, authority, authority.config)
        secure.forward(enc.samples, np.arange(3))
        secure.backward(np.ones((3, 2)))
        decrypts_after_first = secure.counters.febo_decrypts
        secure.forward(enc.samples, np.arange(3))
        secure.backward(np.ones((3, 2)))
        assert secure.counters.febo_decrypts == decrypts_after_first

    def test_cache_disabled_repays_cost(self, np_rng):
        authority = TrustedAuthority(
            CryptoNNConfig(cache_reconstructed_features=False),
            rng=random.Random(0),
        )
        client = Client(authority)
        x = np_rng.uniform(-1, 1, size=(2, 2))
        enc = client.encrypt_tabular(x, np.zeros(2, dtype=int), num_classes=2)
        dense = Dense(2, 2, rng=np_rng)
        secure = SecureLinearInput(dense, authority, authority.config)
        for _ in range(2):
            secure.forward(enc.samples, np.arange(2))
            secure.backward(np.ones((2, 2)))
        assert secure.counters.febo_decrypts == 2 * 4

    def test_weight_clipping_keeps_bound_valid(self, authority, client, np_rng):
        x = np_rng.uniform(-1, 1, size=(2, 2))
        enc = client.encrypt_tabular(x, np.zeros(2, dtype=int), num_classes=2)
        dense = Dense(2, 1, rng=np_rng)
        dense.params["W"][...] = 100.0  # way past max_abs_weight
        secure = SecureLinearInput(dense, authority, authority.config)
        z = secure.forward(enc.samples, np.arange(2))  # must not raise
        clipped = np.clip(dense.params["W"], -authority.config.max_abs_weight,
                          authority.config.max_abs_weight)
        expected = quantize(x) @ clipped + dense.params["b"]
        np.testing.assert_allclose(z, expected, atol=QUANT_TOL)


class TestSecureConvInput:
    def test_forward_matches_plaintext_conv(self, authority, client, np_rng):
        imgs = np_rng.uniform(0, 1, size=(2, 1, 5, 5))
        labels = np.array([0, 1])
        enc = client.encrypt_images(imgs, labels, num_classes=2,
                                    filter_size=3, stride=1, padding=1)
        conv = Conv2D(1, 2, filter_size=3, stride=1, padding=1, rng=np_rng)
        secure = SecureConvInput(conv, authority, authority.config)
        z_secure = secure.forward(enc.images, np.arange(2))
        # plaintext twin on the quantized values
        conv_q = Conv2D(1, 2, filter_size=3, stride=1, padding=1, rng=np_rng)
        conv_q.params["W"][...] = quantize(conv.params["W"])
        conv_q.params["b"][...] = conv.params["b"]
        z_plain = conv_q.forward(quantize(imgs))
        np.testing.assert_allclose(z_secure, z_plain, atol=QUANT_TOL)

    def test_backward_matches_plaintext_conv(self, authority, client, np_rng):
        imgs = np_rng.uniform(0, 1, size=(2, 1, 4, 4))
        enc = client.encrypt_images(imgs, np.zeros(2, dtype=int), num_classes=2,
                                    filter_size=3, stride=1, padding=1)
        conv = Conv2D(1, 2, filter_size=3, stride=1, padding=1, rng=np_rng)
        secure = SecureConvInput(conv, authority, authority.config)
        secure.forward(enc.images, np.arange(2))
        grad_out = np_rng.normal(size=(2, 2, 4, 4))
        secure.backward(grad_out)
        # reference gradients from the plaintext layer on quantized pixels
        twin = Conv2D(1, 2, filter_size=3, stride=1, padding=1, rng=np_rng)
        twin.params["W"][...] = conv.params["W"]
        twin.params["b"][...] = conv.params["b"]
        twin.forward(quantize(imgs))
        twin.backward(grad_out)
        np.testing.assert_allclose(conv.grads["W"], twin.grads["W"], atol=1e-9)
        np.testing.assert_allclose(conv.grads["b"], twin.grads["b"], atol=1e-9)


class TestSecureSoftmaxCrossEntropy:
    def test_loss_matches_plaintext(self, authority, client, np_rng):
        labels = np.array([0, 2, 1])
        enc = client.encrypt_tabular(np.zeros((3, 2)), labels, num_classes=3)
        logits = np_rng.normal(size=(3, 3))
        secure = SecureSoftmaxCrossEntropy(authority, authority.config)
        loss_secure = secure.forward(logits, enc.labels)
        plain = SoftmaxCrossEntropyLoss()
        loss_plain = plain.forward(logits, np.eye(3)[labels])
        assert loss_secure == pytest.approx(loss_plain, abs=QUANT_TOL)

    def test_gradient_matches_p_minus_y(self, authority, client, np_rng):
        labels = np.array([1, 0])
        enc = client.encrypt_tabular(np.zeros((2, 2)), labels, num_classes=2)
        logits = np_rng.normal(size=(2, 2))
        secure = SecureSoftmaxCrossEntropy(authority, authority.config)
        secure.forward(logits, enc.labels)
        grad = secure.backward(enc.labels)
        expected = (softmax(logits, axis=1) - np.eye(2)[labels]) / 2
        np.testing.assert_allclose(grad, expected, atol=QUANT_TOL)

    def test_extreme_logits_clamped_not_crashing(self, authority, client):
        labels = np.array([0])
        enc = client.encrypt_tabular(np.zeros((1, 2)), labels, num_classes=2)
        logits = np.array([[-100.0, 100.0]])  # log p ~ -200 without clamping
        secure = SecureSoftmaxCrossEntropy(authority, authority.config)
        loss = secure.forward(logits, enc.labels)
        assert loss == pytest.approx(-secure.min_log_prob, abs=1.0)

    def test_batch_size_mismatch(self, authority, client):
        enc = client.encrypt_tabular(np.zeros((2, 2)), np.array([0, 1]), 2)
        secure = SecureSoftmaxCrossEntropy(authority, authority.config)
        with pytest.raises(ValueError):
            secure.forward(np.zeros((3, 2)), enc.labels)

    def test_backward_before_forward(self, authority):
        secure = SecureSoftmaxCrossEntropy(authority, authority.config)
        with pytest.raises(RuntimeError):
            secure.backward([])


class TestSecureMSE:
    def test_loss_and_gradient_match_plaintext(self, authority, client, np_rng):
        labels = np.array([0, 1, 1])
        enc = client.encrypt_tabular(np.zeros((3, 2)), labels, num_classes=2)
        predictions = np_rng.uniform(0, 1, size=(3, 2))
        secure = SecureMSE(authority, authority.config)
        loss_secure = secure.forward(predictions, enc.labels)
        grad_secure = secure.backward(enc.labels)
        plain = MSELoss()
        targets = np.eye(2)[labels]
        loss_plain = plain.forward(quantize(predictions), targets)
        assert loss_secure == pytest.approx(loss_plain, abs=QUANT_TOL)
        np.testing.assert_allclose(
            grad_secure, (quantize(predictions) - targets) / 3, atol=1e-9
        )

    def test_backward_before_forward(self, authority):
        with pytest.raises(RuntimeError):
            SecureMSE(authority, authority.config).backward([])
