"""Tests for BatchNorm1D."""

import numpy as np
import pytest

from repro.nn.gradcheck import numeric_grad
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.normalization import BatchNorm1D
from repro.nn.optimizers import SGD
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.data.preprocess import one_hot


class TestForward:
    def test_train_output_standardized(self, np_rng):
        layer = BatchNorm1D(4)
        x = np_rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_gamma_beta_applied(self, np_rng):
        layer = BatchNorm1D(3)
        layer.params["gamma"][...] = 2.0
        layer.params["beta"][...] = 1.0
        x = np_rng.normal(size=(50, 3))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 1.0, atol=1e-7)

    def test_eval_uses_running_stats(self, np_rng):
        layer = BatchNorm1D(2, momentum=0.0)  # running stats = last batch
        x = np_rng.normal(loc=10.0, size=(100, 2))
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-2)

    def test_shape_check(self, np_rng):
        with pytest.raises(ValueError):
            BatchNorm1D(3).forward(np_rng.normal(size=(4, 5)))

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            BatchNorm1D(2, momentum=1.0)


class TestBackward:
    def test_gradient_matches_numeric(self, np_rng):
        layer = BatchNorm1D(3)
        x = np_rng.normal(size=(6, 3))
        # randomize gamma/beta so the test is not at the identity point
        layer.params["gamma"][...] = np_rng.uniform(0.5, 1.5, size=3)
        layer.params["beta"][...] = np_rng.normal(size=3)
        weight = np_rng.normal(size=(6, 3))  # non-uniform upstream grad

        def objective():
            return float((layer.forward(x, training=True) * weight).sum())

        numeric = numeric_grad(objective, x)
        layer.forward(x, training=True)
        analytic = layer.backward(weight)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_param_gradients_match_numeric(self, np_rng):
        layer = BatchNorm1D(3)
        x = np_rng.normal(size=(5, 3))
        weight = np_rng.normal(size=(5, 3))
        for name in ("gamma", "beta"):
            def objective():
                return float((layer.forward(x, training=True) * weight).sum())
            numeric = numeric_grad(objective, layer.params[name])
            layer.forward(x, training=True)
            layer.backward(weight)
            np.testing.assert_allclose(layer.grads[name], numeric, atol=1e-6)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            BatchNorm1D(2).backward(np.ones((1, 2)))


class TestInModel:
    def test_trains_with_batchnorm(self, np_rng):
        x = np_rng.normal(size=(300, 4)) * 10  # badly scaled inputs
        labels = (x[:, 0] + x[:, 1] > 0).astype(int)
        model = Sequential([
            Dense(4, 8, rng=np_rng), BatchNorm1D(8), ReLU(),
            Dense(8, 2, rng=np_rng),
        ])
        model.fit(x, one_hot(labels, 2), SoftmaxCrossEntropyLoss(), SGD(0.1),
                  epochs=10, batch_size=32, rng=np_rng)
        assert model.evaluate(x, one_hot(labels, 2)) > 0.9
