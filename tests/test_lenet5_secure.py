"""Secure training at the paper's actual LeNet-5 geometry (28x28, C1=5x5).

The scaled experiments use a small LeNet variant for speed; this test
runs the *real* first-layer geometry of Section III-E -- 28x28 images,
5x5 filters, padding 2, six filters, 784 windows per image -- through a
full secure iteration, to show nothing about the framework depends on
the reduced geometry.  Kept to a 2-image batch so it stays test-sized.
"""

import random

import numpy as np
import pytest

from repro.core.config import CryptoNNConfig
from repro.core.cryptocnn import CryptoCNNTrainer
from repro.core.entities import Client, TrustedAuthority
from repro.data.preprocess import one_hot
from repro.data.synth_digits import load_synth_digits
from repro.nn.lenet import build_lenet5
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.optimizers import SGD


@pytest.fixture(scope="module")
def lenet5_run():
    train, _ = load_synth_digits(n_train=2, n_test=1, canvas=28, seed=9)
    authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))
    client = Client(authority)
    enc = client.encrypt_images(train.x, train.y, num_classes=10,
                                filter_size=5, stride=1, padding=2)
    model = build_lenet5(np.random.default_rng(0))
    twin = build_lenet5(np.random.default_rng(1))
    twin.set_weights(model.get_weights())
    trainer = CryptoCNNTrainer(model, authority)
    history = trainer.fit(enc, SGD(0.1), epochs=1, batch_size=2,
                          rng=np.random.default_rng(2), shuffle=False)
    plain_history = twin.fit(train.x, one_hot(train.y, 10),
                             SoftmaxCrossEntropyLoss(), SGD(0.1), epochs=1,
                             batch_size=2, rng=np.random.default_rng(2),
                             shuffle=False)
    return trainer, history, plain_history


def test_secure_lenet5_iteration_matches_plaintext(lenet5_run):
    trainer, history, plain_history = lenet5_run
    assert history.batch_loss[0] == pytest.approx(plain_history.batch_loss[0],
                                                  abs=0.05)


def test_secure_lenet5_decrypt_counts(lenet5_run):
    trainer, _, _ = lenet5_run
    snap = trainer.counters.snapshot()
    # C1: 28x28 output positions x 6 filters x 2 images, + 2 loss decrypts
    assert snap["feip_decrypts"] == 28 * 28 * 6 * 2 + 2
    # gradient: 10-class P-Y per sample + 784 pixels per image
    assert snap["febo_decrypts"] == 2 * 10 + 2 * 784


def test_secure_lenet5_geometry_is_papers(lenet5_run):
    trainer, _, _ = lenet5_run
    conv = trainer.secure_input.conv
    assert (conv.filter_size, conv.stride, conv.padding) == (5, 1, 2)
    assert conv.out_channels == 6
