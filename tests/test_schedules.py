"""Tests for learning-rate schedules."""

import pytest

from repro.nn.optimizers import SGD
from repro.nn.schedules import ConstantSchedule, CosineAnnealing, StepDecay


class TestConstant:
    def test_rate_fixed(self):
        schedule = ConstantSchedule(0.1)
        assert schedule.rate(0) == schedule.rate(100) == 0.1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)


class TestStepDecay:
    def test_decay_points(self):
        schedule = StepDecay(1.0, factor=0.5, step_size=10)
        assert schedule.rate(0) == 1.0
        assert schedule.rate(9) == 1.0
        assert schedule.rate(10) == 0.5
        assert schedule.rate(25) == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecay(1.0, factor=0.0)
        with pytest.raises(ValueError):
            StepDecay(1.0, step_size=0)


class TestCosine:
    def test_endpoints(self):
        schedule = CosineAnnealing(1.0, total_epochs=10, minimum=0.1)
        assert schedule.rate(0) == pytest.approx(1.0)
        assert schedule.rate(10) == pytest.approx(0.1)

    def test_monotone_decreasing(self):
        schedule = CosineAnnealing(1.0, total_epochs=20)
        rates = [schedule.rate(e) for e in range(21)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_clamps_past_horizon(self):
        schedule = CosineAnnealing(1.0, total_epochs=5, minimum=0.2)
        assert schedule.rate(50) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealing(1.0, total_epochs=0)
        with pytest.raises(ValueError):
            CosineAnnealing(0.1, total_epochs=5, minimum=0.5)


class TestApply:
    def test_mutates_optimizer(self):
        optimizer = SGD(1.0)
        schedule = StepDecay(1.0, factor=0.1, step_size=1)
        applied = schedule.apply(optimizer, epoch=2)
        assert optimizer.learning_rate == applied == pytest.approx(0.01)
