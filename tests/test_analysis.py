"""Tests for the AST invariant analyzer (repro.analysis).

Each rule gets true-positive and false-positive pinning over fixture
snippets, plus suppression handling, the JSON report schema, and a
meta-test asserting ``repro lint`` over the current tree exits 0 --
the same invocation the CI gate runs.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_lint, select_rules
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_project(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialize fixture files (repo-relative paths) under tmp_path."""
    for rel, body in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body), encoding="utf-8")
    return tmp_path


def lint(tmp_path: Path, files: dict[str, str], rules: list[str]):
    return run_lint(make_project(tmp_path, files), rule_ids=rules)


def rule_ids(report) -> set[str]:
    return {f.rule for f in report.active()}


# -- crypto-random -----------------------------------------------------------

def test_crypto_random_flags_module_prng(tmp_path):
    report = lint(tmp_path, {
        "src/repro/fe/bad.py": """\
            import random
            def pick():
                return random.randint(0, 10)
            """,
    }, ["crypto-random"])
    assert len(report.active()) == 1
    assert report.active()[0].line == 3


def test_crypto_random_flags_literal_seed_and_from_import(tmp_path):
    report = lint(tmp_path, {
        "src/repro/rpc/bad.py": """\
            import random
            from random import randint
            r = random.Random(42)
            n = randint(0, 3)
            """,
    }, ["crypto-random"])
    assert len(report.active()) == 2


def test_crypto_random_allows_os_seeded_and_param_seeded(tmp_path):
    report = lint(tmp_path, {
        "src/repro/mathutils/ok.py": """\
            import random
            def make(seed=None):
                a = random.Random()        # OS-seeded: fine
                b = random.SystemRandom()  # os.urandom-backed: fine
                c = random.Random(seed)    # caller's seed: fine
                return a, b, c
            """,
        # outside the crypto dirs the rule does not apply at all
        "src/repro/nn/free.py": """\
            import random
            x = random.random()
            """,
    }, ["crypto-random"])
    assert report.active() == []


# -- key-serialization -------------------------------------------------------

def test_key_serialization_flags_msk_in_serializer(tmp_path):
    report = lint(tmp_path, {
        "src/repro/core/checkpoint.py": """\
            def save_state(obj, path):
                payload = {"msk": obj.msk, "n": obj.n}
                path.write_text(str(payload))
            """,
    }, ["key-serialization"])
    assert len(report.active()) == 2  # the attribute read + the field


def test_key_serialization_ignores_non_serializers(tmp_path):
    report = lint(tmp_path, {
        "src/repro/core/serialization.py": """\
            def derive_key(authority):
                return authority.msk + 1  # not a serializer

            def save_weights(model, path):
                path.write_bytes(model.weights)
            """,
    }, ["key-serialization"])
    assert report.active() == []


# -- nonce-reuse -------------------------------------------------------------

def test_nonce_reuse_flags_stored_nonce(tmp_path):
    report = lint(tmp_path, {
        "src/repro/fe/bad.py": """\
            class Enc:
                def encrypt_all(self, scheme, mpk, xs):
                    return [scheme.encrypt(mpk, x, nonce=self._nonce)
                            for x in xs]
            """,
    }, ["nonce-reuse"])
    assert len(report.active()) == 1
    assert "stored state" in report.active()[0].message


def test_nonce_reuse_flags_loop_hoisted_nonce(tmp_path):
    report = lint(tmp_path, {
        "src/repro/fe/bad.py": """\
            def encrypt_columns(scheme, mpk, cols, make_nonce):
                nonce = make_nonce()
                out = []
                for col in cols:
                    out.append(scheme.encrypt(mpk, col, nonce=nonce))
                return out
            """,
    }, ["nonce-reuse"])
    assert len(report.active()) == 1
    assert "outside the loop" in report.active()[0].message


def test_nonce_reuse_flags_double_use(tmp_path):
    report = lint(tmp_path, {
        "src/repro/fe/bad.py": """\
            def two(scheme, mpk, a, b, make_nonce):
                nonce = make_nonce()
                ca = scheme.encrypt(mpk, a, nonce=nonce)
                cb = scheme.encrypt(mpk, b, nonce=nonce)
                return ca, cb
            """,
    }, ["nonce-reuse"])
    assert len(report.active()) == 1


def test_nonce_reuse_allows_fresh_and_passthrough(tmp_path):
    report = lint(tmp_path, {
        "src/repro/fe/ok.py": """\
            def encrypt_columns(scheme, mpk, cols, store):
                out = []
                for col in cols:
                    nonce = store.pop()
                    out.append(scheme.encrypt(mpk, col, nonce=nonce))
                out.append(scheme.encrypt(mpk, cols[0],
                                          nonce=store.pop()))
                return out

            def encrypt_one(scheme, mpk, x, nonce=None):
                return scheme.encrypt(mpk, x, nonce=nonce)
            """,
    }, ["nonce-reuse"])
    assert report.active() == []


# -- lock-discipline ---------------------------------------------------------

def test_lock_discipline_flags_mixed_lock_writes(tmp_path):
    report = lint(tmp_path, {
        "src/repro/matrix/bad.py": """\
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.dispatches = 0

                def dispatch(self):
                    with self._lock:
                        self.dispatches += 1

                def dispatch_fast(self):
                    self.dispatches += 1  # bare write: the race
            """,
    }, ["lock-discipline"])
    assert len(report.active()) == 1
    assert report.active()[0].line == 13
    assert "without the lock" in report.active()[0].message


def test_lock_discipline_flags_lockless_global_singleton(tmp_path):
    report = lint(tmp_path, {
        "src/repro/mathutils/bad.py": """\
            class Cache:
                def __init__(self):
                    self.hits = 0

                def get(self, k):
                    self.hits += 1
                    return k

            GLOBAL_CACHE = Cache()
            """,
    }, ["lock-discipline"])
    assert len(report.active()) == 1
    assert "GLOBAL_CACHE" in report.active()[0].message


def test_lock_discipline_allows_consistent_locking(tmp_path):
    report = lint(tmp_path, {
        "src/repro/matrix/ok.py": """\
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.RLock()
                    self.dispatches = 0  # init is pre-sharing: exempt
                    self.local_only = 0

                def dispatch(self):
                    with self._lock:
                        self.dispatches += 1

                def reset_local(self):
                    # never lock-guarded anywhere: not mixed, no flag
                    self.local_only = 0

            class FrozenCfg:
                def __init__(self, n):
                    self.n = n

            GLOBAL_CFG = FrozenCfg(3)  # immutable after init: fine
            """,
    }, ["lock-discipline"])
    assert report.active() == []


# -- determinism -------------------------------------------------------------

def test_determinism_flags_entropy_and_wall_clock(tmp_path):
    report = lint(tmp_path, {
        "src/repro/core/cryptonn.py": """\
            import time
            import numpy as np

            def fit():
                t0 = time.time()
                rng = np.random.default_rng()
                return t0, rng
            """,
    }, ["determinism"])
    assert len(report.active()) == 2


def test_determinism_allows_seeded_rng_and_monotonic(tmp_path):
    report = lint(tmp_path, {
        "src/repro/core/cryptonn.py": """\
            import time
            import numpy as np

            def fit(seed):
                t0 = time.perf_counter()   # timing, not wall clock
                rng = np.random.default_rng(seed)
                return t0, rng
            """,
        # same calls outside the resume-critical modules: no findings
        "src/repro/obs/tracing.py": """\
            import time
            def stamp():
                return time.time()
            """,
    }, ["determinism"])
    assert report.active() == []


# -- hotpath-pow -------------------------------------------------------------

def test_hotpath_flags_bare_pow_and_q_reduction(tmp_path):
    report = lint(tmp_path, {
        "src/repro/fe/bad.py": """\
            def commit(group, g, r, p, q):
                a = pow(g, r, p)
                b = group.exp(g, r % q)
                return a, b
            """,
    }, ["hotpath-pow"])
    assert len(report.active()) == 2


def test_hotpath_allows_mathutils_and_2arg_pow(tmp_path):
    report = lint(tmp_path, {
        "src/repro/mathutils/fastexp.py": """\
            def exp(g, e, p):
                return pow(g, e, p)  # mathutils IS the exemption
            """,
        "src/repro/fe/ok.py": """\
            def square(x):
                return pow(x, 2)  # 2-arg pow is plain arithmetic

            def commit(group, g, r):
                return group.exp(g, r)
            """,
    }, ["hotpath-pow"])
    assert report.active() == []


# -- protocol-complete -------------------------------------------------------

_PROTOCOL_FIXTURE = {
    "src/repro/core/protocol.py": """\
        KIND_PING = "ping"
        KIND_PONG = "pong-response"
        """,
    "src/repro/rpc/messages.py": """\
        from repro.core import protocol

        def _register(*kinds):
            def deco(cls):
                return cls
            return deco

        @_register(protocol.KIND_PING)
        class PingRequest:
            pass

        @_register(protocol.KIND_PONG)
        class PongResponse:
            pass
        """,
    "src/repro/rpc/service.py": """\
        class Service:
            def _dispatch(self, msg, sender):
                if isinstance(msg, PingRequest):
                    return PongResponse()
                raise TypeError(msg)
        """,
    "src/repro/core/entities.py": """\
        from repro.core import protocol

        def record(log):
            log.record("a", "b", protocol.KIND_PING, 1)
            log.record("b", "a", protocol.KIND_PONG, 1)
        """,
}


def test_protocol_complete_clean_fixture(tmp_path):
    report = lint(tmp_path, dict(_PROTOCOL_FIXTURE),
                  ["protocol-complete"])
    assert report.active() == []


def test_protocol_complete_flags_missing_pieces(tmp_path):
    files = dict(_PROTOCOL_FIXTURE)
    # drop the handler branch and the accounting reference for PING
    files["src/repro/rpc/service.py"] = """\
        class Service:
            def _dispatch(self, msg, sender):
                raise TypeError(msg)
        """
    files["src/repro/core/entities.py"] = """\
        from repro.core import protocol

        def record(log):
            log.record("b", "a", protocol.KIND_PONG, 1)
        """
    # add a kind with no codec at all
    files["src/repro/core/protocol.py"] = """\
        KIND_PING = "ping"
        KIND_PONG = "pong-response"
        KIND_LOST = "lost"
        """
    report = lint(tmp_path, files, ["protocol-complete"])
    messages = [f.message for f in report.active()]
    assert any("no registered message codec" in m for m in messages)
    assert any("decoded by no service dispatch" in m for m in messages)
    assert any("TrafficLog accounting" in m for m in messages)


def test_protocol_complete_flags_duplicate_registration(tmp_path):
    files = dict(_PROTOCOL_FIXTURE)
    files["src/repro/rpc/messages.py"] += """\

        @_register(protocol.KIND_PING)
        class PingRequestV2:
            pass
        """
    report = lint(tmp_path, files, ["protocol-complete"])
    assert any("registered by both" in f.message for f in report.active())


# -- metrics-naming ----------------------------------------------------------

def test_metrics_naming_flags_scheme_violations(tmp_path):
    report = lint(tmp_path, {
        "src/repro/obs/bad.py": """\
            def instrument(registry):
                registry.counter("repro_requests")        # no _total
                registry.gauge("repro_depth_total")       # gauge w/ _total
                registry.counter("requests_total")        # no prefix
                registry.histogram("repro_Bad-Name")      # charset

            def _collect():
                return {"repro_Widget_Count": 1}          # charset
            """,
    }, ["metrics-naming"])
    assert len(report.active()) == 5


def test_metrics_naming_allows_scheme_and_labels(tmp_path):
    report = lint(tmp_path, {
        "src/repro/obs/ok.py": """\
            def instrument(registry, phase):
                registry.counter("repro_rpc_retries_total").inc()
                registry.gauge("repro_pool_workers").set(4)
                registry.histogram(
                    f'repro_phase_seconds{{phase="{phase}"}}')

            def _collect():
                return {"repro_engine_prefills_total": 2,
                        "repro_engine_available": 7}
            """,
    }, ["metrics-naming"])
    assert report.active() == []


# -- suppressions ------------------------------------------------------------

def test_suppression_trailing_comment(tmp_path):
    report = lint(tmp_path, {
        "src/repro/core/cryptonn.py": """\
            import time

            def fit():
                return time.time()  # repro: allow[determinism] -- why not
            """,
    }, ["determinism"])
    assert report.active() == []
    assert len(report.suppressed()) == 1
    assert report.suppressed()[0].justification == "why not"


def test_suppression_standalone_comment_with_continuation(tmp_path):
    report = lint(tmp_path, {
        "src/repro/core/cryptonn.py": """\
            import time

            def fit():
                # repro: allow[determinism] -- first half
                # second half of the justification
                return time.time()
            """,
    }, ["determinism"])
    assert report.active() == []
    justification = report.suppressed()[0].justification
    assert justification == "first half second half of the justification"


def test_suppression_is_rule_specific(tmp_path):
    report = lint(tmp_path, {
        "src/repro/core/cryptonn.py": """\
            import time

            def fit():
                return time.time()  # repro: allow[hotpath-pow] -- wrong id
            """,
    }, ["determinism"])
    assert len(report.active()) == 1  # wrong rule id: not suppressed


def test_suppression_inside_string_does_not_count(tmp_path):
    report = lint(tmp_path, {
        "src/repro/core/cryptonn.py": '''\
            import time

            MARKER = "# repro: allow[determinism] -- in a string"

            def fit():
                return time.time()
            ''',
    }, ["determinism"])
    assert len(report.active()) == 1


# -- report plumbing ---------------------------------------------------------

def test_json_report_schema(tmp_path):
    report = lint(tmp_path, {
        "src/repro/core/cryptonn.py": """\
            import time

            def fit():
                return time.time()
            """,
    }, None)
    payload = report.to_dict()
    assert payload["version"] == 1
    assert {r["id"] for r in payload["rules"]} >= {
        "crypto-random", "determinism", "hotpath-pow",
        "key-serialization", "lock-discipline", "metrics-naming",
        "nonce-reuse", "protocol-complete"}
    assert set(payload["summary"]) == {
        "files_scanned", "errors", "warnings", "suppressed"}
    assert payload["summary"]["errors"] == 1
    finding = payload["findings"][0]
    assert set(finding) == {"rule", "severity", "path", "line",
                            "message", "hint", "suppressed",
                            "justification"}
    json.dumps(payload)  # round-trips


def test_parse_error_becomes_finding(tmp_path):
    report = lint(tmp_path, {
        "src/repro/core/broken.py": "def half(:\n",
    }, ["determinism"])
    assert [f.rule for f in report.active()] == ["parse"]


def test_unknown_rule_raises(tmp_path):
    with pytest.raises(KeyError):
        lint(tmp_path, {}, ["no-such-rule"])


def test_select_rules_orders_registry():
    rules = select_rules(None)
    assert len(rules) >= 6
    assert [r.id for r in rules] == sorted(r.id for r in rules)
    assert all(r.description for r in rules)


# -- the CI gate: the current tree lints clean -------------------------------

def test_repro_lint_current_tree_exits_zero(tmp_path, capsys):
    report_path = tmp_path / "LINT_report.json"
    code = cli_main(["lint", "--root", str(REPO_ROOT),
                     "--fail-on", "error",
                     "--report", str(report_path)])
    out = capsys.readouterr().out
    assert code == 0, f"repro lint found new violations:\n{out}"
    payload = json.loads(report_path.read_text())
    assert payload["summary"]["errors"] == 0
    # every suppressed finding carries a written justification
    for finding in payload["findings"]:
        if finding["suppressed"]:
            assert finding["justification"], finding


def test_list_rules_prints_registry(capsys):
    code = cli_main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rid in ("crypto-random", "determinism", "hotpath-pow",
                "key-serialization", "lock-discipline",
                "metrics-naming", "nonce-reuse", "protocol-complete"):
        assert rid in out
