"""Tests for the Dropout layer."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.model import Sequential
from repro.nn.regularization import Dropout


class TestDropout:
    def test_eval_mode_is_identity(self, np_rng):
        layer = Dropout(0.5, rng=np_rng)
        x = np_rng.normal(size=(4, 6))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_rate_zero_is_identity(self, np_rng):
        layer = Dropout(0.0, rng=np_rng)
        x = np_rng.normal(size=(4, 6))
        np.testing.assert_array_equal(layer.forward(x, training=True), x)

    def test_training_mode_zeroes_and_scales(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100))
        out = layer.forward(x, training=True)
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted scaling 1/(1-0.5)

    def test_expectation_preserved(self):
        layer = Dropout(0.3, rng=np.random.default_rng(1))
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert abs(out.mean() - 1.0) < 0.05

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=np.random.default_rng(2))
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_backward_after_eval_passes_through(self, np_rng):
        layer = Dropout(0.5, rng=np_rng)
        layer.forward(np.ones((2, 2)), training=False)
        grad = layer.backward(np.full((2, 2), 3.0))
        np.testing.assert_array_equal(grad, np.full((2, 2), 3.0))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_composes_in_model(self, np_rng):
        model = Sequential([Dense(4, 8, rng=np_rng),
                            Dropout(0.2, rng=np_rng),
                            Dense(8, 2, rng=np_rng)])
        x = np_rng.normal(size=(6, 4))
        out = model.forward(x, training=True)
        model.backward(np.ones_like(out))
        assert model.layers[0].grads["W"].shape == (4, 8)
