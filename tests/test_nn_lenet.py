"""Tests for the LeNet builders."""

import numpy as np
import pytest

from repro.nn.lenet import build_lenet5, build_lenet_small


class TestLeNet5:
    def test_output_shape(self, np_rng):
        model = build_lenet5(np_rng)
        out = model.forward(np_rng.normal(size=(2, 1, 28, 28)))
        assert out.shape == (2, 10)

    def test_parameter_count_matches_classic(self, np_rng):
        """Classic LeNet-5 (conv weights + fc) parameter count."""
        model = build_lenet5(np_rng)
        # C1: 6*(25+... ) standard total is 61,706 for this layout
        assert model.parameter_count() == 61706

    def test_custom_class_count(self, np_rng):
        model = build_lenet5(np_rng, num_classes=5)
        out = model.forward(np_rng.normal(size=(1, 1, 28, 28)))
        assert out.shape == (1, 5)


class TestLeNetSmall:
    @pytest.mark.parametrize("size", [8, 12, 16])
    def test_output_shape_across_sizes(self, np_rng, size):
        model = build_lenet_small(np_rng, image_size=size)
        out = model.forward(np_rng.normal(size=(3, 1, size, size)))
        assert out.shape == (3, 10)

    @pytest.mark.parametrize("activation", ["relu", "sigmoid", "tanh"])
    def test_activations(self, np_rng, activation):
        model = build_lenet_small(np_rng, activation=activation)
        out = model.forward(np_rng.normal(size=(1, 1, 8, 8)))
        assert np.isfinite(out).all()

    def test_unknown_activation(self, np_rng):
        with pytest.raises(ValueError):
            build_lenet_small(np_rng, activation="swish")

    def test_first_layer_is_conv(self, np_rng):
        from repro.nn.conv import Conv2D
        model = build_lenet_small(np_rng)
        assert isinstance(model.layers[0], Conv2D)

    def test_backward_runs(self, np_rng):
        model = build_lenet_small(np_rng)
        out = model.forward(np_rng.normal(size=(2, 1, 8, 8)))
        model.backward(np.ones_like(out))
        assert model.layers[0].grads["W"].shape == model.layers[0].params["W"].shape
