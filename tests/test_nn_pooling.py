"""Tests for pooling layers."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_layer_input_grad
from repro.nn.pooling import AvgPool2D, MaxPool2D


class TestAvgPool:
    def test_forward_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = AvgPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_channels_independent(self, np_rng):
        x = np_rng.normal(size=(2, 3, 4, 4))
        out = AvgPool2D(2).forward(x)
        for c in range(3):
            single = AvgPool2D(2).forward(x[:, c:c + 1])
            np.testing.assert_allclose(out[:, c], single[:, 0])

    def test_gradient(self, np_rng):
        assert check_layer_input_grad(
            AvgPool2D(2), np_rng.normal(size=(2, 2, 4, 4))
        ) < 1e-7

    def test_backward_distributes_evenly(self):
        layer = AvgPool2D(2)
        x = np.zeros((1, 1, 4, 4))
        layer.forward(x)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        np.testing.assert_allclose(grad, np.full((1, 1, 4, 4), 0.25))

    def test_custom_stride(self, np_rng):
        out = AvgPool2D(2, stride=1).forward(np_rng.normal(size=(1, 1, 4, 4)))
        assert out.shape == (1, 1, 3, 3)


class TestMaxPool:
    def test_forward_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_gradient_routes_to_argmax(self):
        layer = MaxPool2D(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer.forward(x)
        grad = layer.backward(np.array([[[[10.0]]]]))
        np.testing.assert_allclose(grad, [[[[0, 0], [0, 10.0]]]])

    def test_gradient_numeric(self, np_rng):
        # distinct values so argmax is stable under perturbation
        x = np_rng.permutation(32).astype(np.float64).reshape(2, 1, 4, 4)
        assert check_layer_input_grad(MaxPool2D(2), x) < 1e-7

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            MaxPool2D(2).backward(np.ones((1, 1, 1, 1)))
