"""Tests for CryptoNNConfig and its bound arithmetic."""

import pytest

from repro.core.config import CryptoNNConfig, pow2_round_up
from repro.mathutils.group import PAPER_SECURITY_BITS


class TestPow2RoundUp:
    @pytest.mark.parametrize("value,expected", [
        (0, 1), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (1000, 1024),
        (1024, 1024), (1025, 2048),
    ])
    def test_values(self, value, expected):
        assert pow2_round_up(value) == expected


class TestConfig:
    def test_paper_preset(self):
        config = CryptoNNConfig.paper()
        assert config.security_bits == PAPER_SECURITY_BITS == 256
        assert config.scale == 100

    def test_dot_bound_covers_worst_case(self):
        config = CryptoNNConfig()
        n = 50
        worst = int(n * config.max_abs_feature * config.scale
                    * config.max_abs_weight * config.scale)
        assert config.dot_bound(n) >= worst

    def test_dot_bound_is_power_of_two(self):
        bound = CryptoNNConfig().dot_bound(17)
        assert bound & (bound - 1) == 0

    def test_product_bound_covers_feature_times_weight(self):
        config = CryptoNNConfig()
        worst = int(config.max_abs_feature * config.scale
                    * config.max_abs_weight * config.scale)
        assert config.product_bound() >= worst

    def test_label_sub_bound(self):
        config = CryptoNNConfig(scale=100)
        assert config.label_sub_bound() >= 201

    def test_loss_bound_scales_with_log_prob(self):
        config = CryptoNNConfig()
        assert config.loss_bound(10.0) < config.loss_bound(50.0)

    def test_bounds_scale_quadratically_with_scale(self):
        small = CryptoNNConfig(scale=10)
        large = CryptoNNConfig(scale=1000)
        assert large.dot_bound(10) > 100 * small.dot_bound(10)
